"""repro — reproduction of "Communication-aware Job Scheduling using SLURM".

Mishra, Agrawal, Malakar. ICPP Workshops 2020.
DOI 10.1145/3409390.3409410.

The package is a discrete-event reimplementation of the paper's
SLURM-based system:

* :mod:`repro.topology` — tree/fat-tree topologies + ``topology.conf``;
* :mod:`repro.patterns` — MPI collective communication patterns;
* :mod:`repro.cost` — contention / effective-hops cost model (Eqs. 2-7);
* :mod:`repro.cluster` — jobs and per-switch occupancy state;
* :mod:`repro.allocation` — default / greedy / balanced / adaptive;
* :mod:`repro.scheduler` — FIFO + EASY-backfill event simulator;
* :mod:`repro.workloads` — SWF parsing and synthetic machine logs;
* :mod:`repro.faults` — node/switch fault injection + requeue policies;
* :mod:`repro.netsim` — flow-level network simulation (Figure 1);
* :mod:`repro.experiments` — one module per paper table/figure;
* :mod:`repro.analysis` — utilization timelines, run comparison, stats;
* :mod:`repro.mapping` — §7 rank-to-node process mapping (extension);
* :mod:`repro.slurm` — interactive sbatch/squeue/sinfo-style facade.

Quickstart::

    from repro import (
        ExperimentConfig, continuous_runs, single_pattern_mix,
    )

    cfg = ExperimentConfig(log="theta", n_jobs=300,
                           mix=single_pattern_mix("rhvd"))
    results = continuous_runs(cfg)
    for name, res in results.items():
        print(name, res.total_execution_hours)
"""

from .allocation import (
    AdaptiveAllocator,
    AllocationError,
    Allocator,
    BalancedAllocator,
    DefaultSlurmAllocator,
    GreedyAllocator,
    LinearAllocator,
    PAPER_ALLOCATORS,
    get_allocator,
)
from .cluster import ClusterState, CommComponent, Job, JobKind
from .cost import CostModel, allocation_cost, contention_factor, effective_hops
from .experiments import ExperimentConfig, continuous_runs, individual_runs
from .faults import (
    FaultEvent,
    FaultGeneratorConfig,
    InterruptionBook,
    generate_faults,
    load_fault_trace,
    parse_fault_trace,
)
from .patterns import (
    BinomialTree,
    CommunicationPattern,
    RecursiveDoubling,
    RecursiveHalvingVectorDoubling,
    Ring,
    Stencil2D,
    get_pattern,
)
from .scheduler import (
    EngineConfig,
    SchedulerEngine,
    SimulationResult,
    simulate,
)
from .topology import (
    TreeTopology,
    load_topology_conf,
    parse_topology_conf,
    three_level_tree,
    tree_from_leaf_sizes,
    two_level_tree,
    write_topology_conf,
)
from .analysis import (
    average_utilization,
    compare_results,
    pearson_correlation,
    per_job_improvements,
)
from .distribution import (
    block_distribution,
    cyclic_distribution,
    plane_distribution,
)
from .mapping import (
    leaf_block_mapping,
    local_search_mapping,
)
from .slurm import SlurmCluster
from .workloads import (
    TraceJob,
    assign_kinds,
    intrepid_log,
    mira_log,
    single_pattern_mix,
    theta_log,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveAllocator",
    "AllocationError",
    "Allocator",
    "BalancedAllocator",
    "DefaultSlurmAllocator",
    "GreedyAllocator",
    "LinearAllocator",
    "PAPER_ALLOCATORS",
    "get_allocator",
    "ClusterState",
    "CommComponent",
    "Job",
    "JobKind",
    "CostModel",
    "allocation_cost",
    "contention_factor",
    "effective_hops",
    "ExperimentConfig",
    "continuous_runs",
    "individual_runs",
    "FaultEvent",
    "FaultGeneratorConfig",
    "InterruptionBook",
    "generate_faults",
    "load_fault_trace",
    "parse_fault_trace",
    "BinomialTree",
    "CommunicationPattern",
    "RecursiveDoubling",
    "RecursiveHalvingVectorDoubling",
    "Ring",
    "Stencil2D",
    "get_pattern",
    "EngineConfig",
    "SchedulerEngine",
    "SimulationResult",
    "simulate",
    "TreeTopology",
    "load_topology_conf",
    "parse_topology_conf",
    "three_level_tree",
    "tree_from_leaf_sizes",
    "two_level_tree",
    "write_topology_conf",
    "average_utilization",
    "compare_results",
    "pearson_correlation",
    "per_job_improvements",
    "block_distribution",
    "cyclic_distribution",
    "plane_distribution",
    "leaf_block_mapping",
    "local_search_mapping",
    "SlurmCluster",
    "TraceJob",
    "assign_kinds",
    "intrepid_log",
    "mira_log",
    "single_pattern_mix",
    "theta_log",
    "__version__",
]
