"""Link-level view of a tree topology.

The scheduling-side cost model (Eqs. 2-6) only *estimates* contention;
the Figure 1 experiment needs actual bandwidth sharing. This module
assigns every edge of the tree a capacity and computes the link route
between any two nodes:

* every compute node has one access link to its leaf switch;
* every non-root switch has one uplink to its parent, with capacity
  scaled by ``uplink_multiplier ** (level - 1)`` — 1.0 models the
  paper's departmental 1G Ethernet tree (a genuinely shared uplink),
  2.0 models a fat tree whose capacity doubles per level.

Links are full duplex, modeled as two independent *directed* channels
(UP = toward the root, DOWN = toward the nodes) with equal capacity:
a ``src -> dst`` flow climbs UP channels on the source side and
descends DOWN channels on the destination side, so opposite-direction
flows never contend — matching switched Ethernet.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..topology.tree import TreeTopology

__all__ = ["FlowNetwork", "UP", "DOWN"]

#: direction constants for :meth:`FlowNetwork.node_link` etc.
UP = 0
DOWN = 1


class FlowNetwork:
    """Directed-channel capacities and routes over a :class:`TreeTopology`.

    Channel ids: for direction ``d`` in {UP, DOWN}, node ``n``'s access
    channel is ``d * half + n`` and non-root switch ``s``'s uplink
    channel is ``d * half + n_nodes + s``, where ``half`` is the number
    of undirected links.
    """

    def __init__(
        self,
        topology: TreeTopology,
        *,
        base_bandwidth: float = 1.0,
        uplink_multiplier: float = 1.0,
    ) -> None:
        if base_bandwidth <= 0:
            raise ValueError(f"base_bandwidth must be > 0, got {base_bandwidth}")
        if uplink_multiplier <= 0:
            raise ValueError(f"uplink_multiplier must be > 0, got {uplink_multiplier}")
        self.topology = topology
        self.base_bandwidth = float(base_bandwidth)
        self.uplink_multiplier = float(uplink_multiplier)

        self._half = topology.n_nodes + topology.n_switches
        one_direction = np.full(self._half, base_bandwidth, dtype=np.float64)
        for info in topology.switches:
            one_direction[topology.n_nodes + info.index] = base_bandwidth * (
                uplink_multiplier ** (info.level - 1)
            )
        # the root has no uplink; zero capacity flags accidental use
        one_direction[topology.n_nodes + topology.root.index] = 0.0
        #: per-channel capacity, UP half then DOWN half
        self.capacity = np.concatenate([one_direction, one_direction])
        self._route_cache: Dict[tuple, tuple] = {}

    @property
    def n_links(self) -> int:
        """Total directed channels (2x the undirected link count)."""
        return int(self.capacity.size)

    def node_link(self, node_id: int, direction: int = UP) -> int:
        """Access-channel id of ``node_id`` in the given direction."""
        if direction not in (UP, DOWN):
            raise ValueError(f"direction must be UP or DOWN, got {direction}")
        return direction * self._half + int(node_id)

    def switch_uplink(self, switch_index: int, direction: int = UP) -> int:
        """Uplink channel id of switch ``switch_index`` (not the root)."""
        if direction not in (UP, DOWN):
            raise ValueError(f"direction must be UP or DOWN, got {direction}")
        if switch_index == self.topology.root.index:
            raise ValueError("the root switch has no uplink")
        return direction * self._half + self.topology.n_nodes + int(switch_index)

    def route(self, src: int, dst: int) -> tuple:
        """Channel ids a ``src -> dst`` flow traverses (empty if src == dst).

        Path: src access channel UP, source-side switch uplinks UP until
        (not including) the lowest common switch, destination-side
        switch uplinks DOWN, dst access channel DOWN.
        """
        key = (int(src), int(dst))
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        topo = self.topology
        if src == dst:
            self._route_cache[key] = ()
            return ()
        links: List[int] = [self.node_link(src, UP), self.node_link(dst, DOWN)]
        la = int(topo.leaf_of_node[src])
        lb = int(topo.leaf_of_node[dst])
        if la != lb:
            lca_level = int(topo.lca_level(la, lb))
            for leaf, direction in ((la, UP), (lb, DOWN)):
                info = topo.leaf(leaf)
                while info.level < lca_level:
                    links.append(self.switch_uplink(info.index, direction))
                    info = topo.switch(info.parent)
        result = tuple(links)
        self._route_cache[key] = result
        return result
