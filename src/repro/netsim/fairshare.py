"""Max-min fair bandwidth allocation (progressive filling).

Given flows with fixed routes and link capacities, compute the classic
max-min fair rate vector: repeatedly find the most-constrained link
(capacity / unfrozen flows through it), freeze those flows at that fair
share, subtract, and continue until every flow is frozen. This is the
standard fluid model of TCP-like sharing and is what makes two
collectives on a shared switch slow each other down — the mechanism
behind the paper's Figure 1 spikes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["max_min_fair_rates"]


def max_min_fair_rates(
    routes: Sequence[Tuple[int, ...]],
    capacity: np.ndarray,
) -> np.ndarray:
    """Max-min fair rate per flow.

    ``routes[f]`` is the tuple of link ids flow ``f`` traverses; a flow
    with an empty route (intra-node transfer) gets rate ``inf``.
    Raises ``ValueError`` if any used link has non-positive capacity.
    """
    n_flows = len(routes)
    rates = np.zeros(n_flows, dtype=np.float64)
    if n_flows == 0:
        return rates

    # Build link -> unfrozen flow lists once.
    flows_on_link: Dict[int, List[int]] = {}
    for f, route in enumerate(routes):
        for link in route:
            flows_on_link.setdefault(int(link), []).append(f)
    for link in flows_on_link:
        if capacity[link] <= 0:
            raise ValueError(f"link {link} has non-positive capacity but carries flows")

    remaining = capacity.astype(np.float64).copy()
    frozen = np.zeros(n_flows, dtype=bool)
    for f, route in enumerate(routes):
        if not route:
            rates[f] = np.inf
            frozen[f] = True

    active_links = {link for link, flows in flows_on_link.items() if flows}
    while active_links:
        # fair share each link could give its unfrozen flows
        bottleneck = None
        bottleneck_share = np.inf
        for link in active_links:
            count = sum(1 for f in flows_on_link[link] if not frozen[f])
            if count == 0:
                continue
            share = remaining[link] / count
            if share < bottleneck_share:
                bottleneck_share = share
                bottleneck = link
        if bottleneck is None:
            break
        # freeze every unfrozen flow through the bottleneck
        for f in flows_on_link[bottleneck]:
            if frozen[f]:
                continue
            rates[f] = bottleneck_share
            frozen[f] = True
            for link in routes[f]:
                remaining[link] -= bottleneck_share
        remaining[bottleneck] = 0.0
        active_links = {
            link
            for link in active_links
            if any(not frozen[f] for f in flows_on_link[link])
        }
    return rates
