"""Flow-level simulation of concurrent MPI collectives (Figure 1).

Each workload repeatedly executes a collective: the pattern's steps run
in sequence, each step spawning one flow per ordered (src, dst) node
pair (pairwise exchanges produce both directions). Flow rates follow
max-min fair sharing over the tree's links and are recomputed whenever
the active flow set changes; a step completes when its last flow drains.

The simulator records per-iteration wall-clock durations per workload —
exactly the series plotted in the paper's Figure 1, where job J2's
periodic arrivals spike job J1's iteration times on shared switches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..patterns.base import CommStep, CommunicationPattern
from .._validation import require_positive_int
from .fairshare import max_min_fair_rates
from .network import FlowNetwork

__all__ = ["CollectiveWorkload", "IterationRecord", "FlowSimulator"]


@dataclass(frozen=True)
class CollectiveWorkload:
    """One job that loops a collective over a fixed node set.

    Attributes
    ----------
    msize_bytes:
        Base message size; each step transfers ``step.msize * msize_bytes``.
    iterations:
        How many collectives to run back-to-back.
    start_time / gap_seconds:
        First iteration start, and idle time between iterations (J2 in
        Figure 1 runs every 30 minutes: ``gap_seconds=1800`` with
        ``iterations`` spanning the study window).
    """

    job_id: int
    nodes: Tuple[int, ...]
    pattern: CommunicationPattern
    msize_bytes: float = 1.0
    iterations: int = 1
    start_time: float = 0.0
    gap_seconds: float = 0.0

    def __post_init__(self) -> None:
        require_positive_int(self.iterations, "iterations")
        if len(self.nodes) < 1:
            raise ValueError("workload needs at least one node")
        if self.msize_bytes <= 0:
            raise ValueError("msize_bytes must be > 0")
        if self.start_time < 0 or self.gap_seconds < 0:
            raise ValueError("start_time and gap_seconds must be >= 0")


@dataclass(frozen=True)
class IterationRecord:
    """Start/end of one collective iteration of one workload."""

    job_id: int
    iteration: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Wall-clock seconds this iteration took."""
        return self.end - self.start


@dataclass
class _Flow:
    route: Tuple[int, ...]
    remaining: float


@dataclass
class _JobState:
    workload: CollectiveWorkload
    steps: List[CommStep]
    iteration: int = 0
    step_index: int = -1  # -1 = not yet started
    step_repeat_left: int = 0
    iteration_start: float = 0.0
    next_wake: float = 0.0  # time the job becomes runnable (start/gap)
    flows: List[_Flow] = field(default_factory=list)
    done: bool = False


class FlowSimulator:
    """Event-driven fluid simulation of concurrent collectives.

    After :meth:`run`, ``last_link_bytes`` holds the bytes each directed
    channel carried (indexed like ``network.capacity``) — the input to
    :func:`repro.netsim.stats.link_utilization`.
    """

    def __init__(self, network: FlowNetwork) -> None:
        self.network = network
        self.last_link_bytes = np.zeros(network.n_links, dtype=np.float64)
        self.last_duration = 0.0

    # ------------------------------------------------------------------

    def run(
        self,
        workloads: Sequence[CollectiveWorkload],
        *,
        until: Optional[float] = None,
        max_events: int = 1_000_000,
    ) -> List[IterationRecord]:
        """Simulate all workloads; returns iteration records, time order.

        ``until`` truncates the simulation (open iterations are dropped);
        ``max_events`` guards against accidental infinite progress loops.
        """
        ids = [w.job_id for w in workloads]
        if len(set(ids)) != len(ids):
            raise ValueError("workload job_ids must be unique")
        jobs: List[_JobState] = []
        for w in workloads:
            steps = list(w.pattern.steps(len(w.nodes)))
            state = _JobState(workload=w, steps=steps, next_wake=w.start_time)
            if not steps:  # single rank: iterations take zero time
                state.done = True
            jobs.append(state)

        records: List[IterationRecord] = []
        self.last_link_bytes = np.zeros(self.network.n_links, dtype=np.float64)
        now = 0.0
        for _ in range(max_events):
            active = [j for j in jobs if not j.done]
            if not active:
                break

            # Wake jobs whose start/gap expired and that have no flows.
            for job in active:
                if not job.flows and job.next_wake <= now:
                    self._advance_job(job, now, records)
            active = [j for j in jobs if not j.done]

            flows: List[_Flow] = [f for j in active for f in j.flows]
            if flows:
                rates = max_min_fair_rates([f.route for f in flows], self.network.capacity)
                # time to first flow completion
                dt = min(
                    (f.remaining / r) if r > 0 else math.inf
                    for f, r in zip(flows, rates)
                )
            else:
                dt = math.inf
            # ... or to the next wake-up of an idle job
            wakes = [j.next_wake for j in active if not j.flows and j.next_wake > now]
            if wakes:
                dt = min(dt, min(wakes) - now)
            if not math.isfinite(dt):
                break  # nothing can make progress
            if until is not None and now + dt > until:
                break
            now += dt
            if flows:
                for f, r in zip(flows, rates):
                    if math.isfinite(r):
                        moved = min(r * dt, f.remaining)
                        f.remaining = max(0.0, f.remaining - r * dt)
                        for link in f.route:
                            self.last_link_bytes[link] += moved
                for job in active:
                    job.flows = [f for f in job.flows if f.remaining > 1e-12]
                    if not job.flows and job.step_index >= 0:
                        self._advance_job(job, now, records)
        else:
            raise RuntimeError(f"simulation exceeded {max_events} events")
        self.last_duration = now
        records.sort(key=lambda r: (r.end, r.job_id))
        return records

    # ------------------------------------------------------------------

    def _advance_job(self, job: _JobState, now: float, records: List[IterationRecord]) -> None:
        """Move a job whose current flows drained to its next step/iteration.

        Steps whose pairs are all intra-node are instantaneous; the loop
        keeps advancing at the same timestamp until a step spawns real
        flows, an iteration boundary is reached, or the job completes.
        """
        w = job.workload
        while True:
            if job.step_index == -1:
                job.iteration_start = now
                job.step_index = 0
                job.step_repeat_left = job.steps[0].repeat
            elif job.step_repeat_left > 1:
                job.step_repeat_left -= 1
            else:
                job.step_index += 1
                if job.step_index >= len(job.steps):
                    records.append(
                        IterationRecord(
                            job_id=w.job_id,
                            iteration=job.iteration,
                            start=job.iteration_start,
                            end=now,
                        )
                    )
                    job.iteration += 1
                    job.step_index = -1
                    if job.iteration >= w.iterations:
                        job.done = True
                        return
                    job.next_wake = now + w.gap_seconds
                    if job.next_wake > now:
                        return  # sleep until the next iteration
                    continue  # gapless: begin the next iteration now
                job.step_repeat_left = job.steps[job.step_index].repeat
            if self._spawn_flows(job):
                return

    def _spawn_flows(self, job: _JobState) -> bool:
        """Create the current step's flows; False if the step is free."""
        step = job.steps[job.step_index]
        w = job.workload
        nodes = w.nodes
        volume = step.msize * w.msize_bytes
        flows: List[_Flow] = []
        for src_rank, dst_rank in step.pairs:
            src, dst = nodes[int(src_rank)], nodes[int(dst_rank)]
            if src == dst:
                continue
            flows.append(_Flow(route=self.network.route(src, dst), remaining=volume))
            if step.exchange:
                # pairwise exchange: data moves both ways (full duplex)
                flows.append(_Flow(route=self.network.route(dst, src), remaining=volume))
        job.flows = flows
        return bool(flows)
