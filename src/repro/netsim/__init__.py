"""Flow-level network simulation substrate (paper Figure 1 experiment)."""

from .fairshare import max_min_fair_rates
from .network import FlowNetwork
from .simulator import CollectiveWorkload, FlowSimulator, IterationRecord
from .stats import LinkLoad, hottest_links, link_utilization

__all__ = [
    "max_min_fair_rates",
    "FlowNetwork",
    "CollectiveWorkload",
    "FlowSimulator",
    "IterationRecord",
    "LinkLoad",
    "hottest_links",
    "link_utilization",
]
