"""Link utilization reporting for flow simulations.

Turns the per-channel byte counters a :class:`FlowSimulator` collects
into utilization fractions and a hottest-links table — the view a
network operator uses to see *where* the contention the paper's
Figure 1 demonstrates actually lives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .network import DOWN, UP, FlowNetwork

__all__ = ["LinkLoad", "link_utilization", "hottest_links"]

_DIRECTION_NAMES = {UP: "up", DOWN: "down"}


@dataclass(frozen=True)
class LinkLoad:
    """Utilization of one directed channel over a simulation window."""

    name: str
    direction: str
    bytes: float
    capacity: float
    utilization: float  # busy fraction over the window, in [0, 1]


def link_utilization(
    network: FlowNetwork, link_bytes: np.ndarray, duration: float
) -> np.ndarray:
    """Busy fraction per directed channel: ``bytes / (capacity * T)``.

    Channels with zero capacity (the root's phantom uplink) report 0.
    """
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    link_bytes = np.asarray(link_bytes, dtype=np.float64)
    if link_bytes.shape != network.capacity.shape:
        raise ValueError(
            f"link_bytes shape {link_bytes.shape} != capacity shape "
            f"{network.capacity.shape}"
        )
    denom = network.capacity * duration
    return np.divide(
        link_bytes, denom, out=np.zeros_like(link_bytes), where=denom > 0
    )


def _channel_name(network: FlowNetwork, channel: int) -> tuple:
    """(human name, direction string) of a directed channel id."""
    topo = network.topology
    half = topo.n_nodes + topo.n_switches
    direction = UP if channel < half else DOWN
    local = channel % half
    if local < topo.n_nodes:
        return f"node {topo.node_name(local)}", _DIRECTION_NAMES[direction]
    info = topo.switch(local - topo.n_nodes)
    return f"switch {info.name} uplink", _DIRECTION_NAMES[direction]


def hottest_links(
    network: FlowNetwork,
    link_bytes: np.ndarray,
    duration: float,
    *,
    top: int = 10,
) -> List[LinkLoad]:
    """The ``top`` most-utilized channels, hottest first."""
    if top < 1:
        raise ValueError(f"top must be >= 1, got {top}")
    util = link_utilization(network, link_bytes, duration)
    order = np.argsort(-util)[:top]
    out: List[LinkLoad] = []
    for channel in order:
        if util[channel] <= 0:
            break
        name, direction = _channel_name(network, int(channel))
        out.append(
            LinkLoad(
                name=name,
                direction=direction,
                bytes=float(link_bytes[channel]),
                capacity=float(network.capacity[channel]),
                utilization=float(util[channel]),
            )
        )
    return out
