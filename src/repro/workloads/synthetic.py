"""Distribution primitives for synthetic job logs.

Supercomputer workload studies (Cirne & Berman 2001; Li et al. 2004 —
both cited by the paper for its power-of-two assumption) agree on three
robust features, which these primitives reproduce:

* job sizes cluster on powers of two, biased toward small/medium jobs;
* runtimes are heavy-tailed (lognormal is the standard fit);
* interarrivals are roughly exponential over stationary windows.

Everything is driven by an explicit :class:`numpy.random.Generator`, so
logs are reproducible from a seed.
"""

from __future__ import annotations

import warnings
from typing import Iterator, List, Optional, Sequence

import numpy as np

from .._validation import require_positive_int
from .trace import TraceJob

__all__ = [
    "power_of_two_sizes",
    "lognormal_runtimes",
    "exponential_arrivals",
    "weibull_arrivals",
    "geometric_exponent_weights",
    "stream_trace",
    "large_trace",
]

#: jobs generated per chunk by :func:`stream_trace`; bounds its peak
#: memory and fixes the per-chunk child-seed sequence, so it is part of
#: the reproducibility contract and deliberately not a parameter.
STREAM_CHUNK_JOBS = 65_536


def geometric_exponent_weights(max_exp: int, decay: float = 0.75) -> np.ndarray:
    """Weights for size exponents ``0..max_exp``: ``decay**k``, normalized.

    ``decay < 1`` biases toward small jobs (most logs), ``decay = 1`` is
    uniform over exponents, ``decay > 1`` biases toward big jobs.
    """
    if max_exp < 0:
        raise ValueError(f"max_exp must be >= 0, got {max_exp}")
    if decay <= 0:
        raise ValueError(f"decay must be > 0, got {decay}")
    w = decay ** np.arange(max_exp + 1, dtype=np.float64)
    return w / w.sum()


def power_of_two_sizes(
    rng: np.random.Generator,
    n: int,
    *,
    max_exp: int,
    weights: Optional[Sequence[float]] = None,
    min_exp: int = 0,
    pow2_fraction: float = 1.0,
) -> np.ndarray:
    """Sample ``n`` job sizes, mostly powers of two.

    Exponents ``min_exp..max_exp`` are drawn with the given ``weights``
    (defaults to :func:`geometric_exponent_weights` over the full range,
    truncated below ``min_exp``). A ``1 - pow2_fraction`` share of jobs
    gets a non-power-of-two size drawn uniformly from
    ``(2^(k-1), 2^k)`` — the paper's logs are 90-99% powers of two.
    """
    require_positive_int(n, "n")
    if not 0 <= min_exp <= max_exp:
        raise ValueError(f"need 0 <= min_exp <= max_exp, got {min_exp}, {max_exp}")
    if not 0.0 <= pow2_fraction <= 1.0:
        raise ValueError(f"pow2_fraction must be in [0, 1], got {pow2_fraction}")
    if weights is None:
        w = geometric_exponent_weights(max_exp)[min_exp:]
        w = w / w.sum()
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.size != max_exp - min_exp + 1:
            raise ValueError(
                f"weights must have {max_exp - min_exp + 1} entries, got {w.size}"
            )
        if np.any(w < 0) or w.sum() <= 0:
            raise ValueError("weights must be non-negative and sum to > 0")
        w = w / w.sum()
    exps = rng.choice(np.arange(min_exp, max_exp + 1), size=n, p=w)
    sizes = (1 << exps.astype(np.int64)).astype(np.int64)
    if pow2_fraction < 1.0:
        irregular = rng.random(n) >= pow2_fraction
        for i in np.flatnonzero(irregular):
            k = int(exps[i])
            if k >= 2:  # sizes 1 and 2 have no strictly-between values
                sizes[i] = int(rng.integers((1 << (k - 1)) + 1, 1 << k))
    return sizes


def lognormal_runtimes(
    rng: np.random.Generator,
    n: int,
    *,
    median_seconds: float,
    sigma: float = 1.0,
    min_seconds: float = 60.0,
    max_seconds: float = 86400.0,
) -> np.ndarray:
    """Heavy-tailed runtimes: lognormal with the given median, clipped.

    The clip bounds mirror real schedulers: a minimum of about a minute
    (shorter records are usually crashes) and a maximum wall-time limit
    (24 h by default, typical of the paper's systems).
    """
    require_positive_int(n, "n")
    if median_seconds <= 0 or sigma <= 0:
        raise ValueError("median_seconds and sigma must be > 0")
    if not 0 < min_seconds <= max_seconds:
        raise ValueError("need 0 < min_seconds <= max_seconds")
    samples = rng.lognormal(mean=np.log(median_seconds), sigma=sigma, size=n)
    return np.clip(samples, min_seconds, max_seconds)


def weibull_arrivals(
    rng: np.random.Generator,
    n: int,
    *,
    mean_interarrival_seconds: float,
    shape: float = 0.6,
) -> np.ndarray:
    """Bursty submit times: Weibull interarrivals (first job at 0).

    Workload studies find interarrival gaps heavier-tailed than
    exponential; a Weibull shape < 1 produces the characteristic bursts
    of real logs. ``shape = 1`` degenerates to the Poisson process.
    The scale is chosen so the *mean* gap equals the requested one.
    """
    require_positive_int(n, "n")
    if mean_interarrival_seconds <= 0:
        raise ValueError("mean_interarrival_seconds must be > 0")
    if shape <= 0:
        raise ValueError(f"shape must be > 0, got {shape}")
    from math import gamma

    scale = mean_interarrival_seconds / gamma(1.0 + 1.0 / shape)
    gaps = scale * rng.weibull(shape, size=n)
    gaps[0] = 0.0
    return np.cumsum(gaps)


def stream_trace(
    n_jobs: int = 100_000,
    *,
    seed: int = 0,
    max_nodes: int = 4392,
    min_exp: int = 0,
    max_exp: int = 9,
    size_decay: float = 0.8,
    pow2_fraction: float = 0.9,
    runtime_median_s: float = 1800.0,
    runtime_sigma: float = 1.0,
    mean_interarrival_s: float = 31.0,
    arrival_shape: float = 0.7,
) -> Iterator[TraceJob]:
    """Seeded benchmark trace as a constant-memory stream of jobs.

    Same distributions as the classic eager generator — Theta-scale by
    default (4392 nodes, 8-512 node requests, 90% powers of two), sizes
    from the geometric power-of-two mix of §5.1, lognormal runtimes,
    bursty Weibull submits — but generated in fixed chunks of
    :data:`STREAM_CHUNK_JOBS` jobs, so peak memory is flat no matter
    whether 100k or 10M jobs are requested.

    Chunk ``k`` draws from the child generator
    ``np.random.default_rng([seed, k])``, which makes the trace a pure
    function of ``(seed, job index)``: any prefix of a longer trace is
    bit-identical to the shorter trace with the same seed, and resuming
    a checkpointed streaming run only needs the same arguments, never
    the consumed prefix. (The resulting values differ from the pre-PR 9
    single-generator ``large_trace`` draws — that was a whole-trace
    draw order and inherently unstreamable.)

    Submit times stay globally non-decreasing: each chunk's Weibull
    gaps are offset by the previous chunk's last submit, and only the
    very first gap of the trace is zeroed (first job arrives at t=0).
    """
    require_positive_int(n_jobs, "n_jobs")
    require_positive_int(max_nodes, "max_nodes")
    weights = geometric_exponent_weights(max_exp, size_decay)[min_exp:]
    weights = weights / weights.sum()
    from math import gamma

    arrival_scale = mean_interarrival_s / gamma(1.0 + 1.0 / arrival_shape)
    offset = 0.0
    produced = 0
    chunk_idx = 0
    while produced < n_jobs:
        count = min(STREAM_CHUNK_JOBS, n_jobs - produced)
        rng = np.random.default_rng([seed, chunk_idx])
        # always draw the full chunk and truncate the yield: the arrays
        # are then a function of (seed, chunk_idx) alone, never of
        # n_jobs, which is what makes prefixes bit-stable
        sizes = power_of_two_sizes(
            rng,
            STREAM_CHUNK_JOBS,
            max_exp=max_exp,
            min_exp=min_exp,
            weights=weights,
            pow2_fraction=pow2_fraction,
        )
        sizes = np.minimum(sizes, max_nodes)
        runtimes = lognormal_runtimes(
            rng, STREAM_CHUNK_JOBS, median_seconds=runtime_median_s, sigma=runtime_sigma
        )
        gaps = arrival_scale * rng.weibull(arrival_shape, size=STREAM_CHUNK_JOBS)
        if chunk_idx == 0:
            gaps[0] = 0.0
        submits = offset + np.cumsum(gaps)
        for i in range(count):
            yield TraceJob(
                job_id=produced + i + 1,
                submit_time=float(submits[i]),
                nodes=int(sizes[i]),
                runtime=float(runtimes[i]),
            )
        offset = float(submits[-1])
        produced += count
        chunk_idx += 1


def large_trace(
    n_jobs: int = 100_000,
    *,
    seed: int = 0,
    max_nodes: int = 4392,
    min_exp: int = 0,
    max_exp: int = 9,
    size_decay: float = 0.8,
    pow2_fraction: float = 0.9,
    runtime_median_s: float = 1800.0,
    runtime_sigma: float = 1.0,
    mean_interarrival_s: float = 31.0,
    arrival_shape: float = 0.7,
) -> List[TraceJob]:
    """Deprecated eager form of :func:`stream_trace` (materializes the list).

    .. deprecated::
        ``large_trace`` builds the entire job list even when the caller
        only iterates it once, which is exactly the O(n) memory the
        streaming engine removes. It now delegates to
        :func:`stream_trace` (so the two are bit-identical) and warns;
        call :func:`stream_trace` directly, wrapping in ``list(...)``
        only if random access is genuinely needed.
    """
    warnings.warn(
        "large_trace materializes the whole trace; use stream_trace for "
        "constant-memory generation (wrap in list(...) if you need a list)",
        DeprecationWarning,
        stacklevel=2,
    )
    return list(
        stream_trace(
            n_jobs,
            seed=seed,
            max_nodes=max_nodes,
            min_exp=min_exp,
            max_exp=max_exp,
            size_decay=size_decay,
            pow2_fraction=pow2_fraction,
            runtime_median_s=runtime_median_s,
            runtime_sigma=runtime_sigma,
            mean_interarrival_s=mean_interarrival_s,
            arrival_shape=arrival_shape,
        )
    )


def exponential_arrivals(
    rng: np.random.Generator,
    n: int,
    *,
    mean_interarrival_seconds: float,
) -> np.ndarray:
    """Poisson-process submit times starting at 0 (first job arrives at 0)."""
    require_positive_int(n, "n")
    if mean_interarrival_seconds <= 0:
        raise ValueError("mean_interarrival_seconds must be > 0")
    gaps = rng.exponential(mean_interarrival_seconds, size=n)
    gaps[0] = 0.0
    return np.cumsum(gaps)
