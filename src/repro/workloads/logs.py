"""Synthetic Intrepid / Theta / Mira job logs (paper §5.1).

The real logs are not redistributable (Theta and Mira came from ALCF
directly; Intrepid's PWA trace requires a download), so these factories
generate 1000-job traces whose *stated statistics* match §5.1:

=========  =======  ==========  ============  ==============
machine    nodes    max request  % power-of-2  load level
=========  =======  ==========  ============  ==============
Intrepid   ~40K     40960        > 99%         light (paper total wait: 57 h)
Theta      4392     512          90%           heavily overloaded (45303 h)
Mira       ~48K     16384        > 99%         loaded (17387 h)
=========  =======  ==========  ============  ==============

Mean runtimes are tuned so the default-allocation totals land near the
paper's Table 3 execution-hour scale (Intrepid 1382 h -> ~1.4 h/job,
Theta 2189 h -> ~2.2 h/job, Mira 3289 h -> ~3.3 h/job). A user with the
real logs can bypass all of this via :mod:`repro.workloads.swf`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..topology.builders import intrepid_like, mira_like, theta_like
from ..topology.tree import TreeTopology
from .synthetic import (
    exponential_arrivals,
    geometric_exponent_weights,
    lognormal_runtimes,
    power_of_two_sizes,
)
from .trace import TraceJob

__all__ = ["LogSpec", "generate_log", "intrepid_log", "theta_log", "mira_log", "LOG_SPECS"]


@dataclass(frozen=True)
class LogSpec:
    """Parameters of one machine's synthetic log.

    ``size_weights`` are relative probabilities for size exponents
    ``min_exp..max_exp``; ``None`` uses the geometric default.
    """

    name: str
    topology: Callable[[], TreeTopology]
    min_exp: int
    max_exp: int
    size_weights: Optional[Sequence[float]]
    pow2_fraction: float
    runtime_median_s: float
    runtime_sigma: float
    mean_interarrival_s: float
    max_runtime_s: float = 86400.0
    #: geometric bias of size exponents when ``size_weights`` is None
    #: (< 1 favors small jobs, 1 is uniform over exponents)
    size_decay: float = 0.75


def generate_log(spec: LogSpec, n_jobs: int = 1000, seed: int = 0) -> List[TraceJob]:
    """Draw a reproducible ``n_jobs``-long trace for ``spec``.

    Sizes exceeding the machine are clamped to the largest power of two
    that fits (can only happen with custom weights).
    """
    rng = np.random.default_rng(seed)
    topo_nodes = spec.topology().n_nodes
    if spec.size_weights is not None:
        weights = np.asarray(spec.size_weights, dtype=np.float64)
    else:
        weights = geometric_exponent_weights(spec.max_exp, spec.size_decay)[spec.min_exp :]
        weights = weights / weights.sum()
    sizes = power_of_two_sizes(
        rng,
        n_jobs,
        max_exp=spec.max_exp,
        min_exp=spec.min_exp,
        weights=weights,
        pow2_fraction=spec.pow2_fraction,
    )
    sizes = np.minimum(sizes, topo_nodes)
    runtimes = lognormal_runtimes(
        rng,
        n_jobs,
        median_seconds=spec.runtime_median_s,
        sigma=spec.runtime_sigma,
        max_seconds=spec.max_runtime_s,
    )
    submits = exponential_arrivals(
        rng, n_jobs, mean_interarrival_seconds=spec.mean_interarrival_s
    )
    return [
        TraceJob(
            job_id=i + 1,
            submit_time=float(submits[i]),
            nodes=int(sizes[i]),
            runtime=float(runtimes[i]),
        )
        for i in range(n_jobs)
    ]


# ----------------------------------------------------------------------
# Machine specs. Interarrival rates set the load level: Intrepid runs
# light (near-zero waits, as in Table 3 row 1), Theta is overloaded
# (Table 3 row 2's enormous wait totals), Mira is in between.
# ----------------------------------------------------------------------

INTREPID_SPEC = LogSpec(
    name="intrepid",
    topology=intrepid_like,
    min_exp=6,  # 64-node minimum: BG/P allocates partitions, small jobs rare
    max_exp=14,  # 16384; the lone 40960 full-machine job is not generated
    size_weights=None,
    pow2_fraction=0.99,
    runtime_median_s=3200.0,
    runtime_sigma=0.9,
    mean_interarrival_s=240.0,
    size_decay=0.70,
)

THETA_SPEC = LogSpec(
    name="theta",
    topology=theta_like,
    min_exp=3,  # 8 nodes
    max_exp=9,  # 512, the paper's stated maximum for Theta
    size_weights=None,
    pow2_fraction=0.90,
    runtime_median_s=5200.0,
    runtime_sigma=1.0,
    mean_interarrival_s=240.0,
    size_decay=1.0,
)

MIRA_SPEC = LogSpec(
    name="mira",
    topology=mira_like,
    min_exp=9,  # 512-node minimum partition on BG/Q
    max_exp=14,  # 16384, the paper's stated maximum for Mira
    size_weights=None,
    pow2_fraction=0.99,
    runtime_median_s=7800.0,
    runtime_sigma=0.9,
    mean_interarrival_s=660.0,
    size_decay=0.70,
)

LOG_SPECS: Dict[str, LogSpec] = {
    "intrepid": INTREPID_SPEC,
    "theta": THETA_SPEC,
    "mira": MIRA_SPEC,
}


def intrepid_log(n_jobs: int = 1000, seed: int = 1) -> List[TraceJob]:
    """Synthetic Intrepid trace (light load, >=99% power-of-two sizes)."""
    return generate_log(INTREPID_SPEC, n_jobs, seed)


def theta_log(n_jobs: int = 1000, seed: int = 2) -> List[TraceJob]:
    """Synthetic Theta trace (overloaded, 90% power-of-two sizes)."""
    return generate_log(THETA_SPEC, n_jobs, seed)


def mira_log(n_jobs: int = 1000, seed: int = 3) -> List[TraceJob]:
    """Synthetic Mira trace (loaded, >=99% power-of-two sizes)."""
    return generate_log(MIRA_SPEC, n_jobs, seed)
