"""Trace transformations used in workload-modeling studies.

Standard operations from the workload literature (Feitelson's PWA
methodology): slicing a window out of a long trace, filtering by job
size, and rescaling the arrival intensity to probe other load levels —
the paper's own "varied this percentage" style sensitivity analyses
applied to the time axis.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from .trace import TraceJob
from .._validation import require_positive_int

__all__ = [
    "slice_window",
    "filter_sizes",
    "scale_load",
    "renumber",
    "concatenate",
    "iter_slice_window",
    "iter_filter_sizes",
    "iter_scale_load",
    "iter_renumber",
]


def slice_window(
    trace: Sequence[TraceJob], start: float, end: float, *, rebase: bool = True
) -> List[TraceJob]:
    """Jobs submitted in ``[start, end)``; optionally rebased to t=0."""
    if end <= start:
        raise ValueError(f"need start < end, got [{start}, {end})")
    kept = [t for t in trace if start <= t.submit_time < end]
    if not rebase or not kept:
        return kept
    t0 = min(t.submit_time for t in kept)
    return [
        TraceJob(t.job_id, t.submit_time - t0, t.nodes, t.runtime) for t in kept
    ]


def filter_sizes(
    trace: Sequence[TraceJob],
    *,
    min_nodes: int = 1,
    max_nodes: Optional[int] = None,
) -> List[TraceJob]:
    """Jobs whose node request lies in ``[min_nodes, max_nodes]``."""
    require_positive_int(min_nodes, "min_nodes")
    if max_nodes is not None and max_nodes < min_nodes:
        raise ValueError("max_nodes must be >= min_nodes")
    return [
        t
        for t in trace
        if t.nodes >= min_nodes and (max_nodes is None or t.nodes <= max_nodes)
    ]


def scale_load(trace: Sequence[TraceJob], factor: float) -> List[TraceJob]:
    """Compress (factor > 1) or stretch (factor < 1) interarrival times.

    Dividing every submit time by ``factor`` multiplies the offered load
    by ``factor`` without touching sizes or runtimes — the standard way
    to sweep utilization with a fixed job population.
    """
    if factor <= 0:
        raise ValueError(f"factor must be > 0, got {factor}")
    return [
        TraceJob(t.job_id, t.submit_time / factor, t.nodes, t.runtime) for t in trace
    ]


def renumber(trace: Sequence[TraceJob], *, start: int = 1) -> List[TraceJob]:
    """Assign fresh consecutive job ids in submit order."""
    ordered = sorted(trace, key=lambda t: (t.submit_time, t.job_id))
    return [
        TraceJob(start + i, t.submit_time, t.nodes, t.runtime)
        for i, t in enumerate(ordered)
    ]


def iter_slice_window(
    trace: Iterable[TraceJob], start: float, end: float, *, rebase: bool = True
) -> Iterator[TraceJob]:
    """Lazy :func:`slice_window` over a submit-ordered stream.

    Constant-memory counterpart for streaming traces. Requires the
    input to be non-decreasing in submit time (every generator in this
    package is): the rebase origin is then the *first* kept job, which
    is what the eager version's ``min`` computes, and iteration stops
    as soon as a submit at or past ``end`` is seen.
    """
    if end <= start:
        raise ValueError(f"need start < end, got [{start}, {end})")
    t0: Optional[float] = None
    for t in trace:
        if t.submit_time >= end:
            break
        if t.submit_time < start:
            continue
        if not rebase:
            yield t
            continue
        if t0 is None:
            t0 = t.submit_time
        yield TraceJob(t.job_id, t.submit_time - t0, t.nodes, t.runtime)


def iter_filter_sizes(
    trace: Iterable[TraceJob],
    *,
    min_nodes: int = 1,
    max_nodes: Optional[int] = None,
) -> Iterator[TraceJob]:
    """Lazy :func:`filter_sizes`: constant-memory size filtering."""
    require_positive_int(min_nodes, "min_nodes")
    if max_nodes is not None and max_nodes < min_nodes:
        raise ValueError("max_nodes must be >= min_nodes")
    for t in trace:
        if t.nodes >= min_nodes and (max_nodes is None or t.nodes <= max_nodes):
            yield t


def iter_scale_load(trace: Iterable[TraceJob], factor: float) -> Iterator[TraceJob]:
    """Lazy :func:`scale_load`: divide submit times by ``factor``."""
    if factor <= 0:
        raise ValueError(f"factor must be > 0, got {factor}")
    for t in trace:
        yield TraceJob(t.job_id, t.submit_time / factor, t.nodes, t.runtime)


def iter_renumber(trace: Iterable[TraceJob], *, start: int = 1) -> Iterator[TraceJob]:
    """Lazy :func:`renumber` for already submit-ordered streams.

    The eager version sorts; a stream cannot, so the input must already
    be non-decreasing in submit time — true of every generator here,
    and exactly the order the eager sort would produce.
    """
    for i, t in enumerate(trace):
        yield TraceJob(start + i, t.submit_time, t.nodes, t.runtime)


def concatenate(
    first: Sequence[TraceJob], second: Sequence[TraceJob], *, gap_seconds: float = 0.0
) -> List[TraceJob]:
    """Append ``second`` after ``first`` (shifted past its last submit).

    Ids are renumbered to stay unique.
    """
    if gap_seconds < 0:
        raise ValueError(f"gap_seconds must be >= 0, got {gap_seconds}")
    if not first:
        return renumber(second)
    offset = max(t.submit_time for t in first) + gap_seconds
    shifted = [
        TraceJob(t.job_id, t.submit_time + offset, t.nodes, t.runtime) for t in second
    ]
    return renumber(list(first) + shifted)
