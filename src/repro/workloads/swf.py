"""Standard Workload Format (SWF) v2 reader/writer.

The paper's Intrepid log comes from the Parallel Workloads Archive,
which distributes traces in SWF: `;`-prefixed header comments followed
by one job per line with 18 whitespace-separated integer fields
(Feitelson et al., "Experience with using the Parallel Workloads
Archive", JPDC 2014). This module parses the full record, filters the
way scheduling studies conventionally do (completed jobs with positive
size and runtime), and converts to :class:`~repro.workloads.trace.TraceJob`
so a user with PWA access can replay the *real* Intrepid trace through
every experiment unchanged.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from .trace import TraceJob

__all__ = [
    "SwfRecord",
    "SwfError",
    "parse_swf",
    "iter_swf",
    "load_swf",
    "write_swf",
    "swf_to_trace",
]

#: SWF field names, in file order.
SWF_FIELDS = (
    "job_number",
    "submit_time",
    "wait_time",
    "run_time",
    "allocated_processors",
    "average_cpu_time",
    "used_memory",
    "requested_processors",
    "requested_time",
    "requested_memory",
    "status",
    "user_id",
    "group_id",
    "executable",
    "queue_number",
    "partition_number",
    "preceding_job",
    "think_time",
)

#: SWF status code for a job that completed normally.
STATUS_COMPLETED = 1


class SwfError(ValueError):
    """Raised on malformed SWF content."""


@dataclass(frozen=True)
class SwfRecord:
    """One SWF job line, all 18 fields (missing values are -1 per spec)."""

    job_number: int
    submit_time: int
    wait_time: int
    run_time: int
    allocated_processors: int
    average_cpu_time: int
    used_memory: int
    requested_processors: int
    requested_time: int
    requested_memory: int
    status: int
    user_id: int
    group_id: int
    executable: int
    queue_number: int
    partition_number: int
    preceding_job: int
    think_time: int

    def to_line(self) -> str:
        """Render as one SWF data line."""
        return " ".join(str(getattr(self, f)) for f in SWF_FIELDS)


def _parse_swf_line(raw: str, lineno: int) -> Tuple[Optional[SwfRecord], Optional[str]]:
    """Parse one raw SWF line into ``(record, problem)``.

    Exactly one of the two is non-None, except for blank/comment lines
    which return ``(None, None)``. This is the single skip-logic shared
    by :func:`parse_swf` and :func:`iter_swf`, so a line both consider
    malformed is guaranteed to be the same line.
    """
    line = raw.strip()
    if not line or line.startswith(";"):
        return None, None
    parts = line.split()
    if len(parts) != len(SWF_FIELDS):
        return None, f"line {lineno}: expected {len(SWF_FIELDS)} fields, got {len(parts)}"
    try:
        values = [int(float(p)) for p in parts]
    except ValueError as exc:
        return None, f"line {lineno}: non-numeric field ({exc})"
    return SwfRecord(*values), None


class _SkipTally:
    """Counts skipped lines and emits one summary warning at the end.

    ``strict=False`` on a large archive trace must not emit one warning
    per malformed line; both parse entry points route skips through this
    tally and warn exactly once, with the count and the first offender.
    """

    def __init__(self, strict: bool):
        self.strict = strict
        self.skipped = 0
        self.first_bad: Optional[str] = None

    def record(self, problem: str) -> None:
        if self.strict:
            raise SwfError(problem)
        self.skipped += 1
        if self.first_bad is None:
            self.first_bad = problem

    def finish(self, stacklevel: int = 3) -> None:
        if self.skipped:
            warnings.warn(
                f"skipped {self.skipped} malformed SWF line(s); first: {self.first_bad}",
                UserWarning,
                stacklevel=stacklevel,
            )


def parse_swf(text: str, *, strict: bool = True) -> List[SwfRecord]:
    """Parse SWF text into records; header comments (``;``) are skipped.

    ``strict=True`` (the default) raises :class:`SwfError` on the first
    malformed data line. Real archive traces occasionally carry truncated
    or corrupt lines; ``strict=False`` skips those instead and emits one
    :class:`UserWarning` with the skip count and the first offender.
    """
    tally = _SkipTally(strict)
    records: List[SwfRecord] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        record, problem = _parse_swf_line(raw, lineno)
        if problem is not None:
            tally.record(problem)
        elif record is not None:
            records.append(record)
    tally.finish()
    return records


def iter_swf(
    source: Union[str, Path, Iterable[str]], *, strict: bool = True
) -> Iterator[SwfRecord]:
    """Stream SWF records one at a time without materializing the log.

    ``source`` is a filesystem path (opened and read line by line) or
    any iterable of lines (an open file handle works). Skip semantics
    match :func:`parse_swf` exactly — same shared line parser, same
    single summary :class:`UserWarning` under ``strict=False``, emitted
    when the iterator is exhausted. Peak memory is one line regardless
    of trace length, which is what lets a multi-gigabyte archive trace
    feed the streaming engine directly.
    """
    tally = _SkipTally(strict)
    if isinstance(source, (str, Path)):
        with open(source) as fh:
            yield from _iter_swf_lines(fh, tally)
    else:
        yield from _iter_swf_lines(source, tally)
    tally.finish()


def _iter_swf_lines(lines: Iterable[str], tally: _SkipTally) -> Iterator[SwfRecord]:
    """Shared line loop behind :func:`iter_swf` (path and iterable forms)."""
    for lineno, raw in enumerate(lines, start=1):
        record, problem = _parse_swf_line(raw, lineno)
        if problem is not None:
            tally.record(problem)
        elif record is not None:
            yield record


def load_swf(path: Union[str, Path], *, strict: bool = True) -> List[SwfRecord]:
    """Read and parse an SWF file from disk (see :func:`parse_swf`)."""
    return parse_swf(Path(path).read_text(), strict=strict)


def write_swf(records: Iterable[SwfRecord], header: Optional[str] = None) -> str:
    """Render records back to SWF text (optionally with a header comment)."""
    lines: List[str] = []
    if header:
        lines.extend(f"; {h}" for h in header.splitlines())
    lines.extend(r.to_line() for r in records)
    return "\n".join(lines) + "\n"


def swf_to_trace(
    records: Iterable[SwfRecord],
    *,
    processors_per_node: int = 1,
    max_jobs: Optional[int] = None,
    completed_only: bool = True,
) -> List[TraceJob]:
    """Convert SWF records to a schedulable trace.

    * jobs with non-positive size or runtime are dropped (cancelled /
      corrupt records);
    * ``completed_only`` additionally drops jobs whose status is not 1;
    * processor counts are converted to whole nodes (ceiling division by
      ``processors_per_node`` — Intrepid's SWF counts cores, 4/node);
    * submit times are shifted so the first kept job arrives at t=0.
    """
    if processors_per_node < 1:
        raise ValueError(f"processors_per_node must be >= 1, got {processors_per_node}")
    kept: List[SwfRecord] = []
    for rec in records:
        procs = rec.allocated_processors if rec.allocated_processors > 0 else rec.requested_processors
        if procs <= 0 or rec.run_time <= 0:
            continue
        if completed_only and rec.status != STATUS_COMPLETED:
            continue
        kept.append(rec)
        if max_jobs is not None and len(kept) >= max_jobs:
            break
    if not kept:
        return []
    t0 = min(r.submit_time for r in kept)
    trace: List[TraceJob] = []
    for rec in kept:
        procs = rec.allocated_processors if rec.allocated_processors > 0 else rec.requested_processors
        nodes = -(-procs // processors_per_node)  # ceiling
        trace.append(
            TraceJob(
                job_id=rec.job_number,
                submit_time=float(rec.submit_time - t0),
                nodes=int(nodes),
                runtime=float(rec.run_time),
            )
        )
    trace.sort(key=lambda j: (j.submit_time, j.job_id))
    return trace
