"""Job-log substrate: SWF parsing, synthetic machine logs, labelling."""

from .trace import TraceJob, validate_trace
from .trace_ops import concatenate, filter_sizes, renumber, scale_load, slice_window
from .swf import SwfError, SwfRecord, load_swf, parse_swf, swf_to_trace, write_swf
from .arrivals import SECONDS_PER_DAY, daily_cycle_arrivals
from .synthetic import (
    exponential_arrivals,
    geometric_exponent_weights,
    large_trace,
    lognormal_runtimes,
    power_of_two_sizes,
    weibull_arrivals,
)
from .logs import (
    LOG_SPECS,
    LogSpec,
    generate_log,
    intrepid_log,
    mira_log,
    theta_log,
)
from .export import result_to_swf, result_to_swf_records
from .classify import (
    DEFAULT_COMM_FRACTION,
    EXPERIMENT_SETS,
    CommMix,
    assign_kinds,
    make_mix,
    single_pattern_mix,
)

__all__ = [
    "TraceJob",
    "validate_trace",
    "concatenate",
    "filter_sizes",
    "renumber",
    "scale_load",
    "slice_window",
    "SwfError",
    "SwfRecord",
    "load_swf",
    "parse_swf",
    "swf_to_trace",
    "write_swf",
    "SECONDS_PER_DAY",
    "daily_cycle_arrivals",
    "exponential_arrivals",
    "geometric_exponent_weights",
    "large_trace",
    "lognormal_runtimes",
    "power_of_two_sizes",
    "weibull_arrivals",
    "LOG_SPECS",
    "LogSpec",
    "generate_log",
    "intrepid_log",
    "mira_log",
    "theta_log",
    "DEFAULT_COMM_FRACTION",
    "EXPERIMENT_SETS",
    "CommMix",
    "assign_kinds",
    "result_to_swf",
    "result_to_swf_records",
    "make_mix",
    "single_pattern_mix",
]
