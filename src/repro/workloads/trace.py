"""Raw job-trace records.

A :class:`TraceJob` is what a job log provides *before* the paper's
annotations are applied: submit time, node count, runtime. Both the SWF
parser (real Parallel Workload Archive logs) and the synthetic
generators produce these;
:func:`repro.workloads.classify.assign_kinds` then turns them into
schedulable :class:`~repro.cluster.job.Job` objects with comm/compute
labels and collective patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .._validation import require_non_negative, require_positive_int

__all__ = ["TraceJob", "validate_trace"]


@dataclass(frozen=True)
class TraceJob:
    """One raw log record (times in seconds, nodes in whole nodes)."""

    job_id: int
    submit_time: float
    nodes: int
    runtime: float

    def __post_init__(self) -> None:
        require_positive_int(self.nodes, "nodes")
        require_non_negative(self.submit_time, "submit_time")
        require_non_negative(self.runtime, "runtime")


def validate_trace(trace: Sequence[TraceJob], max_nodes: int | None = None) -> List[str]:
    """Return a list of problems found in a trace (empty = clean).

    Checks: duplicate job ids, non-monotone submit order, requests
    exceeding ``max_nodes`` (when given).
    """
    problems: List[str] = []
    seen = set()
    last_submit = -1.0
    for job in trace:
        if job.job_id in seen:
            problems.append(f"duplicate job id {job.job_id}")
        seen.add(job.job_id)
        if job.submit_time < last_submit:
            problems.append(
                f"job {job.job_id} submitted at {job.submit_time} before "
                f"predecessor at {last_submit}"
            )
        last_submit = max(last_submit, job.submit_time)
        if max_nodes is not None and job.nodes > max_nodes:
            problems.append(f"job {job.job_id} requests {job.nodes} > {max_nodes} nodes")
    return problems
