"""Comm/compute labelling and pattern assignment (paper §5.1, §6.2).

The logs carry no job-nature information; the paper assumes a chosen
percentage of jobs (30-90%) is communication-intensive and assigns each
the communication mix of the experiment at hand. This module implements
that step: given a raw trace, a percentage, and a mix, it produces
schedulable :class:`~repro.cluster.job.Job` objects, seeded for
reproducibility.

The §6.2 experiment sets are provided as named mixes:

====  ==============================  =====================
set   composition                     comm fraction
====  ==============================  =====================
A     67% compute, 33% RHVD           0.33
B     50% compute, 50% RHVD           0.50
C     30% compute, 70% RHVD           0.70
D     50% compute, 15% RD + 35% bin.  0.50
E     30% compute, 21% RD + 49% bin.  0.70
====  ==============================  =====================
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from ..cluster.job import CommComponent, Job, JobKind
from ..patterns.binomial import BinomialTree
from ..patterns.recursive_doubling import RecursiveDoubling
from ..patterns.registry import get_pattern
from ..patterns.rhvd import RecursiveHalvingVectorDoubling
from .._validation import require_fraction
from .trace import TraceJob

__all__ = [
    "CommMix",
    "EXPERIMENT_SETS",
    "DEFAULT_COMM_FRACTION",
    "make_mix",
    "single_pattern_mix",
    "assign_kinds",
    "assign_kinds_stream",
]

#: A communication mix: ((pattern name, fraction of total runtime), ...).
CommMix = Tuple[Tuple[str, float], ...]

#: §6.2 experiment sets A-E.
EXPERIMENT_SETS: Dict[str, CommMix] = {
    "A": (("rhvd", 0.33),),
    "B": (("rhvd", 0.50),),
    "C": (("rhvd", 0.70),),
    "D": (("rd", 0.15), ("binomial", 0.35)),
    "E": (("rd", 0.21), ("binomial", 0.49)),
}

# Default single-pattern mixes for the Table 3 / Table 4 style runs,
# which fix one pattern per run; the paper does not state the comm
# fraction there, so we use the heaviest §6.2 value (0.7) — see
# DESIGN.md "Modelling decisions".
DEFAULT_COMM_FRACTION = 0.70


def make_mix(mix: CommMix) -> Tuple[CommComponent, ...]:
    """Instantiate pattern objects for a named mix."""
    components = tuple(
        CommComponent(get_pattern(name), float(fraction)) for name, fraction in mix
    )
    total = sum(c.fraction for c in components)
    if total > 1.0 + 1e-9:
        raise ValueError(f"mix fractions sum to {total} > 1")
    return components


def single_pattern_mix(pattern_name: str, comm_fraction: float = DEFAULT_COMM_FRACTION) -> CommMix:
    """Mix with one pattern at the given runtime fraction."""
    require_fraction(comm_fraction, "comm_fraction")
    return ((pattern_name, comm_fraction),)


def assign_kinds(
    trace: Sequence[TraceJob],
    *,
    percent_comm: float,
    mix: CommMix,
    seed: int = 0,
) -> List[Job]:
    """Label a trace and attach communication components.

    ``percent_comm`` is the paper's percentage of communication-intensive
    jobs (0-100). Which jobs get the label is a seeded uniform draw, so
    the same seed labels the same jobs across allocator runs — required
    for a fair comparison.
    """
    if not 0.0 <= percent_comm <= 100.0:
        raise ValueError(f"percent_comm must be in [0, 100], got {percent_comm}")
    rng = np.random.default_rng(seed)
    n = len(trace)
    n_comm = int(round(n * percent_comm / 100.0))
    comm_idx = set(rng.choice(n, size=n_comm, replace=False).tolist()) if n_comm else set()
    components = make_mix(mix)
    jobs: List[Job] = []
    for i, t in enumerate(trace):
        if i in comm_idx and t.nodes > 1:
            jobs.append(
                Job(
                    job_id=t.job_id,
                    submit_time=t.submit_time,
                    nodes=t.nodes,
                    runtime=t.runtime,
                    kind=JobKind.COMM,
                    comm=components,
                )
            )
        else:
            # single-node jobs have no network communication; label them
            # compute-intensive regardless of the draw
            jobs.append(
                Job(
                    job_id=t.job_id,
                    submit_time=t.submit_time,
                    nodes=t.nodes,
                    runtime=t.runtime,
                    kind=JobKind.COMPUTE,
                )
            )
    return jobs


def assign_kinds_stream(
    trace: Iterable[TraceJob],
    *,
    percent_comm: float,
    mix: CommMix,
    seed: int = 0,
) -> Iterator[Job]:
    """Streaming :func:`assign_kinds`: label jobs without materializing.

    The eager version draws an *exact-count* sample — impossible when
    the trace length is unknown up front — so the stream labels each
    job by an independent seeded Bernoulli draw at ``percent_comm/100``
    instead. The label is a pure function of ``(seed, job index)``:
    deterministic, prefix-stable, and independent of how the upstream
    iterator chunks its work. The realized comm share converges on
    ``percent_comm`` but is not exact, so a streaming run and an eager
    run of the *same trace* only compare bit-identically when both
    sides use the same labeler (materialize this stream with
    ``list(...)`` for the eager side).

    Single-node jobs are labeled compute-intensive regardless of the
    draw (the draw is still consumed, keeping indices aligned), exactly
    like the eager path.
    """
    if not 0.0 <= percent_comm <= 100.0:
        raise ValueError(f"percent_comm must be in [0, 100], got {percent_comm}")
    rng = np.random.default_rng(seed)
    threshold = percent_comm / 100.0
    components = make_mix(mix)
    for t in trace:
        # sequential scalar draws from one generator produce the same
        # stream however the caller batches consumption
        is_comm = rng.random() < threshold
        if is_comm and t.nodes > 1:
            yield Job(
                job_id=t.job_id,
                submit_time=t.submit_time,
                nodes=t.nodes,
                runtime=t.runtime,
                kind=JobKind.COMM,
                comm=components,
            )
        else:
            yield Job(
                job_id=t.job_id,
                submit_time=t.submit_time,
                nodes=t.nodes,
                runtime=t.runtime,
                kind=JobKind.COMPUTE,
            )
