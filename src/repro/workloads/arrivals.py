"""Non-stationary arrival processes (extension).

Real supercomputer logs show a strong daily cycle — submissions peak in
working hours and dip overnight (Feitelson et al. 2014). The paper
replays logged submit times directly; for synthetic studies of the
allocators under bursty load, this module adds a non-homogeneous
Poisson process with a sinusoidal daily rate, sampled by thinning.
"""

from __future__ import annotations

import numpy as np

from .._validation import require_positive_int

__all__ = ["daily_cycle_arrivals", "SECONDS_PER_DAY"]

SECONDS_PER_DAY = 86400.0


def daily_cycle_arrivals(
    rng: np.random.Generator,
    n: int,
    *,
    mean_interarrival_seconds: float,
    peak_to_trough: float = 3.0,
    peak_hour: float = 14.0,
) -> np.ndarray:
    """Submit times from a sinusoidal-rate Poisson process (thinning).

    Parameters
    ----------
    mean_interarrival_seconds:
        Long-run average gap between submissions.
    peak_to_trough:
        Ratio of the peak rate to the trough rate (>= 1; 1 = stationary).
    peak_hour:
        Hour of (simulated) day with the highest rate; the process
        starts at midnight of day 0 and the first job arrives at t=0.
    """
    require_positive_int(n, "n")
    if mean_interarrival_seconds <= 0:
        raise ValueError("mean_interarrival_seconds must be > 0")
    if peak_to_trough < 1.0:
        raise ValueError(f"peak_to_trough must be >= 1, got {peak_to_trough}")
    if not 0.0 <= peak_hour < 24.0:
        raise ValueError(f"peak_hour must be in [0, 24), got {peak_hour}")

    base_rate = 1.0 / mean_interarrival_seconds
    # rate(t) = base * (1 + a*cos(...)) with mean `base` over a day
    amplitude = (peak_to_trough - 1.0) / (peak_to_trough + 1.0)
    peak_t = peak_hour * 3600.0

    def rate(t: float) -> float:
        phase = 2.0 * np.pi * (t - peak_t) / SECONDS_PER_DAY
        return base_rate * (1.0 + amplitude * np.cos(phase))

    rate_max = base_rate * (1.0 + amplitude)
    times = np.empty(n, dtype=np.float64)
    times[0] = 0.0
    t = 0.0
    filled = 1
    while filled < n:
        t += rng.exponential(1.0 / rate_max)
        if rng.random() <= rate(t) / rate_max:  # thinning acceptance
            times[filled] = t
            filled += 1
    return times
