"""Runtime invariant checking over cluster state and the engine.

:meth:`ClusterState.validate` is an assert-based debugging aid: the
first drifted counter aborts with a bare ``AssertionError``. This
module is its production-grade counterpart — every invariant has a
*name*, a check returns **all** violations (not just the first), and
the engine can run the whole battery every N event batches
(``EngineConfig.validate_invariants`` / ``simulate
--validate-invariants``) with checks and violations surfaced as
``engine.invariant_checks`` / ``engine.invariant_violations`` in
:mod:`repro.obs`.

Invariants checked (see ``docs/resilience.md`` for the full table):

* ``leaf-free-conservation`` / ``leaf-offline-conservation`` /
  ``leaf-comm-conservation`` / ``leaf-io-conservation`` — every
  per-leaf counter equals a fresh bincount of the node-granular
  arrays; together with ``counter-bounds`` this is the
  free + busy + offline == capacity conservation law.
* ``comm-within-busy`` / ``io-within-busy`` — kind counters never
  exceed occupancy.
* ``no-double-allocation`` — no node is held by two running jobs.
* ``node-job-index`` — the node→job index agrees with the running
  records, exactly.
* ``no-job-on-down-node`` — DOWN nodes never carry running work.
* ``version-monotonic`` — the state's mutation counter never runs
  backwards between checks (a stateful check).
* ``heap-running-consistency`` — every running job has its FINISH
  event in the heap, referencing the *same* entry object (the
  engine's stale-finish detection depends on identity).
* ``queue-running-disjoint`` — no job is simultaneously queued and
  running.
"""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

from . import perf
from .cluster.state import AVAIL_DOWN, AVAIL_UP, NODE_COMM, NODE_FREE, NODE_IO, ClusterState
from .scheduler.events import EventKind

__all__ = ["InvariantViolation", "check_cluster_state", "InvariantChecker"]


class InvariantViolation(AssertionError):
    """One or more named invariants failed.

    ``violations`` holds every failure found by the check that raised,
    each prefixed with its invariant name — a corrupted state usually
    breaks several invariants at once, and the full list is what makes
    the failure diagnosable.
    """

    def __init__(self, violations: List[str]) -> None:
        self.violations = list(violations)
        summary = "; ".join(self.violations[:3])
        extra = len(self.violations) - 3
        if extra > 0:
            summary += f"; … and {extra} more"
        super().__init__(
            f"{len(self.violations)} invariant violation(s): {summary}"
        )


def check_cluster_state(state: ClusterState) -> List[str]:
    """All cluster-state invariant violations, empty when healthy.

    Pure and side-effect free: reads the state, mutates nothing, and
    never raises — callers decide whether a non-empty list is fatal.
    """
    topo = state.topology
    out: List[str] = []
    free_mask = (state.node_state == NODE_FREE) & (state.node_avail == AVAIL_UP)
    offline_mask = (state.node_state == NODE_FREE) & (state.node_avail != AVAIL_UP)
    leaf_of = topo.leaf_of_node
    pairs = [
        ("leaf-free-conservation", free_mask, state.leaf_free, "leaf_free"),
        ("leaf-offline-conservation", offline_mask, state.leaf_offline, "leaf_offline"),
        ("leaf-comm-conservation", state.node_state == NODE_COMM, state.leaf_comm, "leaf_comm"),
        ("leaf-io-conservation", state.node_state == NODE_IO, state.leaf_io, "leaf_io"),
    ]
    for name, mask, counter, label in pairs:
        expect = np.bincount(leaf_of[mask], minlength=topo.n_leaves)
        if not np.array_equal(expect, counter):
            bad = np.flatnonzero(expect != counter)
            out.append(
                f"{name}: {label} drifted on {bad.size} leaf(s) "
                f"(first: leaf {int(bad[0])} holds {int(counter[bad[0]])}, "
                f"nodes say {int(expect[bad[0]])})"
            )
    if np.any(state.leaf_free < 0) or np.any(state.leaf_free > topo.leaf_sizes):
        out.append("counter-bounds: leaf_free outside [0, leaf_sizes]")
    if np.any(state.leaf_offline < 0):
        out.append("counter-bounds: negative leaf_offline")
    busy = state.leaf_busy
    if np.any(state.leaf_comm > busy):
        out.append("comm-within-busy: leaf_comm exceeds leaf_busy")
    if np.any(state.leaf_io > busy):
        out.append("io-within-busy: leaf_io exceeds leaf_busy")

    seen = np.zeros(topo.n_nodes, dtype=bool)
    for record in state.running.values():
        clash = record.nodes[seen[record.nodes]]
        if clash.size:
            out.append(
                f"no-double-allocation: node(s) {clash[:4].tolist()} held by "
                f"job {record.job_id} and an earlier job"
            )
        seen[record.nodes] = True
        wrong = record.nodes[state.node_job[record.nodes] != record.job_id]
        if wrong.size:
            out.append(
                f"node-job-index: node(s) {wrong[:4].tolist()} of job "
                f"{record.job_id} point elsewhere in node_job"
            )
        down = record.nodes[state.node_avail[record.nodes] == AVAIL_DOWN]
        if down.size:
            out.append(
                f"no-job-on-down-node: job {record.job_id} occupies DOWN "
                f"node(s) {down[:4].tolist()}"
            )
    if not np.array_equal(seen, state.node_state != NODE_FREE):
        out.append(
            "no-double-allocation: occupied node_state entries disagree "
            "with the union of running allocations"
        )
    if not np.array_equal(seen, state.node_job >= 0):
        out.append("node-job-index: node_job occupancy disagrees with running set")
    return out


class InvariantChecker:
    """Stateful battery: cluster-state checks plus engine-level ones.

    One checker lives for one engine run; the state it keeps between
    calls (the last seen version counter) is what makes the
    monotonicity invariant checkable at all. Every call bumps
    ``engine.invariant_checks``; every violation bumps
    ``engine.invariant_violations`` — both visible in ``--perf`` /
    ``--metrics-out`` output.
    """

    def __init__(self, *, raise_on_violation: bool = True) -> None:
        self.raise_on_violation = raise_on_violation
        self.checks = 0
        self.violations: List[str] = []
        self._last_version: Optional[int] = None

    def check_state(self, state: ClusterState) -> List[str]:
        """Cluster-state battery plus version monotonicity."""
        found = check_cluster_state(state)
        if self._last_version is not None and state.version < self._last_version:
            found.append(
                f"version-monotonic: state version ran backwards "
                f"({self._last_version} -> {state.version})"
            )
        self._last_version = state.version
        return found

    def check_engine(self, engine: Any, rs: Any) -> List[str]:
        """Full battery over a live engine run.

        ``engine`` is a :class:`~repro.scheduler.engine.SchedulerEngine`
        and ``rs`` its active run state; both are read via their public
        attributes only (duck-typed so this module never imports the
        engine).
        """
        self.checks += 1
        perf.count("engine.invariant_checks")
        found = self.check_state(rs.state)

        finish_entries = {
            id(event.payload)
            for event in rs.events.snapshot_entries()
            if event.kind is EventKind.FINISH
        }
        for job_id, entry in rs.running.items():
            if id(entry) not in finish_entries:
                found.append(
                    f"heap-running-consistency: running job {job_id} has no "
                    "FINISH event in the heap (it would run forever)"
                )
        queued = {job.job_id for job in rs.queue}
        both = queued & set(rs.running)
        if both:
            found.append(
                f"queue-running-disjoint: job(s) {sorted(both)[:4]} are "
                "queued and running at once"
            )
        if found:
            perf.count("engine.invariant_violations", len(found))
            self.violations.extend(found)
            if self.raise_on_violation:
                raise InvariantViolation(found)
        return found
