"""Job-level communication cost (Eq. 6) and runtime rescaling (Eq. 7).

Eq. 6 sums, over the steps of the job's collective algorithm, the
*maximum* effective hop count among that step's simultaneously
communicating node pairs — the slowest pair paces a lock-step collective
phase::

    Cost = sum_n  max_{(i,j) in S_n} Hops(i, j)

§5.3 additionally notes that hop-*bytes* (hops x msize) "gives an
indication of communication time" and that vector-doubling algorithms
double msize per step. :class:`CostModel` therefore supports weighting
each step by its relative message size (the default used throughout the
experiments; pass ``weight_by_msize=False`` for the literal Eq. 6).

Eq. 7 rescales a communication-intensive job's runtime by the ratio of
its job-aware allocation cost to the default allocation cost::

    T' = T_compute + T_comm * Cost_jobaware / Cost_default

Evaluation goes through the leaf-pair kernel
(:mod:`repro.cost.leafpair`): distance and contention depend only on the
pair's leaf switches, so each step's max is taken over unique leaf pairs
(O(L²)) instead of node pairs (O(P)). Finished totals are memoized on
the state against its version counter; :meth:`CostModel.
allocation_cost_pairwise` keeps the direct per-node-pair evaluation as
the reference the property tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Sequence, Tuple

import numpy as np

from .. import perf
from ..cluster.job import Job
from ..cluster.state import ClusterState
from ..patterns.base import CommunicationPattern
from .contention import PAPER_CONTENTION, ContentionModel
from .hops import effective_hops
from .leafpair import leaf_pair_cost

__all__ = ["CostModel", "allocation_cost", "adjusted_runtime"]


@lru_cache(maxsize=1024)
def _cached_steps(pattern: CommunicationPattern, nranks: int) -> Tuple:
    """Step lists are deterministic per (pattern, nranks); cache them.

    A continuous run evaluates the same pattern at the same power-of-two
    sizes thousands of times; regenerating the pair arrays dominated the
    profile before this cache. Patterns hash by type (plus parameters),
    so distinct configurations get distinct entries.
    """
    return tuple(pattern.steps(nranks))


@dataclass(frozen=True)
class CostModel:
    """Configuration of the Eq. 6 evaluation.

    Attributes
    ----------
    weight_by_msize:
        Weight each step's max-hops by the step's relative message size
        (hop-bytes, §5.3). ``False`` gives the literal Eq. 6.
    contention:
        Eq. 3 upper-switch weighting; defaults to the paper's fat-tree
        value (see :class:`~repro.cost.contention.ContentionModel` for
        the §7 other-topology generalization).
    """

    weight_by_msize: bool = True
    contention: ContentionModel = PAPER_CONTENTION

    def allocation_cost(
        self,
        state: ClusterState,
        nodes: Sequence[int],
        pattern: CommunicationPattern,
    ) -> float:
        """Eq. 6 cost of running ``pattern`` on ``nodes`` under ``state``.

        Ranks ``0..len(nodes)-1`` map to ``nodes`` in order, so the
        allocation order chosen by the allocator (which blocks of ranks
        land on which switch) is what gets priced. ``state`` should
        already include the job's own allocation — the paper's worked
        example counts the job's own nodes in ``L_comm``. A
        :class:`~repro.cluster.state.CommOverlay` view (the base state
        plus the hypothetical job) is accepted in place of a full state.
        """
        node_arr = np.asarray(nodes, dtype=np.int64)
        if node_arr.ndim != 1 or node_arr.size == 0:
            raise ValueError("nodes must be a non-empty 1-D sequence")
        if node_arr.size == 1:
            return 0.0
        cache_key = (self, pattern, node_arr.size, node_arr.tobytes())
        cached = state.cost_cache_get(cache_key)
        if cached is not None:
            perf.count("cost.cache_hits")
            return cached
        perf.count("cost.cache_misses")
        perf.count("cost.kernel_nodes", node_arr.size)
        # Rank layouts (srun -m block/cyclic) legally repeat node ids —
        # several ranks per node, intra-node pairs free. Those need the
        # node-keyed reduction; allocations (always unique ids) share
        # the cheaper leaf-assignment-keyed one.
        with perf.timer("cost.kernel"):
            seen = np.zeros(state.topology.n_nodes, dtype=bool)
            seen[node_arr] = True
            unique_nodes = int(seen.sum()) == node_arr.size
            total = leaf_pair_cost(
                state,
                node_arr,
                pattern,
                _cached_steps(pattern, int(node_arr.size)),
                self.contention,
                self.weight_by_msize,
                unique_nodes,
            )
        state.cost_cache_put(cache_key, total)
        return total

    def allocation_cost_pairwise(
        self,
        state: ClusterState,
        nodes: Sequence[int],
        pattern: CommunicationPattern,
    ) -> float:
        """Reference per-node-pair Eq. 6 evaluation (uncached, O(P)).

        Kept as the ground truth the leaf-pair kernel is property-tested
        against, and as the baseline the benchmark snapshot compares to.
        """
        node_arr = np.asarray(nodes, dtype=np.int64)
        if node_arr.ndim != 1 or node_arr.size == 0:
            raise ValueError("nodes must be a non-empty 1-D sequence")
        if node_arr.size == 1:
            return 0.0
        total = 0.0
        for step in _cached_steps(pattern, int(node_arr.size)):
            if step.n_pairs == 0:
                continue
            src = node_arr[step.pairs[:, 0]]
            dst = node_arr[step.pairs[:, 1]]
            worst = float(effective_hops(state, src, dst, self.contention).max())
            weight = step.msize if self.weight_by_msize else 1.0
            total += worst * weight * step.repeat
        return total


    def job_cost(
        self,
        state: ClusterState,
        nodes: Sequence[int],
        job: Job,
    ) -> Dict[CommunicationPattern, float]:
        """Eq. 6 cost per communication component of ``job``."""
        return {
            comp.pattern: self.allocation_cost(state, nodes, comp.pattern)
            for comp in job.comm
        }

    def runtime_ratio(self, cost_jobaware: float, cost_default: float) -> float:
        """``Cost_jobaware / Cost_default`` with a both-zero guard.

        Zero cost happens for single-node jobs (no network traffic); the
        ratio is then 1 (no change). A zero default cost with a non-zero
        job-aware cost cannot arise from Eq. 5 (hops are >= distance > 0
        whenever two distinct nodes communicate), so it is rejected.
        """
        if cost_default < 0 or cost_jobaware < 0:
            raise ValueError("costs must be non-negative")
        if cost_default == 0.0:
            if cost_jobaware == 0.0:
                return 1.0
            raise ValueError("default cost is 0 but job-aware cost is not")
        return cost_jobaware / cost_default

    def adjusted_runtime(
        self,
        job: Job,
        cost_jobaware: Dict[CommunicationPattern, float],
        cost_default: Dict[CommunicationPattern, float],
    ) -> float:
        """Eq. 7: rescale each communication component by its cost ratio.

        ``T' = T * (compute_fraction + sum_c frac_c * ratio_c)``. Compute
        jobs (no components) return the logged runtime unchanged.
        """
        factor = job.compute_fraction
        for comp in job.comm:
            ratio = self.runtime_ratio(
                cost_jobaware[comp.pattern], cost_default[comp.pattern]
            )
            factor += comp.fraction * ratio
        return job.runtime * factor


# Module-level conveniences using the default (msize-weighted) model.
_DEFAULT = CostModel()


def allocation_cost(
    state: ClusterState, nodes: Sequence[int], pattern: CommunicationPattern
) -> float:
    """Eq. 6 under the default :class:`CostModel`."""
    return _DEFAULT.allocation_cost(state, nodes, pattern)


def adjusted_runtime(
    job: Job,
    cost_jobaware: Dict[CommunicationPattern, float],
    cost_default: Dict[CommunicationPattern, float],
) -> float:
    """Eq. 7 under the default :class:`CostModel`."""
    return _DEFAULT.adjusted_runtime(job, cost_jobaware, cost_default)
