"""Communication-cost model (paper §5.3, Eqs. 2-7)."""

from .contention import ContentionModel, contention_factor, contention_factor_scalar
from .hops import effective_hops, effective_hops_scalar, hop_bytes
from .kernels import HAVE_NUMBA, kernel_active, pair_weights, segment_worst
from .leafpair import clear_leaf_pair_cache, leaf_pair_cost, leaf_pair_steps
from .model import CostModel, adjusted_runtime, allocation_cost

__all__ = [
    "HAVE_NUMBA",
    "kernel_active",
    "pair_weights",
    "segment_worst",
    "ContentionModel",
    "contention_factor",
    "contention_factor_scalar",
    "effective_hops",
    "effective_hops_scalar",
    "hop_bytes",
    "leaf_pair_cost",
    "leaf_pair_steps",
    "clear_leaf_pair_cache",
    "CostModel",
    "adjusted_runtime",
    "allocation_cost",
]
