"""Contention factor C(i, j) — paper Eqs. 2 and 3.

For two nodes on the *same* leaf switch only that switch's contention
matters::

    C(i, j) = L_comm / L_nodes                                   (Eq. 2)

For nodes on *different* leaf switches, contention accrues sequentially
at the source leaf, the destination leaf, and the common upper switch —
the upper term halved because fat-tree link counts double per level::

    C(i, j) = Li_comm/Li_nodes + Lj_comm/Lj_nodes
              + (Li_comm + Lj_comm) / (2 * (Li_nodes + Lj_nodes))  (Eq. 3)

The paper's worked example (Figure 5): two comm-intensive jobs on
nodes {n0,n1,n4,n5} and {n2,n3} of two 4-node leaves give
``C(n0, n1) = 1`` and ``C(n0, n4) = 1 + 0.5 + 0.375 = 1.875``.

Both a vectorized implementation and a plain-Python scalar reference are
provided; property tests assert they agree.

§7 names "extend our optimizations to other topologies using appropriate
contention factor" as future work; :class:`ContentionModel` implements
that generalization. The paper's 1/2 factor encodes "links double as we
move up a fat-tree"; ``uplink_discount`` generalizes it to other
fatness ratios (1.0 = single-rooted tree with no extra uplink capacity,
0.25 = links quadruple per level), and ``per_level=True`` compounds the
discount with the depth of the lowest common switch, so pairs meeting
near the root of a deep fat tree see geometrically less shared
contention — the right shape for full-bisection Clos fabrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.state import ClusterState

__all__ = ["ContentionModel", "contention_factor", "contention_factor_scalar"]


@dataclass(frozen=True)
class ContentionModel:
    """Generalized Eq. 3 upper-switch term (paper default: 0.5, flat).

    Attributes
    ----------
    uplink_discount:
        Weight of the common-switch contention term. The paper's
        fat-tree value is 0.5 ("the number of links double as we move
        up"). 1.0 models a plain tree, smaller values fatter fabrics.
    per_level:
        When True the discount compounds per level above the leaves:
        a pair whose lowest common switch sits at level L contributes
        ``uplink_discount ** (L - 1)`` — topology-aware contention for
        trees deeper than the paper's two levels.
    """

    uplink_discount: float = 0.5
    per_level: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.uplink_discount <= 1.0:
            raise ValueError(
                f"uplink_discount must be in [0, 1], got {self.uplink_discount}"
            )

    def shared_weight(self, lca_level) -> np.ndarray:
        """Weight of the common-switch term for pairs meeting at ``lca_level``."""
        if not self.per_level:
            return np.full(np.shape(lca_level) or (), self.uplink_discount)
        return self.uplink_discount ** (np.asarray(lca_level, dtype=np.float64) - 1.0)


#: the paper's Eq. 3 configuration
PAPER_CONTENTION = ContentionModel()


def contention_factor(
    state: ClusterState, node_i, node_j, model: ContentionModel = PAPER_CONTENTION
) -> np.ndarray:
    """Vectorized C(i, j) over node-id arrays (broadcast together)."""
    topo = state.topology
    ni, nj = np.broadcast_arrays(
        np.asarray(node_i, dtype=np.int64), np.asarray(node_j, dtype=np.int64)
    )
    la = topo.leaf_of_node[ni]
    lb = topo.leaf_of_node[nj]
    sizes = topo.leaf_sizes
    comm = state.leaf_comm
    share_a = comm[la] / sizes[la]
    share_b = comm[lb] / sizes[lb]
    if model.per_level:
        weight = model.shared_weight(topo.lca_level(la, lb))
    else:
        weight = model.uplink_discount
    cross = share_a + share_b + weight * (comm[la] + comm[lb]) / (
        sizes[la] + sizes[lb]
    )
    return np.where(la == lb, share_a, cross)


def contention_factor_scalar(
    state: ClusterState,
    node_i: int,
    node_j: int,
    model: ContentionModel = PAPER_CONTENTION,
) -> float:
    """Scalar reference implementation of Eqs. 2/3 (used by property tests)."""
    topo = state.topology
    la = int(topo.leaf_of_node[node_i])
    lb = int(topo.leaf_of_node[node_j])
    comm_a = int(state.leaf_comm[la])
    size_a = int(topo.leaf_sizes[la])
    if la == lb:
        return comm_a / size_a
    comm_b = int(state.leaf_comm[lb])
    size_b = int(topo.leaf_sizes[lb])
    if model.per_level:
        weight = float(model.uplink_discount ** (int(topo.lca_level(la, lb)) - 1))
    else:
        weight = model.uplink_discount
    return (
        comm_a / size_a
        + comm_b / size_b
        + weight * (comm_a + comm_b) / (size_a + size_b)
    )
