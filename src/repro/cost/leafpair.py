"""Leaf-pair Eq. 6 kernel — the per-node-pair evaluation, aggregated.

Eq. 4 distance and the Eq. 2/3 contention factor depend only on the
*leaf switches* of a communicating node pair, never on the node ids
themselves (intra-node pairs are the one exception: they cost 0 and are
dropped up front). A collective step's ``max`` over its node pairs is
therefore the max over the step's *unique leaf pairs* — O(L²) work per
step instead of O(P), where P reaches 10⁸ pair evaluations per run at
Mira scale (136 leaves → at most 9k canonical leaf pairs).

Two layers make repeated evaluations cheap:

* the rank-pair → unique-leaf-pair reduction is state-independent, so it
  is cached per ``(pattern, nranks, leaf assignment)``
  (:func:`leaf_pair_steps`) — the adaptive allocator and the engine
  price the same allocation several times per job start;
* the per-leaf contention-share vector and finished Eq. 6 totals are
  cached on the state against its version counter
  (:meth:`repro.cluster.state.ClusterState.leaf_comm_share` /
  ``cost_cache_get``), so pricing an unchanged state is a dict hit.

The kernel mirrors the scalar arithmetic of
:func:`repro.cost.contention.contention_factor` exactly (same operation
order), so results are bit-identical to the per-pair path — property
tests assert equality, not closeness.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

import numpy as np

from .._perfflags import is_legacy
from ..patterns.base import CommunicationPattern
from .contention import ContentionModel
from .kernels import kernel_active, segment_worst

__all__ = ["leaf_pair_steps", "leaf_pair_cost", "clear_leaf_pair_cache"]

#: cached (pattern, nranks, leaf-assignment) -> per-step unique leaf pairs
_LEAF_STEP_CACHE: "OrderedDict[Tuple, List[Optional[Tuple[np.ndarray, np.ndarray]]]]" = (
    OrderedDict()
)
_LEAF_STEP_CACHE_MAX = 128

#: cached flattened form of the same reduction: all steps' leaf pairs in
#: one segmented array pair, for a single vectorized evaluation. Keys
#: embed the leaf assignment, so distinct placements never collide —
#: but that same cardinality means a long trace touches tens of
#: thousands of keys, and a small cap thrashes. Entries are a few KB
#: (segment arrays over at most min(P, L^2) leaf pairs), so a much
#: larger cap than the per-step cache costs tens of MB, not more. The
#: per-step cache keeps its original cap: it also backs the legacy
#: evaluation path, whose behaviour benchmarks use as the pre-change
#: baseline.
_LEAF_FLAT_CACHE: "OrderedDict[Tuple, Optional[Tuple]]" = OrderedDict()
_LEAF_FLAT_CACHE_MAX = 8192

#: cached (pattern, nranks) -> concatenated inter-rank pairs of every
#: step (rank-equal pairs dropped), with a step id per pair — the
#: state-independent half of the flat reduction's build
_PATTERN_PAIRS_CACHE: "OrderedDict[Tuple, Optional[Tuple]]" = OrderedDict()

#: above this many leaf-pair slots, unique-finding falls back from a
#: dense boolean scatter (O(P + L²)) to sort-based np.unique (O(P log P))
_DENSE_UNIQUE_LIMIT = 4_000_000


def clear_leaf_pair_cache() -> None:
    """Drop all cached leaf-pair reductions (tests and cold benchmarks)."""
    _LEAF_STEP_CACHE.clear()
    _LEAF_FLAT_CACHE.clear()
    _PATTERN_PAIRS_CACHE.clear()


def _unique_leaf_pairs(
    la: np.ndarray, lb: np.ndarray, n_leaves: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Canonical (lo <= hi) unique leaf pairs among ``(la, lb)``."""
    lo = np.minimum(la, lb)
    hi = np.maximum(la, lb)
    codes = lo * n_leaves + hi
    n_codes = n_leaves * n_leaves
    if n_codes <= _DENSE_UNIQUE_LIMIT:
        seen = np.zeros(n_codes, dtype=bool)
        seen[codes] = True
        ucodes = np.flatnonzero(seen)
    else:
        ucodes = np.unique(codes)
    return ucodes // n_leaves, ucodes % n_leaves


def leaf_pair_steps(
    pattern: CommunicationPattern,
    steps: Tuple,
    node_arr: np.ndarray,
    leaf_assign: np.ndarray,
    n_leaves: int,
    unique_nodes: bool,
) -> List[Optional[Tuple[np.ndarray, np.ndarray]]]:
    """Per-step unique leaf pairs of ``pattern`` under a rank→node map.

    ``node_arr[r]`` / ``leaf_assign[r]`` are the node id / leaf index
    serving rank ``r``. The mapping is state-independent, so results are
    cached — per ``(pattern, nranks, leaf assignment)`` when the node
    ids are unique (allocations), or per ``(pattern, nranks, node
    assignment)`` when ranks share nodes (``srun``-style layouts, where
    leaf identity alone cannot tell an intra-node pair from an
    intra-leaf one). Intra-node pairs (zero hops) are dropped here; a
    step entry is ``None`` when the step has no pairs at all, and holds
    empty arrays when every pair was intra-node.
    """
    if unique_nodes:
        key = (pattern, leaf_assign.size, True, leaf_assign.tobytes())
    else:
        key = (pattern, node_arr.size, False, node_arr.tobytes())
    cached = _LEAF_STEP_CACHE.get(key)
    if cached is not None:
        _LEAF_STEP_CACHE.move_to_end(key)
        return cached
    per_step: List[Optional[Tuple[np.ndarray, np.ndarray]]] = []
    for step in steps:
        if step.n_pairs == 0:
            per_step.append(None)
            continue
        pairs = step.pairs
        if unique_nodes:
            # distinct ranks <=> distinct nodes
            keep = pairs[:, 0] != pairs[:, 1]
        else:
            keep = node_arr[pairs[:, 0]] != node_arr[pairs[:, 1]]
        if not keep.all():
            pairs = pairs[keep]
        if pairs.shape[0] == 0:
            per_step.append(
                (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
            )
            continue
        la = leaf_assign[pairs[:, 0]]
        lb = leaf_assign[pairs[:, 1]]
        per_step.append(_unique_leaf_pairs(la, lb, n_leaves))
    if len(_LEAF_STEP_CACHE) >= _LEAF_STEP_CACHE_MAX:
        _LEAF_STEP_CACHE.popitem(last=False)
    _LEAF_STEP_CACHE[key] = per_step
    return per_step


def _pattern_pairs(
    pattern: CommunicationPattern, steps: Tuple, nranks: int
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """All steps' inter-rank pairs concatenated: ``(src, dst, step id)``.

    State-independent and leaf-assignment-independent (for unique-node
    allocations rank inequality is node inequality), so it is cached per
    ``(pattern, nranks)`` and shared by every allocation of that size.
    ``None`` when no step carries an inter-rank pair.
    """
    key = (pattern, nranks)
    cached = _PATTERN_PAIRS_CACHE.get(key, _PATTERN_PAIRS_CACHE)
    if cached is not _PATTERN_PAIRS_CACHE:
        _PATTERN_PAIRS_CACHE.move_to_end(key)
        return cached
    src_parts: List[np.ndarray] = []
    dst_parts: List[np.ndarray] = []
    sid_parts: List[np.ndarray] = []
    for i, step in enumerate(steps):
        if step.n_pairs == 0:
            continue
        pairs = step.pairs
        keep = pairs[:, 0] != pairs[:, 1]
        if not keep.all():
            pairs = pairs[keep]
        if pairs.shape[0] == 0:
            continue
        src_parts.append(pairs[:, 0].astype(np.int64))
        dst_parts.append(pairs[:, 1].astype(np.int64))
        sid_parts.append(np.full(pairs.shape[0], i, dtype=np.int64))
    if src_parts:
        result = (
            np.concatenate(src_parts),
            np.concatenate(dst_parts),
            np.concatenate(sid_parts),
        )
    else:
        result = None
    if len(_PATTERN_PAIRS_CACHE) >= _LEAF_STEP_CACHE_MAX:
        _PATTERN_PAIRS_CACHE.popitem(last=False)
    _PATTERN_PAIRS_CACHE[key] = result
    return result


def _leaf_pair_flat(
    pattern: CommunicationPattern,
    steps: Tuple,
    node_arr: np.ndarray,
    leaf_assign: np.ndarray,
    n_leaves: int,
    unique_nodes: bool,
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, Tuple[int, ...]]]:
    """Concatenated ``(ula, ulb, segment offsets, step index per segment)``.

    The per-step evaluation in :func:`leaf_pair_cost` launches ~15 numpy
    kernels per step on arrays of a few dozen pairs — call overhead, not
    arithmetic, dominates. Flattening every non-empty step into one pair
    array lets the whole cost evaluate in a single batch with a
    ``maximum.reduceat`` per-segment max. Returns ``None`` when no step
    carries an inter-node pair (cost 0). Cached like the per-step form.

    For unique-node allocations the build itself is one vectorized
    dedup over ``(step, leaf pair)`` codes instead of a per-step loop;
    rank layouts with repeated nodes fall back to concatenating the
    per-step reduction.
    """
    if unique_nodes:
        key = (pattern, leaf_assign.size, True, leaf_assign.tobytes())
    else:
        key = (pattern, node_arr.size, False, node_arr.tobytes())
    cached = _LEAF_FLAT_CACHE.get(key, _LEAF_FLAT_CACHE)
    if cached is not _LEAF_FLAT_CACHE:
        _LEAF_FLAT_CACHE.move_to_end(key)
        return cached
    n_codes = n_leaves * n_leaves
    flat: Optional[Tuple]
    if unique_nodes:
        pp = _pattern_pairs(pattern, steps, leaf_assign.size)
        if pp is None:
            flat = None
        else:
            src, dst, sid = pp
            la = leaf_assign[src]
            lb = leaf_assign[dst]
            lo = np.minimum(la, lb)
            hi = np.maximum(la, lb)
            # sort-based dedup over (step, leaf-pair) codes: same sorted
            # unique codes a dense boolean scatter would produce, but
            # O(pairs log pairs) instead of O(steps * n_leaves^2) — the
            # dense array dominated build time on wide topologies
            ucodes = np.unique(sid * n_codes + lo * n_leaves + hi)
            step_of = ucodes // n_codes
            rem = ucodes - step_of * n_codes
            boundaries = np.flatnonzero(np.diff(step_of)) + 1
            offsets = np.concatenate(
                (np.zeros(1, dtype=np.int64), boundaries)
            )
            flat = (
                rem // n_leaves,
                rem % n_leaves,
                offsets,
                tuple(int(s) for s in step_of[offsets]),
            )
    else:
        per_step = leaf_pair_steps(
            pattern, steps, node_arr, leaf_assign, n_leaves, unique_nodes
        )
        la_parts: List[np.ndarray] = []
        lb_parts: List[np.ndarray] = []
        seg_idx: List[int] = []
        offs: List[int] = []
        pos = 0
        for i, meta in enumerate(per_step):
            if meta is None or meta[0].size == 0:
                continue
            la_parts.append(meta[0])
            lb_parts.append(meta[1])
            seg_idx.append(i)
            offs.append(pos)
            pos += meta[0].size
        if not la_parts:
            flat = None
        else:
            flat = (
                np.concatenate(la_parts),
                np.concatenate(lb_parts),
                np.asarray(offs, dtype=np.int64),
                tuple(seg_idx),
            )
    if len(_LEAF_FLAT_CACHE) >= _LEAF_FLAT_CACHE_MAX:
        _LEAF_FLAT_CACHE.popitem(last=False)
    _LEAF_FLAT_CACHE[key] = flat
    return flat


def leaf_pair_cost(
    view,
    node_arr: np.ndarray,
    pattern: CommunicationPattern,
    steps: Tuple,
    contention: ContentionModel,
    weight_by_msize: bool,
    unique_nodes: bool = True,
) -> float:
    """Eq. 6 total of ``pattern`` on ``node_arr`` under ``view``.

    ``view`` is a :class:`~repro.cluster.state.ClusterState` or
    :class:`~repro.cluster.state.CommOverlay` — anything exposing
    ``topology``, ``leaf_comm`` and ``leaf_comm_share()``. Pass
    ``unique_nodes=False`` for rank layouts that place several ranks on
    one node, so intra-node pairs are recognised by node id rather than
    by rank.
    """
    topo = view.topology
    leaf_assign = topo.leaf_of_node[node_arr]
    lca_levels = topo.leaf_lca_levels()
    share = view.leaf_comm_share()
    comm = view.leaf_comm
    sizes = topo.leaf_sizes
    if not is_legacy():
        flat = _leaf_pair_flat(
            pattern, steps, node_arr, leaf_assign, topo.n_leaves, unique_nodes
        )
        if flat is None:
            return 0.0
        ula, ulb, offsets, seg_idx = flat
        lvl = lca_levels[ula, ulb]
        if kernel_active():
            # compiled (or mirrored) segment kernel: same float64
            # operations in the same order, so bit-identical output
            worst = segment_worst(
                ula,
                ulb,
                lvl,
                share,
                comm,
                sizes,
                contention.uplink_discount,
                contention.per_level,
                offsets,
            )
        else:
            share_a = share[ula]
            share_b = share[ulb]
            if contention.per_level:
                weight = contention.shared_weight(lvl)
            else:
                weight = contention.uplink_discount
            # identical elementwise arithmetic to the per-step loop
            # below; reduceat takes each segment's exact max, and the
            # final accumulation walks segments in the same step order,
            # so the result is bit-identical to the legacy evaluation.
            cross = share_a + share_b + weight * (comm[ula] + comm[ulb]) / (
                sizes[ula] + sizes[ulb]
            )
            c = np.where(ula == ulb, share_a, cross)
            worst = np.maximum.reduceat(2 * lvl * (1.0 + c), offsets)
        total = 0.0
        for k, i in enumerate(seg_idx):
            step = steps[i]
            step_weight = step.msize if weight_by_msize else 1.0
            total += float(worst[k]) * step_weight * step.repeat
        return total
    per_step = leaf_pair_steps(
        pattern, steps, node_arr, leaf_assign, topo.n_leaves, unique_nodes
    )
    total = 0.0
    for step, meta in zip(steps, per_step):
        if meta is None:
            continue
        ula, ulb = meta
        if ula.size == 0:  # every pair was intra-node: the step is free
            continue
        lvl = lca_levels[ula, ulb]
        share_a = share[ula]
        share_b = share[ulb]
        if contention.per_level:
            weight = contention.shared_weight(lvl)
        else:
            weight = contention.uplink_discount
        # mirror contention_factor() operation-for-operation so the two
        # paths agree bitwise
        cross = share_a + share_b + weight * (comm[ula] + comm[ulb]) / (
            sizes[ula] + sizes[ulb]
        )
        c = np.where(ula == ulb, share_a, cross)
        d = 2 * lvl
        worst = float((d * (1.0 + c)).max())
        step_weight = step.msize if weight_by_msize else 1.0
        total += worst * step_weight * step.repeat
    return total
