"""Effective hops — paper Eq. 5.

``Hops(i, j) = d(i, j) * (1 + C(i, j))`` combines the tree distance
(Eq. 4, :meth:`repro.topology.tree.TreeTopology.distance`) with the
contention factor (Eqs. 2/3). Multiplying by the message size yields
*effective hop-bytes*, the paper's proxy for communication time.

Worked example from §5.3 (asserted in the tests): with the Figure 5
occupancy, ``Hops(n0, n1) = 2 * (1 + 1) = 4`` and
``Hops(n0, n4) = 4 * (1 + 1.875) = 11.5``.
"""

from __future__ import annotations

import numpy as np

from ..cluster.state import ClusterState
from .contention import (
    PAPER_CONTENTION,
    ContentionModel,
    contention_factor,
    contention_factor_scalar,
)

__all__ = ["effective_hops", "effective_hops_scalar", "hop_bytes"]


def effective_hops(
    state: ClusterState, node_i, node_j, model: ContentionModel = PAPER_CONTENTION
) -> np.ndarray:
    """Vectorized Eq. 5. A node communicating with itself costs 0 hops."""
    d = state.topology.distance(node_i, node_j)
    c = contention_factor(state, node_i, node_j, model)
    return d * (1.0 + c)


def effective_hops_scalar(
    state: ClusterState,
    node_i: int,
    node_j: int,
    model: ContentionModel = PAPER_CONTENTION,
) -> float:
    """Scalar reference implementation of Eq. 5."""
    if node_i == node_j:
        return 0.0
    d = int(state.topology.distance(node_i, node_j))
    return d * (1.0 + contention_factor_scalar(state, node_i, node_j, model))


def hop_bytes(
    state: ClusterState,
    node_i,
    node_j,
    msize: float,
    model: ContentionModel = PAPER_CONTENTION,
) -> np.ndarray:
    """Effective hop-bytes: ``Hops(i, j) * msize`` (§5.3)."""
    if msize <= 0:
        raise ValueError(f"msize must be > 0, got {msize}")
    return effective_hops(state, node_i, node_j, model) * float(msize)
