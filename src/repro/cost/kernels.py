"""Optional compiled kernel for the Eq. 6 segmented leaf-pair max.

:func:`repro.cost.leafpair.leaf_pair_cost`'s fast path spends its time
in one segmented expression: per unique leaf pair compute the contention
factor, scale by the LCA distance, and take each step-segment's max.
That loop is branch-free scalar arithmetic — exactly the shape numba
compiles well — so this module offers a jitted version of it behind
:func:`kernel_active`.

The contract is **bit-identity**, not approximation: the jitted scalar
loop performs the same float64 operations in the same order as the
inline numpy expression (no ``fastmath``, no reassociation), so
``compiled_mode(True)`` / ``compiled_mode(False)`` / ``legacy_mode()``
all produce byte-identical simulation results. The equivalence tests
assert ``==``, never ``pytest.approx``.

numba is an *optional* dependency and is deliberately not required:

* when importable, ``HAVE_NUMBA`` is True and :func:`segment_worst`
  dispatches to the jitted loop;
* when absent, :func:`segment_worst` falls back to a pure-numpy mirror
  of the same arithmetic, so forcing ``compiled_mode(True)`` in an
  environment without numba still exercises the full dispatch path
  (this is how the test suite validates the plumbing on CI images that
  do not ship numba).

Auto-detection: with the default preference
(:func:`repro._perfflags.compiled_pref` returning ``None``) the kernel
engages iff numba imported. ``legacy_mode`` always wins — the compiled
kernel only accelerates the vectorized fast path, which legacy mode
disables wholesale.
"""

from __future__ import annotations

import numpy as np

from .._perfflags import compiled_pref, is_legacy

__all__ = ["HAVE_NUMBA", "kernel_active", "pair_weights", "segment_worst"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the common CI configuration
    njit = None
    HAVE_NUMBA = False


def kernel_active() -> bool:
    """True when :func:`segment_worst` should replace the inline path.

    Legacy mode always disables it; otherwise the tri-state preference
    decides, with ``None`` (auto) meaning "on iff numba is importable".
    A forced ``True`` without numba still routes through this module's
    numpy mirror — same results, no speedup.
    """
    if is_legacy():
        return False
    pref = compiled_pref()
    if pref is None:
        return HAVE_NUMBA
    return pref


def pair_weights(
    lvl: np.ndarray, uplink_discount: float, per_level: bool
) -> np.ndarray:
    """Per-pair contention weights, always via the vectorized ``**``.

    Computed *outside* the (possibly jitted) loop on purpose: numpy's
    vectorized array power and C's scalar ``pow`` can disagree in the
    last ulp, so the weights must come from the exact vectorized
    expression the inline fast path uses
    (``ContentionModel.shared_weight`` inlined), whichever loop then
    consumes them. With ``per_level`` off the weight is a constant
    broadcast to an array so both loops share one signature.
    """
    if per_level:
        return np.asarray(
            uplink_discount ** (np.asarray(lvl, dtype=np.float64) - 1.0),
            dtype=np.float64,
        )
    return np.full(np.asarray(lvl).shape[0], np.float64(uplink_discount))


def _segment_worst_numpy(
    ula: np.ndarray,
    ulb: np.ndarray,
    lvl: np.ndarray,
    share: np.ndarray,
    comm: np.ndarray,
    sizes: np.ndarray,
    weights: np.ndarray,
    offsets: np.ndarray,
) -> np.ndarray:
    """Pure-numpy mirror of the inline fast-path expression (fallback)."""
    share_a = share[ula]
    share_b = share[ulb]
    cross = share_a + share_b + weights * (comm[ula] + comm[ulb]) / (
        sizes[ula] + sizes[ulb]
    )
    c = np.where(ula == ulb, share_a, cross)
    return np.maximum.reduceat(2 * lvl * (1.0 + c), offsets)


def _segment_worst_scalar(
    ula: np.ndarray,
    ulb: np.ndarray,
    lvl: np.ndarray,
    share: np.ndarray,
    comm: np.ndarray,
    sizes: np.ndarray,
    weights: np.ndarray,
    offsets: np.ndarray,
) -> np.ndarray:
    """Scalar loop form of the same arithmetic (the jit target).

    Operation order matches the numpy expression exactly: the weighted
    term is ``(w * comm_sum) / sizes_sum`` (multiply before divide, as
    numpy's left-to-right evaluation does), distances enter as
    ``float(2 * lvl) * (1.0 + c)``, and no reassociation is permitted —
    IEEE-754 float64 throughout makes the outputs bit-identical. The
    pow-based weights are precomputed (:func:`pair_weights`) because
    scalar ``pow`` may differ from numpy's vectorized power by one ulp.
    """
    n = ula.shape[0]
    n_seg = offsets.shape[0]
    out = np.empty(n_seg, dtype=np.float64)
    for s in range(n_seg):
        lo = offsets[s]
        hi = offsets[s + 1] if s + 1 < n_seg else n
        worst = -np.inf
        for i in range(lo, hi):
            a = ula[i]
            b = ulb[i]
            if a == b:
                c = share[a]
            else:
                c = share[a] + share[b] + weights[i] * np.float64(
                    comm[a] + comm[b]
                ) / np.float64(sizes[a] + sizes[b])
            v = np.float64(2 * lvl[i]) * (1.0 + c)
            if v > worst:
                worst = v
        out[s] = worst
    return out


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
    # cache=True persists the compiled function across processes; no
    # fastmath — reassociation would break the bit-identity contract.
    _segment_worst_jit = njit(cache=True)(_segment_worst_scalar)
else:
    _segment_worst_jit = None


def segment_worst(
    ula: np.ndarray,
    ulb: np.ndarray,
    lvl: np.ndarray,
    share: np.ndarray,
    comm: np.ndarray,
    sizes: np.ndarray,
    uplink_discount: float,
    per_level: bool,
    offsets: np.ndarray,
) -> np.ndarray:
    """Per-segment max of ``2 * lca_level * (1 + contention)`` (Eq. 6).

    ``ula``/``ulb``/``lvl`` are the flattened unique leaf pairs and
    their LCA levels; ``offsets`` marks each step-segment's start (the
    last segment runs to the end). Dispatches to the numba-jitted loop
    when available, else the numpy mirror — both bit-identical to the
    inline expression in :func:`repro.cost.leafpair.leaf_pair_cost`.
    """
    weights = pair_weights(lvl, float(uplink_discount), bool(per_level))
    if _segment_worst_jit is not None:
        return _segment_worst_jit(
            np.ascontiguousarray(ula),
            np.ascontiguousarray(ulb),
            np.ascontiguousarray(lvl),
            np.ascontiguousarray(share),
            np.ascontiguousarray(comm, dtype=np.int64),
            np.ascontiguousarray(sizes, dtype=np.int64),
            np.ascontiguousarray(weights),
            np.ascontiguousarray(offsets),
        )
    return _segment_worst_numpy(
        ula, ulb, lvl, share, comm, sizes, weights, offsets
    )
