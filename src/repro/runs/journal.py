"""Append-only JSONL run journal.

A journal is the manifest of one harness run (`continuous_runs`,
`individual_runs`, or `sweep`): what tasks the run consists of, every
attempt each task made, and a digest of every result produced. It is
written as JSON Lines — one self-contained JSON object per line,
flushed per entry — so a crash at any instant loses at most the final
partial line, which the reader tolerates. Nothing in a journal is ever
rewritten: recovery and auditing work by *replaying* the log.

Entry kinds (all carry ``"kind"``):

* header (first line): ``{"kind": "journal", "journal_version": 1,
  "run_type": ..., "context": {...}}`` — ``context`` holds everything
  needed to re-execute the run's tasks (serialized config, explicit job
  list, sampling parameters).
* ``task``    — ``{"key", "spec"}``: one cell of the run.
* ``attempt`` — ``{"key", "attempt", "status": "start"|"error",
  "error"?}``: the lifecycle of one submission.
* ``result``  — ``{"key", "attempt", "digest"}``: a completed cell and
  the digest of its value (see :mod:`repro.runs.digest`).
* ``note``    — free-form executor diagnostics (pool rebuilds, etc.).

Every entry additionally carries a ``"check"`` field — a short sha256
of the rest of the record (see :mod:`repro.runs.integrity`) — so a
bit-flip anywhere in the journal is caught on load as a typed
:class:`~repro.runs.integrity.IntegrityError` naming the damaged line
and byte offset. The field is additive: journals written without
checksums still load.

``repro-sched verify-run`` re-executes journaled tasks and compares
digests, catching nondeterminism regressions (see
:mod:`repro.runs.verify`).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .integrity import ENTRY_CHECKSUM_FIELD, IntegrityError, checksum_entry, verify_entry

__all__ = [
    "RunJournal",
    "JournalData",
    "load_journal",
    "repair_torn_tail",
    "JOURNAL_VERSION",
]

JOURNAL_VERSION = 1


class RunJournal:
    """Writer half: append entries to a JSONL journal file.

    Opens the file in append mode and writes the header only when the
    file is new or empty, so a journal can span several process
    invocations of the same run. Use as a context manager or call
    :meth:`close`.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        run_type: str = "tasks",
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.path = Path(path)
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._fh = open(self.path, "a")
        if fresh:
            self._append(
                {
                    "kind": "journal",
                    "journal_version": JOURNAL_VERSION,
                    "run_type": run_type,
                    "context": context or {},
                    "created": time.time(),
                }
            )

    def _append(self, entry: Dict[str, Any]) -> None:
        entry[ENTRY_CHECKSUM_FIELD] = checksum_entry(entry)
        self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
        self._fh.flush()

    # ------------------------------------------------------------------

    def task(self, key: str, spec: Dict[str, Any]) -> None:
        """Declare one cell of the run before any attempt at it."""
        self._append({"kind": "task", "key": key, "spec": spec})

    def attempt_start(self, key: str, attempt: int) -> None:
        """Record that attempt ``attempt`` of task ``key`` is starting."""
        self._append(
            {"kind": "attempt", "key": key, "attempt": attempt, "status": "start"}
        )

    def attempt_error(self, key: str, attempt: int, error: str) -> None:
        """Record a failed attempt and its error text."""
        self._append(
            {
                "kind": "attempt",
                "key": key,
                "attempt": attempt,
                "status": "error",
                "error": error,
            }
        )

    def result(self, key: str, attempt: int, digest: str) -> None:
        """Record a successful attempt's result digest."""
        self._append(
            {"kind": "result", "key": key, "attempt": attempt, "digest": digest}
        )

    def note(self, event: str, **fields: Any) -> None:
        """Free-form executor diagnostic (pool rebuilt, task timed out...)."""
        entry = {"kind": "note", "event": event}
        entry.update(fields)
        self._append(entry)

    def close(self) -> None:
        """Flush and close the journal file (idempotent)."""
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


@dataclass
class JournalData:
    """Reader half: the parsed content of a journal file.

    ``truncated`` is True when the final line was cut mid-write (the
    expected signature of a crash); everything before it is intact.
    """

    header: Dict[str, Any]
    tasks: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    attempts: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    digests: Dict[str, str] = field(default_factory=dict)
    notes: List[Dict[str, Any]] = field(default_factory=list)
    truncated: bool = False

    @property
    def run_type(self) -> str:
        """The header's run type (``tasks`` when unspecified)."""
        return str(self.header.get("run_type", "tasks"))

    @property
    def context(self) -> Dict[str, Any]:
        """Copy of the header's re-execution context."""
        return dict(self.header.get("context", {}))

    def attempt_count(self, key: str) -> int:
        """Submissions recorded for ``key`` (``status == "start"``)."""
        return sum(1 for a in self.attempts.get(key, []) if a["status"] == "start")

    def completed_keys(self) -> List[str]:
        """Task keys with a recorded result digest, in task order."""
        return [k for k in self.tasks if k in self.digests]

    def missing_keys(self) -> List[str]:
        """Declared tasks that never produced a result."""
        return [k for k in self.tasks if k not in self.digests]


def load_journal(path: Union[str, Path]) -> JournalData:
    """Parse a journal file, tolerating a torn final line.

    Raises :class:`~repro.runs.integrity.IntegrityError` — naming the
    damaged line and byte offset — when any non-final line fails to
    parse, or when any line's record checksum mismatches. A final line
    that is not valid JSON is the expected signature of a crash
    mid-append and only sets ``truncated``. Raises plain ``ValueError``
    when the file does not start with a journal header or was written
    by a newer journal version.
    """
    header: Optional[Dict[str, Any]] = None
    data = JournalData(header={})
    offset = 0
    with open(path, "rb") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line_start = offset
            offset += len(raw)
            stripped = raw.strip()
            if not stripped:
                continue
            try:
                entry = json.loads(stripped.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                # Only the final line may be torn; anything earlier is
                # real corruption.
                detail = getattr(exc, "msg", None) or str(exc)
                if fh.readline():
                    raise IntegrityError(
                        path,
                        f"not valid JSON ({detail}) — corrupt journal",
                        lineno=lineno,
                        offset=line_start,
                    ) from exc
                data.truncated = True
                break
            # A line that *parses* but fails its checksum is corruption
            # even at the tail: a torn append cannot produce valid JSON
            # with a wrong checksum, only a bit-flip can.
            verify_entry(entry, path, lineno=lineno, offset=line_start)
            kind = entry.get("kind")
            if header is None:
                if kind != "journal":
                    raise ValueError(f"{path}: first line is not a journal header")
                version = entry.get("journal_version")
                if version != JOURNAL_VERSION:
                    raise ValueError(
                        f"{path}: journal version {version!r} not supported "
                        f"(this build reads {JOURNAL_VERSION})"
                    )
                header = entry
                data.header = entry
            elif kind == "task":
                data.tasks[entry["key"]] = entry.get("spec", {})
            elif kind == "attempt":
                data.attempts.setdefault(entry["key"], []).append(entry)
            elif kind == "result":
                data.digests[entry["key"]] = entry["digest"]
            elif kind == "note":
                data.notes.append(entry)
            # unknown kinds are skipped: forward compatibility
    if header is None:
        raise ValueError(f"{path}: empty journal")
    return data


def repair_torn_tail(path: Union[str, Path]) -> Optional[int]:
    """Truncate a torn final line so the journal can be appended to again.

    A process that dies mid-append leaves a partial final line. Readers
    tolerate it (``truncated=True``), but a *writer* reopening the file
    in append mode would glue its next record onto the partial line,
    turning a benign torn tail into mid-file corruption. This trims the
    file back to the last complete line — the torn fragment was never a
    complete record, so nothing that was durably journaled is lost, and
    the append-only discipline is preserved.

    Returns the number of bytes dropped, or ``None`` when the tail was
    intact (including the empty/missing-file cases, which are left for
    the writer to handle). A tail that parses but fails its checksum is
    *corruption*, not a tear, and still raises
    :class:`~repro.runs.integrity.IntegrityError` via the load.
    """
    path = Path(path)
    if not path.exists() or path.stat().st_size == 0:
        return None
    data = load_journal(path)  # raises on real (non-tail) corruption
    if not data.truncated:
        return None
    with open(path, "rb") as fh:
        keep = 0
        for raw in fh:
            if raw.endswith(b"\n"):
                try:
                    json.loads(raw.strip().decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    break
                keep += len(raw)
            else:
                break
        fh.seek(0, 2)
        dropped = fh.tell() - keep
    with open(path, "r+b") as fh:
        fh.truncate(keep)
    return dropped
