"""Artifact integrity: typed corruption errors and sha256 footers.

Every durable artifact this repo writes (engine checkpoints, run
journals, result JSON) can be torn or bit-flipped by the machine it
lives on — a crash mid-replace, a bad disk, an overeager sync tool.
Before this module, such corruption surfaced as whatever the parser
tripped over first: an opaque ``json.JSONDecodeError`` deep inside a
resume, a ``KeyError`` during replay. Now every load path funnels
corruption through one typed exception:

* :class:`IntegrityError` — a ``ValueError`` subclass (existing
  ``except ValueError`` handlers keep working) that names the file,
  the line/byte offset when known, and what failed to verify;
* :func:`checksum_entry` / :func:`verify_entry` — per-record checksums
  for JSONL journal entries (a short sha256 prefix over the canonical
  JSON of the record);
* :func:`write_footer` / :func:`split_footer` / :func:`verify_footer`
  — a trailing ``#sha256:<hex>`` line covering the exact bytes of a
  checkpoint body, so *any* single-byte corruption (even in JSON
  whitespace, which an object-level digest cannot see) is caught
  before parsing.

The byte-flip fuzz property tests (``tests/runs/test_integrity_fuzz.py``)
hold this module to its contract: no single-byte corruption of a
checkpoint or journal may escape as anything but an
:class:`IntegrityError` (or, for a journal's final line, the torn-tail
flag). See ``docs/resilience.md``.
"""

from __future__ import annotations

import hashlib
import re
from typing import Any, Dict, Optional, Tuple, Union

from .digest import canonical_json

__all__ = [
    "IntegrityError",
    "checksum_entry",
    "verify_entry",
    "write_footer",
    "split_footer",
    "verify_footer",
    "ENTRY_CHECKSUM_FIELD",
]

#: journal-entry key holding the per-record checksum
ENTRY_CHECKSUM_FIELD = "check"

#: hex characters of sha256 kept per journal record — 48 bits is far
#: beyond what accidental corruption needs while keeping lines short
_ENTRY_CHECKSUM_HEX = 12

_FOOTER_MARK = b"\n#sha256:"
_FOOTER_RE = re.compile(rb"\A#sha256:([0-9a-f]{64})\n?\Z")


class IntegrityError(ValueError):
    """A durable artifact failed its integrity verification.

    Subclasses ``ValueError`` so pre-existing ``except ValueError``
    recovery paths (and tests) treat corruption exactly as they treated
    the old untyped errors — but callers that care (checkpoint
    fallback, ``verify-run``'s exit code) can now tell corruption apart
    from every other failure. ``lineno``/``offset`` locate the damage
    when the artifact is line-oriented (run journals).
    """

    def __init__(
        self,
        path: Union[str, "object"],
        detail: str,
        *,
        lineno: Optional[int] = None,
        offset: Optional[int] = None,
    ) -> None:
        where = str(path)
        if lineno is not None:
            where += f": line {lineno}"
            if offset is not None:
                where += f" (byte offset {offset})"
        super().__init__(f"{where}: {detail}")
        self.path = str(path)
        self.detail = detail
        self.lineno = lineno
        self.offset = offset


# ----------------------------------------------------------------------
# per-record checksums (JSONL journals)
# ----------------------------------------------------------------------


def checksum_entry(entry: Dict[str, Any]) -> str:
    """Checksum of one journal record (excluding the checksum field).

    A short hex prefix of the sha256 of the record's canonical JSON —
    stable under key order and whitespace, so a record round-tripped
    through any JSON writer verifies the same.
    """
    payload = {k: v for k, v in entry.items() if k != ENTRY_CHECKSUM_FIELD}
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()[:_ENTRY_CHECKSUM_HEX]


def verify_entry(
    entry: Dict[str, Any],
    path: Union[str, "object"],
    *,
    lineno: Optional[int] = None,
    offset: Optional[int] = None,
) -> None:
    """Raise :class:`IntegrityError` when a record's checksum mismatches.

    Records without a checksum field (journals written before the
    checksum era) pass unchecked — the format is additive.
    """
    stored = entry.get(ENTRY_CHECKSUM_FIELD)
    if stored is None:
        return
    actual = checksum_entry(entry)
    if actual != stored:
        raise IntegrityError(
            path,
            f"record checksum mismatch (stored {stored!r}, "
            f"content hashes to {actual!r}) — the record is corrupt",
            lineno=lineno,
            offset=offset,
        )


# ----------------------------------------------------------------------
# whole-file footers (engine checkpoints)
# ----------------------------------------------------------------------


def write_footer(body: bytes) -> bytes:
    """The ``#sha256:<hex>`` footer line covering ``body`` exactly.

    The footer hashes the artifact's *bytes*, not its parsed value:
    truncation, whitespace damage, and encoding-level corruption are
    all caught before any parser runs.
    """
    return b"#sha256:" + hashlib.sha256(body).hexdigest().encode("ascii") + b"\n"


def split_footer(blob: bytes) -> Tuple[bytes, Optional[str]]:
    """Split a file into (body, stored footer hex), footer excluded.

    Returns ``(blob, None)`` when no footer line is present — the
    pre-footer formats, which load unverified. Raises nothing itself;
    a *malformed* footer is reported by :func:`verify_footer`.
    """
    pos = blob.rfind(_FOOTER_MARK)
    if pos < 0:
        return blob, None
    body, tail = blob[: pos + 1], blob[pos + 1 :]
    match = _FOOTER_RE.match(tail)
    if match is None:
        # A footer marker with garbage after it: treat the marker line
        # as the (damaged) footer so verify_footer can reject it.
        return body, ""
    return body, match.group(1).decode("ascii")


def verify_footer(blob: bytes, path: Union[str, "object"]) -> bytes:
    """Verify a file's sha256 footer; returns the body bytes.

    Files without a footer pass through unchanged (legacy formats).
    A present-but-wrong or malformed footer raises
    :class:`IntegrityError`.
    """
    body, stored = split_footer(blob)
    if stored is None:
        return body
    if not stored:
        raise IntegrityError(path, "malformed sha256 footer — the file is corrupt")
    actual = hashlib.sha256(body).hexdigest()
    if actual != stored:
        raise IntegrityError(
            path,
            f"sha256 footer mismatch (footer says {stored[:12]}…, "
            f"body hashes to {actual[:12]}…) — the file is corrupt",
        )
    return body
