"""Retry policy for the resilient task executor.

Backoff is deterministic: reproducibility is this repo's organizing
principle, and the executor's outputs must be bit-identical regardless
of how many times a task was retried — so the only thing a delay
schedule may influence is wall-clock time, never results. The delay
before attempt ``n+1`` is ``backoff_base * backoff_factor**(n-1)``
seconds, capped at ``backoff_max``.

Jitter is optional and *seeded*: when many workers back off from the
same contended resource (the fabric's lease reassignments, a shared
journal), identical delay schedules make them all retry at the same
instant — the thundering herd. ``jitter > 0`` spreads the delays, but
through a hash of ``(jitter_seed, salt, attempt)`` rather than a
global RNG, so the schedule is still a pure function of the policy and
the caller-supplied ``salt`` (typically the task key or worker id):
two runs with the same seed sleep identically, and results remain
bit-identical either way because delays never feed into outputs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "RetryPolicy",
    "ON_ERROR_MODES",
    "ON_ERROR_RETRY",
    "ON_ERROR_SKIP",
    "ON_ERROR_RAISE",
    "ON_ERROR_QUARANTINE",
    "require_on_error",
]

#: what the executor does when a task attempt fails:
#: ``retry``      — back off and retry up to ``max_retries``; then raise.
#: ``skip``       — retry up to ``max_retries``; then record the cell as
#:                  missing and keep going (graceful degradation).
#: ``raise``      — fail fast on the first error, no retries.
#: ``quarantine`` — retry up to ``max_retries``; then record the cell as
#:                  *quarantined* with its last error and keep going. The
#:                  difference from ``skip`` is visibility: quarantined
#:                  cells are carried on the result object, journaled,
#:                  counted in ``runs.quarantined_cells``, and warned
#:                  about at the end of the batch — a dropped cell can
#:                  never disappear silently.
ON_ERROR_RETRY = "retry"
ON_ERROR_SKIP = "skip"
ON_ERROR_RAISE = "raise"
ON_ERROR_QUARANTINE = "quarantine"
ON_ERROR_MODES = (ON_ERROR_RETRY, ON_ERROR_SKIP, ON_ERROR_RAISE, ON_ERROR_QUARANTINE)


def require_on_error(mode: str) -> str:
    """Validate an ``on_task_error`` mode name, returning it."""
    if mode not in ON_ERROR_MODES:
        raise ValueError(
            f"unknown on_task_error mode {mode!r}; known: {list(ON_ERROR_MODES)}"
        )
    return mode


@dataclass(frozen=True)
class RetryPolicy:
    """How failed task attempts are retried.

    Attributes
    ----------
    max_retries:
        Extra attempts after the first (0 = single attempt). An attempt
        is *used* whenever a submission ends without a result: the task
        raised, it exceeded ``timeout``, or the worker pool broke while
        it was in flight (a crashed worker cannot say which task killed
        it, so every in-flight task is charged one attempt).
    backoff_base:
        Delay before the second attempt, seconds.
    backoff_factor:
        Multiplier applied per subsequent attempt.
    backoff_max:
        Ceiling on any single delay, seconds.
    timeout:
        Wall-clock budget per attempt, seconds (``None`` = unlimited).
        Enforced only on the process-pool path — a hung worker is
        terminated and the pool rebuilt; the serial path cannot preempt
        its own process and ignores it.
    jitter:
        Maximum fractional spread added to each delay: the computed
        backoff is multiplied by ``1 + jitter * u`` with ``u`` in
        ``[0, 1)`` drawn deterministically from ``(jitter_seed, salt,
        attempt)``. 0 (the default) reproduces the historical
        jitter-free schedule exactly.
    jitter_seed:
        Seed folded into the jitter hash; same seed + same salt =
        identical delays on every run.
    """

    max_retries: int = 0
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    timeout: Optional[float] = None
    jitter: float = 0.0
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_max < 0:
            raise ValueError(f"backoff_max must be >= 0, got {self.backoff_max}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    @property
    def max_attempts(self) -> int:
        """Total attempts allowed per task."""
        return self.max_retries + 1

    def delay(self, failed_attempts: int, *, salt: str = "") -> float:
        """Seconds to wait before the next attempt.

        ``failed_attempts`` is how many attempts have already failed
        (>= 1 when a retry is being scheduled). ``salt`` distinguishes
        concurrent retriers of the same resource when ``jitter > 0``
        (callers pass the task key or worker id); with ``jitter == 0``
        it has no effect.
        """
        if failed_attempts < 1:
            raise ValueError(f"failed_attempts must be >= 1, got {failed_attempts}")
        base = min(
            self.backoff_base * self.backoff_factor ** (failed_attempts - 1),
            self.backoff_max,
        )
        if self.jitter <= 0.0:
            return base
        return min(
            base * (1.0 + self.jitter * self._jitter_fraction(failed_attempts, salt)),
            self.backoff_max,
        )

    def _jitter_fraction(self, failed_attempts: int, salt: str) -> float:
        """Deterministic ``u`` in ``[0, 1)`` for one (salt, attempt) pair.

        A sha256 over ``jitter_seed:salt:failed_attempts`` — stable
        across processes and Python hash randomization, which a plain
        ``hash()`` would not be.
        """
        token = f"{self.jitter_seed}:{salt}:{failed_attempts}".encode("utf-8")
        digest = hashlib.sha256(token).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)
