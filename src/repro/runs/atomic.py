"""Crash-safe file writes.

Every durable artifact in the repo (result JSON, engine checkpoints,
benchmark snapshots, rendered reports) goes through one discipline:
write a temporary file *in the same directory*, flush and fsync it,
then ``os.replace`` it over the destination. ``os.replace`` is atomic
on POSIX, so a crash — a SIGKILL, an OOM kill, a power cut — at any
instant leaves either the previous complete file or the new complete
file, never a truncated hybrid. The temp file lives next to the target
(not in ``/tmp``) because ``rename`` is only atomic within one
filesystem; if the rename still crosses filesystems (bind mounts,
overlayfs, a symlinked target directory) and raises ``EXDEV``, the
write falls back to copy + fsync + rename inside the target's resolved
directory rather than failing (see :func:`_replace_into_place`).

After the replace the containing *directory* is fsynced too (best
effort — some platforms refuse ``fsync`` on a directory fd, and the
write is still crash-safe without it), so the rename itself survives a
power cut rather than silently reverting to the old file. Either way a
crash can never surface a partial *write* — which is the invariant the
rest of the robustness subsystem builds on.

The replace is preceded by a :mod:`repro._failpoints` trigger
(``"atomic_write"``) so the chaos harness can inject ENOSPC or slow
I/O into every durable write without this module knowing about chaos.
"""

from __future__ import annotations

import errno
import json
import os
import shutil
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Union

from .. import _failpoints

__all__ = ["atomic_write", "atomic_write_text", "atomic_write_json"]


def _fsync_directory(directory: Path) -> None:
    """Best-effort fsync of a directory entry after a rename.

    Without this, a power cut shortly after ``os.replace`` can revert
    the rename (the old file reappears). Platforms/filesystems that
    reject opening or fsyncing a directory fd are tolerated: the write
    is still atomic, just not rename-durable.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _replace_into_place(tmp_name: str, target: Path) -> None:
    """``os.replace`` with an EXDEV fallback (copy + fsync + rename).

    The temp file is created next to the target precisely so the final
    rename stays within one filesystem — but mount tricks (a bind-mounted
    target, an overlayfs upper layer, a symlinked directory resolving
    elsewhere) can still make ``os.replace`` raise ``EXDEV``. In that
    case the contents are copied to a *second* temp file inside the
    target's fully resolved directory (guaranteed to share the target's
    filesystem), fsynced, and renamed into place — the write stays
    atomic from every reader's point of view, it just costs one extra
    copy. Any other ``OSError`` propagates unchanged.
    """
    try:
        os.replace(tmp_name, target)
    except OSError as exc:
        if exc.errno != errno.EXDEV:
            raise
        resolved = Path(os.path.realpath(target))
        fd, near_name = tempfile.mkstemp(
            dir=resolved.parent, prefix=resolved.name + ".", suffix=".xdev.tmp"
        )
        try:
            with os.fdopen(fd, "wb") as out, open(tmp_name, "rb") as src:
                shutil.copyfileobj(src, out)
                out.flush()
                os.fsync(out.fileno())
            os.replace(near_name, resolved)
        except BaseException:
            try:
                os.unlink(near_name)
            except OSError:
                pass
            raise
        finally:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass


@contextmanager
def atomic_write(path: Union[str, Path], *, mode: str = "w") -> Iterator[Any]:
    """Context manager yielding a handle whose contents replace ``path``.

    The handle writes to a temp file in ``path``'s directory; on a clean
    exit the temp file is fsynced and atomically renamed over ``path``.
    On *any* exception the temp file is removed and ``path`` is left
    exactly as it was. ``mode`` must be a write mode (``"w"``/``"wb"``).
    """
    if "r" in mode or "a" in mode or "+" in mode:
        raise ValueError(f"atomic_write needs a plain write mode, got {mode!r}")
    target = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=".tmp"
    )
    try:
        # mkstemp creates 0600; match what a plain open() would have done.
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(tmp_name, 0o666 & ~umask)
        with os.fdopen(fd, mode) as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        _failpoints.trigger("atomic_write", detail=str(target))
        _replace_into_place(tmp_name, target)
        _fsync_directory(target.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Atomically replace ``path`` with ``text``."""
    with atomic_write(path) as fh:
        fh.write(text)


def atomic_write_json(path: Union[str, Path], obj: Any, *, indent: int = 1) -> None:
    """Atomically replace ``path`` with ``obj`` rendered as JSON."""
    with atomic_write(path) as fh:
        json.dump(obj, fh, indent=indent)
        fh.write("\n")
