"""Crash-safe run infrastructure.

The simulator replaces the paper's 2-5 day SLURM emulation with an
event loop, but our own sweeps are still the longest-running path in
the repo — and until this package existed, a single worker crash or
Ctrl-C threw away every completed cell. ``repro.runs`` is the
robustness layer the experiment harnesses build on:

* :mod:`~repro.runs.atomic` — write-temp/fsync/rename file writes (and
  a best-effort directory fsync after the rename): no crash ever
  leaves a truncated artifact.
* :mod:`~repro.runs.retry` — deterministic exponential-backoff retry
  policy and the ``retry`` / ``skip`` / ``raise`` / ``quarantine``
  degradation modes.
* :mod:`~repro.runs.journal` — append-only JSONL manifest of task
  specs, attempts, and result digests, each record checksummed.
* :mod:`~repro.runs.executor` — process-pool task runner that survives
  worker crashes (``BrokenProcessPool`` rebuild), hung workers
  (per-task timeout), and transient errors, with bit-identical output.
* :mod:`~repro.runs.digest` — canonical SHA-256 digests of results.
* :mod:`~repro.runs.integrity` — the typed :class:`IntegrityError`
  every corrupt-artifact load raises, plus the sha256 footer and
  per-record checksum primitives behind it.
* :mod:`~repro.runs.checkpoints` — checkpoint *directories* whose
  resume falls back to the last good generation instead of dying on a
  corrupt newest file.
* :mod:`~repro.runs.verify` — re-execute journaled tasks and compare
  digests (``repro-sched verify-run``).

Engine-level checkpoint/resume lives with the engine
(:meth:`repro.scheduler.engine.SchedulerEngine.snapshot`) and the v4
serialization format (:mod:`repro.scheduler.serialize`); the chaos
harness that exercises all of this under injected failures is
:mod:`repro.chaos`. See ``docs/resilience.md`` for the full picture.
"""

from .atomic import atomic_write, atomic_write_json, atomic_write_text
from .checkpoints import CheckpointStore, ResolvedResume, resolve_resume
from .digest import canonical_json, digest_obj, result_digest
from .executor import (
    PartialResults,
    PartialRows,
    TaskBatchResult,
    TaskFailedError,
    TaskSpec,
    run_tasks,
)
from .integrity import IntegrityError
from .journal import JournalData, RunJournal, load_journal, repair_torn_tail
from .retry import ON_ERROR_MODES, RetryPolicy, require_on_error
from .verify import VerifyReport, replay_task, verify_journal

__all__ = [
    "atomic_write",
    "atomic_write_json",
    "atomic_write_text",
    "canonical_json",
    "digest_obj",
    "result_digest",
    "CheckpointStore",
    "ResolvedResume",
    "resolve_resume",
    "IntegrityError",
    "PartialResults",
    "PartialRows",
    "TaskBatchResult",
    "TaskFailedError",
    "TaskSpec",
    "run_tasks",
    "JournalData",
    "RunJournal",
    "load_journal",
    "repair_torn_tail",
    "ON_ERROR_MODES",
    "RetryPolicy",
    "require_on_error",
    "VerifyReport",
    "replay_task",
    "verify_journal",
]
