"""Resilient task execution over a process pool.

The experiment harnesses (`continuous_runs`, `individual_runs`,
`sweep`) decompose into independent, pure, picklable tasks — one per
(allocator, grid-point, …) cell. This module runs such a batch to
completion *despite* worker crashes, hung workers, and transient
errors:

* a task that raises is retried with exponential backoff
  (:class:`~repro.runs.retry.RetryPolicy`), up to ``max_retries``;
* a worker that dies (OOM kill, ``os._exit``, segfault) breaks the
  whole ``ProcessPoolExecutor`` — the pool is rebuilt and only the
  tasks without results are resubmitted;
* a worker that hangs past the per-task ``timeout`` is terminated, the
  pool rebuilt, and the batch continues;
* ``on_task_error="skip"`` degrades gracefully: cells that exhaust
  their attempts are reported as *missing* instead of sinking the whole
  batch;
* ``on_task_error="quarantine"`` degrades *loudly*: exhausted cells are
  recorded as quarantined (key → last error) on the result, journaled,
  counted as ``runs.quarantined_cells`` in :mod:`repro.obs`, and listed
  in a ``UserWarning`` when the batch ends.

Recovery activity is observable: ``runs.task_retries`` counts retried
attempts and ``runs.pool_rebuilds`` counts pool reconstructions, both
through the ambient :mod:`repro.obs` recorder.

Because every task is a pure function of its spec, results are
reassembled by key — the output is bit-identical to a serial run no
matter how many crashes and retries happened along the way. Attempts
and result digests are optionally recorded in a
:class:`~repro.runs.journal.RunJournal`.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import runtime as obs_runtime
from ..obs.progress import ProgressReporter
from .journal import RunJournal
from .retry import (
    ON_ERROR_QUARANTINE,
    ON_ERROR_RAISE,
    ON_ERROR_SKIP,
    RetryPolicy,
    require_on_error,
)

__all__ = [
    "TaskSpec",
    "TaskBatchResult",
    "TaskFailedError",
    "run_tasks",
    "PartialResults",
    "PartialRows",
]


@dataclass(frozen=True)
class TaskSpec:
    """One independent unit of work.

    ``fn`` must be a module-level callable and ``args`` picklable —
    both cross a process boundary. ``spec`` is the JSON payload written
    to the journal's ``task`` entry; it should contain whatever
    ``verify-run`` needs to re-execute the task.
    """

    key: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    spec: Optional[Dict[str, Any]] = None


class TaskFailedError(RuntimeError):
    """A task exhausted its attempts (or failed fast under ``raise``)."""

    def __init__(self, key: str, attempts: int, error: str) -> None:
        super().__init__(
            f"task {key!r} failed after {attempts} attempt(s): {error}"
        )
        self.key = key
        self.attempts = attempts
        self.error = error


@dataclass
class TaskBatchResult:
    """Outcome of one batch: values by key, plus what never finished."""

    results: Dict[str, Any] = field(default_factory=dict)
    #: cells that exhausted their attempts under ``on_task_error="skip"``,
    #: mapped to the last error message
    missing: Dict[str, str] = field(default_factory=dict)
    #: attempts used per key (including the successful one)
    attempts: Dict[str, int] = field(default_factory=dict)
    #: cells that exhausted their attempts under
    #: ``on_task_error="quarantine"``, mapped to the last error message
    quarantined: Dict[str, str] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """True when every task produced a result."""
        return not self.missing and not self.quarantined


class PartialResults(dict):
    """A dict of completed cells that also names the missing ones.

    Returned by the resilient harness paths so callers keep plain
    ``dict`` ergonomics; ``missing`` maps the absent keys to the error
    that exhausted their attempts, and ``quarantined`` the keys dropped
    by the quarantine mode (both empty when the run is complete).
    """

    def __init__(
        self,
        values: Dict[str, Any],
        missing: Dict[str, str],
        quarantined: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(values)
        self.missing: Dict[str, str] = dict(missing)
        self.quarantined: Dict[str, str] = dict(quarantined or {})

    @property
    def complete(self) -> bool:
        """True when every task produced a result."""
        return not self.missing and not self.quarantined


class PartialRows(list):
    """A list of result rows that also names the missing cells."""

    def __init__(
        self,
        rows: Sequence[Any],
        missing: Dict[str, str],
        quarantined: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(rows)
        self.missing: Dict[str, str] = dict(missing)
        self.quarantined: Dict[str, str] = dict(quarantined or {})

    @property
    def complete(self) -> bool:
        """True when every task produced a result."""
        return not self.missing and not self.quarantined


# ----------------------------------------------------------------------


class _Batch:
    """Shared bookkeeping between the serial and pooled drivers."""

    def __init__(
        self,
        policy: RetryPolicy,
        mode: str,
        journal: Optional[RunJournal],
        digest: Optional[Callable[[Any], str]],
        total: int = 0,
        progress: Optional[ProgressReporter] = None,
    ) -> None:
        self.policy = policy
        self.mode = mode
        self.journal = journal
        self.digest = digest
        self.total = total
        self.progress = progress
        self.out = TaskBatchResult()

    def _notify(self, key: str) -> None:
        if self.progress is not None:
            done = (
                len(self.out.results)
                + len(self.out.missing)
                + len(self.out.quarantined)
            )
            self.progress.task_update(done, self.total, key)

    def start(self, task: TaskSpec, attempt: int) -> None:
        self.out.attempts[task.key] = attempt
        if self.journal is not None:
            self.journal.attempt_start(task.key, attempt)

    def succeed(self, task: TaskSpec, attempt: int, value: Any) -> None:
        self.out.results[task.key] = value
        if self.journal is not None:
            digest = self.digest(value) if self.digest is not None else ""
            self.journal.result(task.key, attempt, digest)
        self._notify(task.key)

    def fail(self, task: TaskSpec, attempt: int, error: str) -> bool:
        """Account one failed attempt; returns True when a retry is due.

        Raises :class:`TaskFailedError` when the task is out of attempts
        and the mode is neither ``skip`` nor ``quarantine``.
        """
        if self.journal is not None:
            self.journal.attempt_error(task.key, attempt, error)
        exhausted = self.mode == ON_ERROR_RAISE or attempt >= self.policy.max_attempts
        if not exhausted:
            obs_runtime.count("runs.task_retries")
            return True
        if self.mode == ON_ERROR_SKIP:
            self.out.missing[task.key] = error
            self._notify(task.key)
            return False
        if self.mode == ON_ERROR_QUARANTINE:
            self.out.quarantined[task.key] = error
            obs_runtime.count("runs.quarantined_cells")
            if self.journal is not None:
                self.journal.note("quarantined", key=task.key, error=error)
            self._notify(task.key)
            return False
        raise TaskFailedError(task.key, attempt, error)


def _run_serial(tasks: Sequence[TaskSpec], batch: _Batch) -> None:
    for task in tasks:
        attempt = 0
        while True:
            attempt += 1
            batch.start(task, attempt)
            try:
                value = task.fn(*task.args)
            except Exception as exc:  # noqa: BLE001 — retry boundary
                if batch.fail(task, attempt, f"{type(exc).__name__}: {exc}"):
                    time.sleep(batch.policy.delay(attempt, salt=task.key))
                    continue
                break
            batch.succeed(task, attempt, value)
            break


@dataclass
class _InFlight:
    task: TaskSpec
    attempt: int
    deadline: Optional[float]


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Hard-stop a pool whose workers may be hung or dead."""
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.terminate()
        except Exception:  # pragma: no cover - best effort
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _run_pooled(
    tasks: Sequence[TaskSpec],
    workers: int,
    batch: _Batch,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple[Any, ...] = (),
) -> None:
    policy = batch.policy

    def make_pool() -> ProcessPoolExecutor:
        # rebuilt pools must re-run the initializer too — fresh workers
        # need the same shared-memory attachments the first ones had
        return ProcessPoolExecutor(
            max_workers=workers, initializer=initializer, initargs=initargs
        )

    pool = make_pool()
    in_flight: Dict[Future, _InFlight] = {}
    #: (eligible_at, task, failed_attempts) — backoff queue
    waiting: List[Tuple[float, TaskSpec, int]] = []
    ready: List[Tuple[TaskSpec, int]] = [(t, 0) for t in tasks]

    def submit(task: TaskSpec, prior_attempts: int) -> bool:
        """Submit one attempt; False when the pool turned out to be broken."""
        attempt = prior_attempts + 1
        batch.start(task, attempt)
        deadline = (
            time.monotonic() + policy.timeout if policy.timeout is not None else None
        )
        try:
            future = pool.submit(task.fn, *task.args)
        except BrokenProcessPool as exc:
            if batch.fail(task, attempt, f"worker pool broke: {exc}"):
                waiting.append(
                    (time.monotonic() + policy.delay(attempt, salt=task.key), task, attempt)
                )
            return False
        in_flight[future] = _InFlight(task, attempt, deadline)
        return True

    def rebuild_pool(reason: str, extra_error: Dict[Future, str]) -> None:
        """Fail every unfinished in-flight task, then start a fresh pool.

        Futures that already completed successfully are harvested — a
        crash elsewhere in the pool must not discard finished work (or
        burn one of that task's attempts).
        """
        nonlocal pool
        obs_runtime.count("runs.pool_rebuilds")
        if batch.journal is not None:
            batch.journal.note("pool-rebuilt", reason=reason)
        _terminate_pool(pool)
        casualties = list(in_flight.items())
        in_flight.clear()
        pool = make_pool()
        for future, live in casualties:
            if future.done() and not future.cancelled():
                try:
                    value = future.result()
                except Exception:  # noqa: BLE001 — died with the pool
                    pass
                else:
                    batch.succeed(live.task, live.attempt, value)
                    continue
            error = extra_error.get(future, reason)
            if batch.fail(live.task, live.attempt, error):
                waiting.append(
                    (
                        time.monotonic()
                        + policy.delay(live.attempt, salt=live.task.key),
                        live.task,
                        live.attempt,
                    )
                )

    try:
        while ready or waiting or in_flight:
            now = time.monotonic()
            due = [w for w in waiting if w[0] <= now]
            if due:
                waiting[:] = [w for w in waiting if w[0] > now]
                ready.extend((task, failed) for _, task, failed in due)
            while ready:
                task, failed = ready.pop(0)
                if not submit(task, failed):
                    rebuild_pool("worker pool broke before submission", {})
            if not in_flight:
                if waiting:
                    time.sleep(max(0.0, min(w[0] for w in waiting) - time.monotonic()))
                continue

            tick = 0.5
            if waiting:
                tick = min(tick, max(0.0, min(w[0] for w in waiting) - now))
            deadlines = [l.deadline for l in in_flight.values() if l.deadline]
            if deadlines:
                tick = min(tick, max(0.0, min(deadlines) - now))
            done, _ = wait(
                list(in_flight), timeout=tick, return_when=FIRST_COMPLETED
            )

            broken: Optional[str] = None
            for future in done:
                live = in_flight.pop(future)
                try:
                    value = future.result()
                except BrokenProcessPool as exc:
                    # The pool is gone; every other in-flight task died
                    # with it. Re-queue this one alongside them.
                    in_flight[future] = live
                    broken = f"worker pool broke: {exc}"
                    break
                except Exception as exc:  # noqa: BLE001 — retry boundary
                    if batch.fail(
                        live.task, live.attempt, f"{type(exc).__name__}: {exc}"
                    ):
                        waiting.append(
                            (
                                time.monotonic()
                                + policy.delay(live.attempt, salt=live.task.key),
                                live.task,
                                live.attempt,
                            )
                        )
                    continue
                batch.succeed(live.task, live.attempt, value)
            if broken is not None:
                rebuild_pool(broken, {})
                continue

            if policy.timeout is not None:
                now = time.monotonic()
                expired = {
                    future: (
                        f"task exceeded its {policy.timeout:g}s timeout"
                    )
                    for future, live in in_flight.items()
                    if live.deadline is not None and live.deadline <= now
                }
                if expired:
                    # A hung worker cannot be preempted individually —
                    # terminate the whole pool and resubmit survivors.
                    rebuild_pool("pool rebuilt after a task timeout", expired)
    finally:
        _terminate_pool(pool)


def run_tasks(
    tasks: Sequence[TaskSpec],
    *,
    workers: Optional[int] = None,
    policy: Optional[RetryPolicy] = None,
    on_task_error: str = "retry",
    journal: Optional[RunJournal] = None,
    digest: Optional[Callable[[Any], str]] = None,
    progress: Optional[ProgressReporter] = None,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple[Any, ...] = (),
) -> TaskBatchResult:
    """Run a batch of tasks to completion with retry and crash recovery.

    ``workers <= 1`` runs serially in-process (retries still apply;
    per-task timeouts cannot be enforced without a pool and are
    ignored). Task keys must be unique. Results come back keyed, so
    callers reassemble them in any deterministic order they choose.

    ``progress`` receives one ``task_update(done, total, key)`` per
    settled cell (succeeded, or skipped after exhausting attempts);
    when omitted, :func:`repro.obs.progress` is polled so an ambient
    reporter installed via :func:`repro.obs.progressing` is used.

    ``initializer(*initargs)`` runs once in every pooled worker before
    its first task — including workers of pools rebuilt after a crash
    or timeout (e.g. to attach shared-memory topologies, see
    :func:`repro.topology.install_topology_handles`). Both must be
    picklable; ignored on the serial path, where the process is the
    caller's own.
    """
    require_on_error(on_task_error)
    policy = policy or RetryPolicy()
    keys = [t.key for t in tasks]
    if len(set(keys)) != len(keys):
        raise ValueError("task keys must be unique")
    if journal is not None:
        for task in tasks:
            journal.task(task.key, task.spec or {})
    if progress is None:
        progress = obs_runtime.progress()
    batch = _Batch(policy, on_task_error, journal, digest, len(tasks), progress)
    if not tasks:
        return batch.out
    if workers is None or workers <= 1:
        _run_serial(tasks, batch)
    else:
        _run_pooled(tasks, min(workers, len(tasks)), batch, initializer, initargs)
    if batch.out.quarantined:
        dropped = ", ".join(sorted(batch.out.quarantined))
        warnings.warn(
            f"{len(batch.out.quarantined)} cell(s) quarantined after "
            f"exhausting their attempts: {dropped}",
            stacklevel=2,
        )
    return batch.out
