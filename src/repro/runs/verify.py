"""Deterministic replay verification of journaled runs.

The whole reproduction rests on one promise: every harness task is a
pure function of its spec, so re-running it — any day, any machine
count, any retry history — produces the bit-identical result. This
module *checks* that promise: it re-executes a (sampled) subset of a
journal's completed tasks and compares the fresh digest against the
journaled one. A mismatch means nondeterminism crept into the simulator
(an unseeded RNG, dict-order dependence, a float reassociation) — the
class of regression no unit test reliably catches.

Exposed on the CLI as ``repro-sched verify-run``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from .digest import digest_obj, result_digest
from .journal import JournalData, load_journal

__all__ = ["VerifyReport", "replay_task", "verify_journal"]


@dataclass
class VerifyReport:
    """Outcome of one verification pass over a journal."""

    journal_path: str
    run_type: str
    total_completed: int
    checked: List[str] = field(default_factory=list)
    #: key -> (journaled digest, recomputed digest)
    mismatched: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: declared tasks that never produced a result (informational)
    unfinished: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every replayed task matched its journaled digest."""
        return not self.mismatched

    def render(self) -> str:
        """Human-readable verification report (one line per drift)."""
        lines = [
            f"journal    : {self.journal_path}",
            f"run type   : {self.run_type}",
            f"completed  : {self.total_completed}",
            f"verified   : {len(self.checked)}",
            f"mismatched : {len(self.mismatched)}",
        ]
        if self.unfinished:
            lines.append(f"unfinished : {len(self.unfinished)} {self.unfinished}")
        for key, (expected, got) in self.mismatched.items():
            lines.append(f"MISMATCH {key}: journal {expected} != replay {got}")
        if self.ok:
            lines.append("OK: replayed tasks are bit-identical to the journal")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# replay dispatch — experiment imports are lazy (the experiments layer
# already imports this package's executor).
# ----------------------------------------------------------------------


def _context_jobs(context: Dict, cfg) -> List:
    from ..experiments.runner import prepare_jobs
    from ..scheduler.serialize import job_from_dict

    if context.get("jobs") is not None:
        return [job_from_dict(j) for j in context["jobs"]]
    return prepare_jobs(cfg)


def _replay_continuous(context: Dict, spec: Dict) -> str:
    from ..experiments.runner import _continuous_worker, config_from_dict

    cfg = config_from_dict(context["config"])
    jobs = _context_jobs(context, cfg)
    result = _continuous_worker(cfg, spec["allocator"], jobs)
    return result_digest(result)


def _replay_individual(context: Dict, spec: Dict) -> str:
    from ..experiments.runner import (
        _individual_setup,
        _individual_worker,
        config_from_dict,
        outcomes_digest,
    )

    cfg = config_from_dict(context["config"])
    jobs = _context_jobs(context, cfg)
    state, sampled = _individual_setup(
        cfg,
        n_samples=int(context["n_samples"]),
        target_occupancy=float(context["target_occupancy"]),
        jobs=jobs,
    )
    outcomes = _individual_worker(state, sampled, spec["allocator"], cfg.cost_model)
    return outcomes_digest(outcomes)


def _replay_sweep(context: Dict, spec: Dict) -> str:
    from ..experiments.sweeps import _sweep_point_worker, point_config

    cfg = point_config(spec["point"], tuple(spec["allocators"]))
    results = _sweep_point_worker(cfg)
    return digest_obj({name: result_digest(res) for name, res in results.items()})


_REPLAYERS = {
    "continuous_runs": _replay_continuous,
    "individual_runs": _replay_individual,
    "sweep": _replay_sweep,
}


def replay_task(data: JournalData, key: str) -> str:
    """Re-execute one journaled task from scratch; returns its digest."""
    replayer = _REPLAYERS.get(data.run_type)
    if replayer is None:
        raise ValueError(
            f"cannot replay run type {data.run_type!r}; "
            f"known: {sorted(_REPLAYERS)}"
        )
    if key not in data.tasks:
        raise KeyError(f"journal has no task {key!r}")
    return replayer(data.context, data.tasks[key])


def verify_journal(
    path: Union[str, Path],
    *,
    sample: Optional[int] = None,
    seed: int = 0,
) -> VerifyReport:
    """Replay ``sample`` journaled tasks and diff their digests.

    ``sample=None`` replays every completed task; otherwise a seeded
    uniform draw of ``sample`` of them (deterministic per seed). Tasks
    without a recorded result (crashed cells of a partial run) are
    listed as unfinished, not failures.
    """
    data = load_journal(path)
    completed = data.completed_keys()
    report = VerifyReport(
        journal_path=str(path),
        run_type=data.run_type,
        total_completed=len(completed),
        unfinished=data.missing_keys(),
    )
    chosen = completed
    if sample is not None and sample < len(completed):
        if sample < 0:
            raise ValueError(f"sample must be >= 0, got {sample}")
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(completed), size=sample, replace=False)
        chosen = [completed[i] for i in sorted(idx)]
    for key in chosen:
        fresh = replay_task(data, key)
        report.checked.append(key)
        if fresh != data.digests[key]:
            report.mismatched[key] = (data.digests[key], fresh)
    return report
