"""Canonical digests of run artifacts.

A digest is a SHA-256 over a *canonical* JSON rendering (sorted keys,
no whitespace), so two structurally equal values always hash the same
regardless of dict construction order. Digests are the currency of the
run journal: a cell's result is recorded as its digest, and
``repro-sched verify-run`` re-executes sampled cells and compares —
bitwise — against the journaled value. Any nondeterminism anywhere in
the simulator shows up as a digest mismatch.

Floats are hashed through their shortest round-trip ``repr`` (what
``json.dumps`` emits), which is exact: two floats digest equal iff they
are bit-equal.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["canonical_json", "digest_obj", "result_digest"]


def canonical_json(obj: Any) -> str:
    """Deterministic JSON text for ``obj`` (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def digest_obj(obj: Any) -> str:
    """``sha256:<hex>`` of the canonical JSON rendering of ``obj``."""
    payload = canonical_json(obj).encode("utf-8")
    return "sha256:" + hashlib.sha256(payload).hexdigest()


def result_digest(result) -> str:
    """Digest of a :class:`~repro.scheduler.metrics.SimulationResult`.

    Hashes the full v3 serialized form minus the embedded ``digest``
    field itself, so a dumped file's stored digest equals
    ``result_digest(load_result(path))``.
    """
    # Imported lazily: serialize writes digests into its own output, so
    # a top-level import here would be circular.
    from ..scheduler.serialize import result_to_dict

    data = result_to_dict(result)
    data.pop("digest", None)
    return digest_obj(data)
