"""Checkpoint directories with last-good fallback.

A single checkpoint file has a single point of failure: corrupt it (a
bad disk, a byte flip, a torn copy) and the run it was protecting is
unresumable. A :class:`CheckpointStore` keeps the last few engine
checkpoints in a *directory* — ``ckpt-00000010.json``,
``ckpt-00000020.json``, … (zero-padded batch counts, so lexicographic
order is chronological order) — and resume falls back through them
newest-first until one verifies, instead of dying on the newest.

The engine accepts a store anywhere it accepts a checkpoint path
(``checkpoint_path=CheckpointStore(dir)``), and the CLI maps
``--checkpoint-dir`` onto one; ``--resume-from`` accepts either a file
or a store directory (see :func:`resolve_resume`). Every fallback past
a corrupt checkpoint bumps the ``runs.fallback_resumes`` counter in
:mod:`repro.obs` and is reported in the returned
:class:`ResolvedResume`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..obs import runtime as obs_runtime
from .integrity import IntegrityError

__all__ = ["CheckpointStore", "ResolvedResume", "resolve_resume"]

_CKPT_RE = re.compile(r"\Ackpt-(\d{8,})\.json\Z")


@dataclass
class ResolvedResume:
    """Outcome of resolving a resume source to one loadable snapshot.

    ``skipped`` lists the corrupt checkpoints that were passed over
    (newest first), each with the error that disqualified it — empty
    for a direct file resume or an intact store.
    """

    snapshot: Dict[str, Any]
    path: Path
    skipped: List[Tuple[Path, str]] = field(default_factory=list)


class CheckpointStore:
    """A directory holding the ``keep`` most recent engine checkpoints.

    ``write`` names each file after the snapshot's batch counter and
    prunes older files beyond ``keep``; because every write is an
    :func:`~repro.runs.atomic.atomic_write` of a *new* file, a crash
    mid-checkpoint can never damage the previous generation.
    """

    def __init__(self, directory: Union[str, Path], *, keep: int = 3) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = keep
        self.directory.mkdir(parents=True, exist_ok=True)

    def __str__(self) -> str:
        return str(self.directory)

    def __repr__(self) -> str:
        return f"CheckpointStore({str(self.directory)!r}, keep={self.keep})"

    # ------------------------------------------------------------------

    def paths(self) -> List[Path]:
        """Checkpoint files currently in the store, oldest first."""
        found = []
        for entry in self.directory.iterdir():
            if _CKPT_RE.match(entry.name):
                found.append(entry)
        return sorted(found)

    def write(self, snapshot: Dict[str, Any]) -> Path:
        """Persist ``snapshot`` as a new generation and prune old ones."""
        # Local import: serialize sits above runs in the layering and
        # importing it at module top would be circular.
        from ..scheduler.serialize import dump_snapshot

        batches = int(snapshot.get("batches_done", 0))
        path = self.directory / f"ckpt-{batches:08d}.json"
        dump_snapshot(snapshot, path)
        for stale in self.paths()[: -self.keep]:
            try:
                stale.unlink()
            except OSError:
                pass
        return path

    def load_last_good(self) -> ResolvedResume:
        """Load the newest checkpoint that verifies, skipping corrupt ones.

        Walks generations newest-first; each corrupt file (torn,
        byte-flipped, digest-mismatched) is recorded in ``skipped`` and
        counted as a ``runs.fallback_resumes`` recovery. Raises
        :class:`IntegrityError` when every generation is corrupt and
        ``FileNotFoundError`` when the store is empty.
        """
        from ..scheduler.serialize import load_snapshot

        candidates = self.paths()
        if not candidates:
            raise FileNotFoundError(
                f"{self.directory}: no checkpoints (expected ckpt-*.json)"
            )
        skipped: List[Tuple[Path, str]] = []
        for path in reversed(candidates):
            try:
                snapshot = load_snapshot(path)
            except (IntegrityError, ValueError, OSError) as exc:
                skipped.append((path, str(exc)))
                obs_runtime.count("runs.fallback_resumes")
                continue
            return ResolvedResume(snapshot=snapshot, path=path, skipped=skipped)
        raise IntegrityError(
            self.directory,
            f"all {len(candidates)} checkpoints are corrupt "
            f"(newest: {skipped[0][1]})",
        )


def resolve_resume(source: Union[str, Path, CheckpointStore]) -> ResolvedResume:
    """Resolve a resume source — file, store, or store directory.

    A file path loads that exact checkpoint (corruption raises — there
    is nothing to fall back to); a directory or :class:`CheckpointStore`
    falls back to the last good generation.
    """
    from ..scheduler.serialize import load_snapshot

    if isinstance(source, CheckpointStore):
        return source.load_last_good()
    path = Path(source)
    if path.is_dir():
        return CheckpointStore(path).load_last_good()
    return ResolvedResume(snapshot=load_snapshot(path), path=path)
