"""Zero-copy publication of read-only NumPy arrays to worker processes.

Process-pool fan-out (:mod:`repro.runs.executor`,
:func:`repro.experiments.sweeps.sweep`, :mod:`repro.fabric`) pickles its
task arguments into every worker. For the big *immutable* inputs — the
topology's ancestor table, the dense leaf-pair LCA matrix, per-node leaf
assignments — that means one private copy per worker plus pickle time
per task. This module publishes such arrays once into a
:class:`multiprocessing.shared_memory.SharedMemory` segment; workers
attach the segment and get read-only views backed by the same physical
pages, so per-worker incremental memory is ~0 and attachment is O(1).

Lifecycle
---------
The publishing process owns the segment::

    pack = publish_arrays({"lca": lca, "leaf_of_node": lon})
    try:
        ...  # ship pack.handle (picklable) to workers
    finally:
        pack.unlink()        # destroy the segment (owner only)

Workers attach via the handle::

    attached = attach_arrays(handle)
    lca = attached["lca"]    # read-only view, zero-copy

An :class:`AttachedArrays` keeps its segment mapped for as long as it
(or any of its views) is alive; attaching never registers the segment
with the ``multiprocessing`` resource tracker, so a worker exiting does
not tear the segment down under the publisher (CPython issue bpo-39959:
before 3.13 every attach registers for cleanup and the first process to
exit unlinks the segment for everyone — worked around here).
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Iterator, Mapping, Tuple

import numpy as np

__all__ = [
    "SharedArraySpec",
    "SharedPackHandle",
    "SharedArrayPack",
    "AttachedArrays",
    "publish_arrays",
    "attach_arrays",
]

#: segment layout alignment; generous enough for any NumPy dtype and
#: keeps each array cache-line aligned
_ALIGN = 64


@dataclass(frozen=True)
class SharedArraySpec:
    """Where one array lives inside a shared segment (picklable)."""

    key: str
    shape: Tuple[int, ...]
    dtype: str
    offset: int


@dataclass(frozen=True)
class SharedPackHandle:
    """Everything a worker needs to attach a pack (picklable).

    ``segment`` is the OS-level shared-memory name; ``size`` the total
    segment size in bytes (attachment sanity check).
    """

    segment: str
    size: int
    specs: Tuple[SharedArraySpec, ...]


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


def publish_arrays(arrays: Mapping[str, np.ndarray]) -> "SharedArrayPack":
    """Copy ``arrays`` into one new shared segment; returns the owner pack.

    Keys must be non-empty and unique (a Mapping guarantees the latter).
    Object-dtype arrays are rejected — shared memory carries raw bytes
    only. The returned pack owns the segment: call
    :meth:`SharedArrayPack.unlink` when every worker is done with it.
    """
    if not arrays:
        raise ValueError("publish_arrays needs at least one array")
    specs = []
    offset = 0
    for key, arr in arrays.items():
        if not key:
            raise ValueError("array keys must be non-empty")
        arr = np.ascontiguousarray(arr)
        if arr.dtype.hasobject:
            raise TypeError(f"array {key!r} has object dtype; cannot be shared")
        specs.append(SharedArraySpec(key, arr.shape, arr.dtype.str, offset))
        offset = _aligned(offset + arr.nbytes)
    size = max(offset, 1)  # SharedMemory rejects size 0
    shm = shared_memory.SharedMemory(create=True, size=size)
    try:
        for spec, arr in zip(specs, arrays.values()):
            view = np.ndarray(
                spec.shape, dtype=spec.dtype, buffer=shm.buf, offset=spec.offset
            )
            view[...] = np.ascontiguousarray(arr)
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    handle = SharedPackHandle(segment=shm.name, size=size, specs=tuple(specs))
    return SharedArrayPack(shm, handle)


class SharedArrayPack:
    """Owner side of a published segment (the process that created it)."""

    def __init__(self, shm: shared_memory.SharedMemory, handle: SharedPackHandle) -> None:
        self._shm = shm
        self.handle = handle
        self._unlinked = False

    def close(self) -> None:
        """Unmap the segment from this process (it keeps existing)."""
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment. Safe to call more than once."""
        if self._unlinked:
            return
        self._unlinked = True
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "SharedArrayPack":
        return self

    def __exit__(self, *exc: object) -> None:
        self.unlink()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach without registering with the resource tracker.

    Python 3.13 grew ``track=False`` for exactly this; earlier versions
    register every attachment, and the tracker of whichever process
    exits first unlinks the segment for everyone (bpo-39959). The
    fallback undoes that registration by hand.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Pre-3.13: suppress the tracker registration instead of undoing
        # it afterwards — an unregister message would also erase the
        # *owner's* registration in a shared tracker process, silencing
        # its crash-cleanup of the segment.
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shm(name: str, rtype: str) -> None:
            if rtype != "shared_memory":
                original(name, rtype)

        resource_tracker.register = _skip_shm
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class AttachedArrays(Mapping):
    """Read-only zero-copy views of a published pack, by key.

    Keeps the underlying segment mapped for its own lifetime — hold on
    to this object for as long as any of its views is in use (the views
    reference the segment's buffer, not this wrapper).
    """

    def __init__(self, shm: shared_memory.SharedMemory, handle: SharedPackHandle) -> None:
        self._shm = shm
        self._views: Dict[str, np.ndarray] = {}
        for spec in handle.specs:
            view = np.ndarray(
                spec.shape, dtype=spec.dtype, buffer=shm.buf, offset=spec.offset
            )
            view.flags.writeable = False
            self._views[spec.key] = view

    def __getitem__(self, key: str) -> np.ndarray:
        return self._views[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._views)

    def __len__(self) -> int:
        return len(self._views)

    def close(self) -> None:
        """Drop the views and unmap the segment from this process."""
        self._views.clear()
        self._shm.close()


def attach_arrays(handle: SharedPackHandle) -> AttachedArrays:
    """Attach a published pack; returns read-only views keyed like the input.

    Raises ``FileNotFoundError`` when the segment no longer exists
    (owner already unlinked it) and ``ValueError`` when the segment is
    smaller than the handle describes (stale or corrupted handle).
    """
    shm = _attach_segment(handle.segment)
    if shm.size < handle.size:
        shm.close()
        raise ValueError(
            f"shared segment {handle.segment!r} is {shm.size} bytes; the "
            f"handle describes {handle.size}"
        )
    return AttachedArrays(shm, handle)
