"""Name -> pattern registry used by experiments and the CLI."""

from __future__ import annotations

from typing import Callable, Dict, List

from .alltoall import PairwiseAlltoall
from .base import CommunicationPattern
from .binomial import BinomialTree
from .recursive_doubling import RecursiveDoubling
from .rhvd import RecursiveHalvingVectorDoubling
from .ring import Ring
from .stencil import Stencil2D

__all__ = ["PATTERN_FACTORIES", "get_pattern", "pattern_names", "register_pattern"]

PATTERN_FACTORIES: Dict[str, Callable[[], CommunicationPattern]] = {
    "rd": RecursiveDoubling,
    "alltoall": PairwiseAlltoall,
    "rhvd": RecursiveHalvingVectorDoubling,
    "binomial": BinomialTree,
    "ring": Ring,
    "stencil2d": Stencil2D,
}


def register_pattern(name: str, factory: Callable[[], CommunicationPattern]) -> None:
    """Register a custom pattern factory under ``name`` (overwrites allowed)."""
    if not name:
        raise ValueError("pattern name must be non-empty")
    PATTERN_FACTORIES[name] = factory


def get_pattern(name: str) -> CommunicationPattern:
    """Instantiate the pattern registered under ``name``.

    Raises ``KeyError`` with the list of known names on a miss.
    """
    try:
        factory = PATTERN_FACTORIES[name]
    except KeyError:
        raise KeyError(f"unknown pattern {name!r}; known: {sorted(PATTERN_FACTORIES)}") from None
    return factory()


def pattern_names() -> List[str]:
    """Sorted registry names."""
    return sorted(PATTERN_FACTORIES)
