"""Pairwise-exchange all-to-all (MPI_Alltoall).

The paper's introduction names MPI_Alltoall as the dominant collective
of FFTW and CPMD (§1, §3.3 citing [21]); large-message alltoall in
MPICH uses the *pairwise exchange* algorithm: for ``k = 1..P-1``, rank
``i`` exchanges one ``1/P``-sized block with rank ``i XOR k`` (P a
power of two) or ``(i + k) mod P`` (general P). Every step saturates
all ranks, which makes alltoall the most placement-sensitive collective
of the set — there is no step where a bad allocation can hide.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .base import CommStep, CommunicationPattern
from .._validation import is_power_of_two, require_positive_int

__all__ = ["PairwiseAlltoall"]


class PairwiseAlltoall(CommunicationPattern):
    """MPICH pairwise-exchange alltoall: P-1 full-machine exchange steps."""

    name = "alltoall"

    def steps(self, nranks: int) -> List[CommStep]:
        """Pairwise-exchange schedule: P-1 steps, rank i meets rank i^s."""
        require_positive_int(nranks, "nranks")
        if nranks == 1:
            return []
        ranks = np.arange(nranks, dtype=np.int64)
        block = 1.0 / nranks
        out: List[CommStep] = []
        if is_power_of_two(nranks):
            for k in range(1, nranks):
                partner = ranks ^ k
                lower = ranks < partner
                out.append(
                    CommStep(
                        np.column_stack([ranks[lower], partner[lower]]),
                        msize=block,
                        exchange=True,
                    )
                )
        else:
            # general P: rank i sends to (i+k) mod P and receives from
            # (i-k) mod P — directed flows, all ranks active each step
            for k in range(1, nranks):
                dst = (ranks + k) % nranks
                out.append(
                    CommStep(np.column_stack([ranks, dst]), msize=block)
                )
        return out
