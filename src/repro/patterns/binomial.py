"""Binomial tree (MPI_Bcast / MPI_Reduce; paper §3.3).

Broadcast from rank 0: at step ``k`` every rank ``i < 2^k`` that already
holds the data sends it to rank ``i + 2^k``. The number of simultaneous
transfers doubles each step; the message size stays constant. A
reduction runs the same pairs in reverse step order, which is identical
under the per-step max-hops cost model, so one pattern covers both.

Non-power-of-two counts need no special embedding: the last step simply
drops pairs whose destination exceeds ``nranks - 1``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .base import CommStep, CommunicationPattern
from .._validation import require_positive_int

__all__ = ["BinomialTree"]


class BinomialTree(CommunicationPattern):
    """Binomial broadcast/reduce tree rooted at rank 0."""

    name = "binomial"

    def steps(self, nranks: int) -> List[CommStep]:
        """Binomial-tree schedule: log2(P) rounds of doubling senders."""
        require_positive_int(nranks, "nranks")
        out: List[CommStep] = []
        dist = 1
        while dist < nranks:
            src = np.arange(min(dist, nranks - dist), dtype=np.int64)
            dst = src + dist
            dst_ok = dst < nranks
            out.append(CommStep(np.column_stack([src[dst_ok], dst[dst_ok]]), msize=1.0))
            dist *= 2
        return out
