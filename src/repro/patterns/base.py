"""Communication-pattern abstraction (paper §3.3).

The paper's cost model (Eq. 6) walks the *steps* of the parallel
algorithm underlying an MPI collective: at step ``n`` a set of rank
pairs ``S_n`` communicate simultaneously, and the step contributes the
maximum effective hop count over those pairs. A pattern therefore only
needs to expose, per step:

* the communicating (source, destination) rank pairs, and
* the relative message size of that step (vector-doubling algorithms
  double it every step — §5.3).

Ranks are ``0..nranks-1`` and are mapped to allocated nodes in
allocation order by the cost model.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from .._validation import require_positive_int

__all__ = ["CommStep", "CommunicationPattern", "pairs_array"]


def pairs_array(pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
    """Convert a pair sequence into the canonical ``(k, 2)`` int64 array."""
    arr = np.asarray(list(pairs), dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"pairs must have shape (k, 2), got {arr.shape}")
    return arr


@dataclass(frozen=True)
class CommStep:
    """One parallel step of a collective algorithm.

    Attributes
    ----------
    pairs:
        ``(k, 2)`` int64 array of (source rank, destination rank) pairs
        that communicate simultaneously in this step.
    msize:
        Message size of this step, relative to the collective's base
        message size (1.0 = base size).
    repeat:
        Number of identical consecutive executions of this step. Ring
        algorithms repeat the same neighbour exchange ``P-1`` times;
        representing that once with ``repeat=P-1`` keeps cost evaluation
        O(1) in the repeat count.
    exchange:
        True when each listed pair is a *bidirectional* exchange (data
        moves both ways, as in recursive doubling/halving); False when
        pairs are one-way sends (binomial, ring, stencil). The hop-count
        cost model (Eq. 6) is direction-agnostic, but the flow-level
        network simulator spawns reverse flows only for exchanges.
    """

    pairs: np.ndarray
    msize: float = 1.0
    repeat: int = 1
    exchange: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "pairs", pairs_array(self.pairs))
        if self.msize <= 0:
            raise ValueError(f"msize must be > 0, got {self.msize}")
        require_positive_int(self.repeat, "repeat")

    @property
    def n_pairs(self) -> int:
        """Number of simultaneously communicating pairs in this step."""
        return int(self.pairs.shape[0])


class CommunicationPattern(ABC):
    """Abstract parallel-algorithm communication pattern.

    Subclasses implement :meth:`steps`, returning the per-step pair sets
    for a given rank count. Patterns are stateless and hashable by name,
    so they can be shared across jobs and used as registry keys.
    """

    #: short registry name, e.g. ``"rd"``
    name: str = "abstract"

    @abstractmethod
    def steps(self, nranks: int) -> List[CommStep]:
        """Return the ordered communication steps for ``nranks`` ranks.

        Must accept any ``nranks >= 1``; a single rank yields no steps.
        """

    def n_steps(self, nranks: int) -> int:
        """Total step count including repeats (diagnostics only)."""
        return sum(s.repeat for s in self.steps(nranks))

    def total_pair_count(self, nranks: int) -> int:
        """Total communicating pairs across all steps and repeats."""
        return sum(s.n_pairs * s.repeat for s in self.steps(nranks))

    def validate_steps(self, nranks: int) -> None:
        """Sanity-check step structure; raises ``ValueError`` on bad ranks."""
        for idx, step in enumerate(self.steps(nranks)):
            if step.n_pairs == 0:
                continue
            if step.pairs.min() < 0 or step.pairs.max() >= nranks:
                raise ValueError(
                    f"{self.name}: step {idx} references ranks outside [0, {nranks})"
                )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CommunicationPattern) and type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))


def fold_to_power_of_two(nranks: int) -> Tuple[int, np.ndarray, np.ndarray]:
    """MPICH-style embedding of a non-power-of-two rank count.

    Returns ``(p2, extra_src, extra_dst)`` where ``p2`` is the largest
    power of two <= ``nranks`` and the extra ranks ``p2..nranks-1`` are
    paired with ranks ``0..rem-1`` in a fold-in pre-step (and symmetric
    fold-out post-step). For power-of-two counts the extra arrays are
    empty.
    """
    require_positive_int(nranks, "nranks")
    p2 = 1 << (nranks.bit_length() - 1)
    if p2 == nranks:
        empty = np.empty(0, dtype=np.int64)
        return p2, empty, empty
    extra = np.arange(p2, nranks, dtype=np.int64)
    return p2, extra, extra - p2
