"""Recursive doubling / halving (paper Figure 3; MPI_Allreduce).

At step ``k`` (0-based), rank ``i`` exchanges the full message with rank
``i XOR 2^k``; there are ``log2(P)`` steps and the message size stays
constant. Recursive *halving* traverses the same partner sequence in the
opposite distance order, so for the per-step max-hops cost model the two
are equivalent — the paper accordingly reports them as one pattern "RD".

Non-power-of-two rank counts use the standard MPICH embedding: the
surplus ranks fold their data into a power-of-two core in a pre-step,
the core runs the algorithm, and a post-step unfolds the result.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .base import CommStep, CommunicationPattern, fold_to_power_of_two

__all__ = ["RecursiveDoubling"]


class RecursiveDoubling(CommunicationPattern):
    """Pairwise-exchange recursive doubling (constant message size)."""

    name = "rd"

    def steps(self, nranks: int) -> List[CommStep]:
        """Recursive-doubling schedule: partners at distance 2^s."""
        p2, extra_src, extra_dst = fold_to_power_of_two(nranks)
        out: List[CommStep] = []
        if extra_src.size:
            out.append(CommStep(np.column_stack([extra_src, extra_dst]), msize=1.0))
        ranks = np.arange(p2, dtype=np.int64)
        dist = 1
        while dist < p2:
            partner = ranks ^ dist
            lower = ranks < partner  # each exchange listed once
            out.append(
                CommStep(np.column_stack([ranks[lower], partner[lower]]), msize=1.0, exchange=True)
            )
            dist *= 2
        if extra_src.size:
            out.append(CommStep(np.column_stack([extra_dst, extra_src]), msize=1.0))
        return out
