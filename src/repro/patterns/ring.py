"""Ring pattern (paper §7 future work; MPI_Allgather ring variant).

Every rank sends to its successor ``(i + 1) mod P`` for ``P - 1``
consecutive steps, passing one ``1/P``-sized block per step. All steps
share the same pair set, so the pattern is encoded as a single
:class:`~repro.patterns.base.CommStep` with ``repeat = P - 1`` — cost
evaluation stays O(P) instead of O(P^2).
"""

from __future__ import annotations

from typing import List

import numpy as np

from .base import CommStep, CommunicationPattern
from .._validation import require_positive_int

__all__ = ["Ring"]


class Ring(CommunicationPattern):
    """Neighbour ring exchange, ``P - 1`` identical steps."""

    name = "ring"

    def steps(self, nranks: int) -> List[CommStep]:
        """Ring schedule: one neighbour step repeated P-1 times."""
        require_positive_int(nranks, "nranks")
        if nranks == 1:
            return []
        src = np.arange(nranks, dtype=np.int64)
        dst = (src + 1) % nranks
        return [
            CommStep(np.column_stack([src, dst]), msize=1.0 / nranks, repeat=nranks - 1)
        ]
