"""MPI-collective communication patterns (paper §3.3).

The paper optimizes for the parallel algorithms underlying MPI
collectives rather than profiled communication matrices. Implemented:

* ``rd`` — recursive doubling/halving (MPI_Allreduce)
* ``rhvd`` — recursive halving with vector doubling (MPI_Allgather)
* ``binomial`` — binomial tree (MPI_Bcast / MPI_Reduce)
* ``alltoall`` — pairwise exchange (MPI_Alltoall, §1's FFTW/CPMD)
* ``ring``, ``stencil2d`` — the §7 future-work patterns
"""

from .alltoall import PairwiseAlltoall
from .base import CommStep, CommunicationPattern, fold_to_power_of_two, pairs_array
from .binomial import BinomialTree
from .recursive_doubling import RecursiveDoubling
from .rhvd import RecursiveHalvingVectorDoubling
from .ring import Ring
from .stencil import Stencil2D, square_factorization
from .registry import PATTERN_FACTORIES, get_pattern, pattern_names, register_pattern

__all__ = [
    "CommStep",
    "CommunicationPattern",
    "fold_to_power_of_two",
    "pairs_array",
    "BinomialTree",
    "PairwiseAlltoall",
    "RecursiveDoubling",
    "RecursiveHalvingVectorDoubling",
    "Ring",
    "Stencil2D",
    "square_factorization",
    "PATTERN_FACTORIES",
    "get_pattern",
    "pattern_names",
    "register_pattern",
]
