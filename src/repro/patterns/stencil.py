"""2-D stencil halo exchange (paper §7 future work).

Ranks are arranged on a ``px x py`` grid (the most-square factorization
of ``P``, falling back to ``P x 1`` for primes). One "iteration" is four
steps — send east, west, south, north — each a full-grid neighbour shift
with constant message size. Non-periodic boundaries: edge ranks simply
have no partner in that direction.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .base import CommStep, CommunicationPattern
from .._validation import require_positive_int

__all__ = ["Stencil2D", "square_factorization"]


def square_factorization(n: int) -> Tuple[int, int]:
    """Return ``(px, py)`` with ``px * py == n`` and ``px >= py`` maximal-square."""
    require_positive_int(n, "n")
    py = int(np.sqrt(n))
    while py > 1 and n % py != 0:
        py -= 1
    return n // py, py


class Stencil2D(CommunicationPattern):
    """Four-direction halo exchange on a 2-D rank grid.

    Parameters
    ----------
    periodic:
        When True, edges wrap around (torus-style halo exchange).
    """

    name = "stencil2d"

    def __init__(self, periodic: bool = False) -> None:
        self.periodic = bool(periodic)

    def steps(self, nranks: int) -> List[CommStep]:
        """2-D stencil schedule: north/south/east/west neighbour exchanges."""
        require_positive_int(nranks, "nranks")
        if nranks == 1:
            return []
        px, py = square_factorization(nranks)
        ranks = np.arange(nranks, dtype=np.int64)
        x = ranks % px
        y = ranks // px
        out: List[CommStep] = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx = x + dx
            ny = y + dy
            if self.periodic:
                nx %= px
                ny %= py
                ok = np.ones(nranks, dtype=bool)
                # a dimension of extent 1 has no distinct neighbour
                if px == 1 and dx != 0:
                    ok[:] = False
                if py == 1 and dy != 0:
                    ok[:] = False
            else:
                ok = (nx >= 0) & (nx < px) & (ny >= 0) & (ny < py)
            dst = ny * px + nx
            pairs = np.column_stack([ranks[ok], dst[ok]])
            if pairs.shape[0]:
                out.append(CommStep(pairs, msize=1.0))
        return out

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Stencil2D) and other.periodic == self.periodic

    def __hash__(self) -> int:
        return hash((type(self), self.periodic))

    def __repr__(self) -> str:
        return f"Stencil2D(periodic={self.periodic})"
