"""Recursive halving with vector doubling (MPI_Allgather; paper "RHVD").

The partner *distance* halves every step (``P/2, P/4, ..., 1``) while
the exchanged *vector* doubles (§5.3: "msize doubles in the case of
vector doubling algorithms"). With a final gathered vector of relative
size 1, step ``k`` of ``log2(P)`` exchanges ``2^k / P`` of it, starting
from each rank's ``1/P`` contribution.

Compared to RD, every step moves data between *different-sized* blocks
of the rank space, so an unbalanced node allocation forces more
inter-switch traffic in the large-message late steps — which is exactly
why the paper finds RHVD benefits more from balanced allocation (§6.1).
"""

from __future__ import annotations

from typing import List

import numpy as np

from .base import CommStep, CommunicationPattern, fold_to_power_of_two

__all__ = ["RecursiveHalvingVectorDoubling"]


class RecursiveHalvingVectorDoubling(CommunicationPattern):
    """Halving partner distance, doubling message size per step."""

    name = "rhvd"

    def steps(self, nranks: int) -> List[CommStep]:
        """Recursive-halving schedule with message size doubling per step."""
        p2, extra_src, extra_dst = fold_to_power_of_two(nranks)
        out: List[CommStep] = []
        if extra_src.size:
            out.append(
                CommStep(np.column_stack([extra_src, extra_dst]), msize=1.0 / max(nranks, 1))
            )
        ranks = np.arange(p2, dtype=np.int64)
        n_steps = int(p2).bit_length() - 1
        for k in range(n_steps):
            dist = p2 >> (k + 1)  # P/2, P/4, ..., 1
            partner = ranks ^ dist
            lower = ranks < partner
            msize = (1 << k) / p2  # 1/P, 2/P, ..., 1/2
            out.append(
                CommStep(np.column_stack([ranks[lower], partner[lower]]), msize=msize, exchange=True)
            )
        if extra_src.size:
            out.append(CommStep(np.column_stack([extra_dst, extra_src]), msize=1.0))
        return out
