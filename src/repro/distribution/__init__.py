"""SLURM task distributions (``srun --distribution``) over allocations."""

from .layouts import block_distribution, cyclic_distribution, plane_distribution

__all__ = ["block_distribution", "cyclic_distribution", "plane_distribution"]
