"""SLURM task distributions: rank-to-node layouts.

The paper allocates whole nodes; *which MPI rank lands on which node*
is then decided by ``srun --distribution``. This module implements the
three classic layouts over an allocated node list, with any number of
tasks (ranks) per node:

* **block** — consecutive ranks fill a node before moving on
  (``srun -m block``, the default, and what the paper's cost model
  implicitly assumes);
* **cyclic** — ranks round-robin over nodes (``-m cyclic``);
* **plane** — blocks of ``plane_size`` ranks round-robin over nodes
  (``-m plane=x``), interpolating between the two.

A layout is an int64 array ``rank -> node id``, directly consumable by
:meth:`repro.cost.model.CostModel.allocation_cost` (which prices ranks
positionally and charges 0 hops for intra-node pairs), so the cost of
a collective under any distribution is one call away.
"""

from __future__ import annotations

import numpy as np

from .._validation import require_positive_int

__all__ = ["block_distribution", "cyclic_distribution", "plane_distribution"]


def _as_nodes(nodes) -> np.ndarray:
    arr = np.asarray(nodes, dtype=np.int64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("nodes must be a non-empty 1-D sequence")
    if len(set(arr.tolist())) != arr.size:
        raise ValueError("nodes must be distinct")
    return arr


def block_distribution(nodes, tasks_per_node: int = 1) -> np.ndarray:
    """``srun -m block``: ranks 0..t-1 on the first node, and so on."""
    arr = _as_nodes(nodes)
    require_positive_int(tasks_per_node, "tasks_per_node")
    return np.repeat(arr, tasks_per_node)


def cyclic_distribution(nodes, tasks_per_node: int = 1) -> np.ndarray:
    """``srun -m cyclic``: consecutive ranks on consecutive nodes."""
    arr = _as_nodes(nodes)
    require_positive_int(tasks_per_node, "tasks_per_node")
    return np.tile(arr, tasks_per_node)


def plane_distribution(nodes, plane_size: int, tasks_per_node: int = 1) -> np.ndarray:
    """``srun -m plane=<size>``: blocks of ``plane_size`` ranks cycle.

    ``plane_size = tasks_per_node`` degenerates to block;
    ``plane_size = 1`` to cyclic. ``tasks_per_node`` must be a multiple
    of ``plane_size`` (SLURM pads otherwise; we reject for clarity).
    """
    arr = _as_nodes(nodes)
    require_positive_int(plane_size, "plane_size")
    require_positive_int(tasks_per_node, "tasks_per_node")
    if tasks_per_node % plane_size != 0:
        raise ValueError(
            f"tasks_per_node ({tasks_per_node}) must be a multiple of "
            f"plane_size ({plane_size})"
        )
    sweeps = tasks_per_node // plane_size
    # each sweep deals plane_size consecutive ranks to every node in turn
    out = np.concatenate([np.repeat(arr, plane_size)] * sweeps)
    return out
