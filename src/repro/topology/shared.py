"""Share one topology's derived arrays across worker processes.

A :class:`~repro.topology.tree.TreeTopology` is immutable, and its
expensive derived structures — the per-leaf ancestor table, the dense
leaf×leaf LCA-level matrix behind the Eq. 6 leaf-pair kernel, the
node→leaf assignment — are identical in every worker of a sweep or
fabric fan-out. :func:`publish_topology` puts those arrays into one
shared-memory segment (:mod:`repro.shm`); :func:`attach_topology`
rebuilds the topology in a worker from its conf text and swaps the
shared views in, so each worker's private footprint is just the switch
metadata, and the LCA matrix is never recomputed per process.

Worker-process plumbing: pools pass ``{key: TopologyHandle}`` to
:func:`install_topology_handles` as their initializer;
:meth:`repro.experiments.runner.ExperimentConfig.topology` then finds
the attached instance through :func:`shared_topology` (keyed by log
name) instead of rebuilding from :data:`~repro.workloads.logs.LOG_SPECS`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..shm import SharedArrayPack, SharedPackHandle, attach_arrays, publish_arrays
from .config import parse_topology_conf, write_topology_conf
from .tree import TreeTopology

__all__ = [
    "TopologyHandle",
    "PublishedTopology",
    "publish_topology",
    "attach_topology",
    "install_topology_handles",
    "shared_topology",
    "clear_topology_registry",
]


@dataclass(frozen=True)
class TopologyHandle:
    """Picklable recipe for attaching a shared topology in a worker."""

    conf: str
    pack: SharedPackHandle


class PublishedTopology:
    """Owner side of one shared topology (publishes and later unlinks)."""

    def __init__(self, pack: SharedArrayPack, handle: TopologyHandle) -> None:
        self._pack = pack
        self.handle = handle

    def unlink(self) -> None:
        """Destroy the shared segment. Safe to call more than once."""
        self._pack.unlink()

    def __enter__(self) -> "PublishedTopology":
        return self

    def __exit__(self, *exc: object) -> None:
        self.unlink()


def publish_topology(topology: TreeTopology) -> PublishedTopology:
    """Publish a topology's derived arrays into shared memory.

    Forces the lazy LCA matrix so workers inherit it precomputed. The
    caller owns the returned object and must ``unlink()`` it once every
    worker has exited.
    """
    pack = publish_arrays(
        {
            "ancestors": topology._ancestors,
            "switch_levels": topology._switch_levels,
            "leaf_lca_levels": topology.leaf_lca_levels(),
            "leaf_of_node": topology.leaf_of_node,
            "leaf_node_offset": topology.leaf_node_offset,
            "leaf_sizes": topology.leaf_sizes,
            "leaf_switch_index": topology._leaf_switch_index,
        }
    )
    handle = TopologyHandle(conf=write_topology_conf(topology), pack=pack.handle)
    return PublishedTopology(pack, handle)


def attach_topology(handle: TopologyHandle) -> TreeTopology:
    """Rebuild a topology in this process around the shared arrays.

    The switch metadata (names, :class:`SwitchInfo` tuples) is re-parsed
    from the conf text — cheap and unavoidable, Python objects cannot
    live in shared memory — while every NumPy array, including the
    precomputed LCA matrix, is a read-only zero-copy view of the
    publisher's segment. The attachment is pinned on the returned
    instance, so the segment stays mapped for the topology's lifetime.
    """
    topology = parse_topology_conf(handle.conf)
    attached = attach_arrays(handle.pack)
    topology._ancestors = attached["ancestors"]
    topology._switch_levels = attached["switch_levels"]
    topology._leaf_lca_levels = attached["leaf_lca_levels"]
    topology.leaf_of_node = attached["leaf_of_node"]
    topology.leaf_node_offset = attached["leaf_node_offset"]
    topology.leaf_sizes = attached["leaf_sizes"]
    topology._leaf_switch_index = attached["leaf_switch_index"]
    topology._shm_attachment = attached
    return topology


#: worker-process registry: key (log name) -> attached topology
_REGISTRY: Dict[str, TreeTopology] = {}


def install_topology_handles(handles: Mapping[str, TopologyHandle]) -> None:
    """Attach and register shared topologies (process-pool initializer).

    Idempotent per key: re-running in a reused worker replaces the
    entry. Module-level so it pickles as a pool ``initializer``.
    """
    for key, handle in handles.items():
        _REGISTRY[key] = attach_topology(handle)


def shared_topology(key: str) -> Optional[TreeTopology]:
    """The attached topology registered under ``key``, if any."""
    return _REGISTRY.get(key)


def clear_topology_registry() -> None:
    """Forget all registered attachments (tests).

    Only drops the references — the segments unmap when the attached
    topologies are garbage collected (unmapping eagerly would invalidate
    any still-live views).
    """
    _REGISTRY.clear()
