"""Tree / fat-tree topology runtime representation.

The paper (§3.2) models the cluster network as a tree: level-1 ("leaf")
switches connect compute nodes, higher-level switches connect switches.
All scheduling-time queries — which leaf a node sits on, the level of the
lowest common switch of two nodes (Eq. 4 distance), which leaves live
under an inner switch — are answered here from flat NumPy arrays.

Construction goes through :meth:`TreeTopology.from_switches`, which
validates the spec (single root, no cycles, nodes on exactly one leaf)
and assigns:

* leaf indices ``0..n_leaves-1`` in depth-first order, so every switch's
  leaves form a contiguous ``[lo, hi)`` range;
* node ids ``0..n_nodes-1`` in leaf order, so every leaf's nodes form a
  contiguous range as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from .entities import SwitchSpec

__all__ = ["TreeTopology", "SwitchInfo", "TopologyError"]


class TopologyError(ValueError):
    """Raised when a switch specification does not describe a valid tree."""


@dataclass(frozen=True)
class SwitchInfo:
    """Immutable per-switch facts exposed by :class:`TreeTopology`.

    Attributes
    ----------
    index:
        Global switch index (0-based, DFS order, root last among equals).
    name:
        Switch name from the spec.
    level:
        1 for leaf switches; an inner switch is one above its highest child.
    depth:
        Hops from the root (root has depth 0).
    leaf_lo, leaf_hi:
        Half-open range of leaf indices under this switch.
    capacity:
        Total compute nodes in this switch's subtree.
    parent:
        Switch index of the parent, or -1 for the root.
    """

    index: int
    name: str
    level: int
    depth: int
    leaf_lo: int
    leaf_hi: int
    capacity: int
    parent: int

    @property
    def is_leaf(self) -> bool:
        """True for level-1 switches (the ones nodes hang off)."""
        return self.level == 1

    @property
    def n_leaves(self) -> int:
        """Number of leaf switches in this switch's subtree."""
        return self.leaf_hi - self.leaf_lo


class TreeTopology:
    """A validated tree/fat-tree network topology.

    Use :meth:`from_switches` (or the helpers in
    :mod:`repro.topology.builders` / :mod:`repro.topology.config`) to
    construct one. Instances are immutable.
    """

    def __init__(
        self,
        *,
        node_names: Sequence[str],
        leaf_names: Sequence[str],
        leaf_sizes: np.ndarray,
        switch_infos: Sequence[SwitchInfo],
        leaf_switch_index: np.ndarray,
        ancestors: np.ndarray,
        switch_levels: np.ndarray,
    ) -> None:
        self._node_names: Tuple[str, ...] = tuple(node_names)
        self._leaf_names: Tuple[str, ...] = tuple(leaf_names)
        self.leaf_sizes: np.ndarray = np.asarray(leaf_sizes, dtype=np.int64)
        self.leaf_sizes.setflags(write=False)
        self._switches: Tuple[SwitchInfo, ...] = tuple(switch_infos)
        #: leaf index -> global switch index
        self._leaf_switch_index = np.asarray(leaf_switch_index, dtype=np.int64)
        self._leaf_switch_index.setflags(write=False)
        #: ancestors[d, k] = switch index of leaf k's ancestor at depth d,
        #: padded below the leaf with the leaf's own switch index.
        self._ancestors = np.asarray(ancestors, dtype=np.int64)
        self._ancestors.setflags(write=False)
        self._switch_levels = np.asarray(switch_levels, dtype=np.int64)
        self._switch_levels.setflags(write=False)

        #: node id -> leaf index
        self.leaf_of_node: np.ndarray = np.repeat(
            np.arange(self.n_leaves, dtype=np.int64), self.leaf_sizes
        )
        self.leaf_of_node.setflags(write=False)
        #: leaf index -> first node id on that leaf (leaf k owns
        #: node ids [leaf_node_offset[k], leaf_node_offset[k+1])).
        self.leaf_node_offset: np.ndarray = np.concatenate(
            ([0], np.cumsum(self.leaf_sizes))
        ).astype(np.int64)
        self.leaf_node_offset.setflags(write=False)

        #: lazily built (n_leaves, n_leaves) LCA-level matrix; shared by
        #: every ClusterState over this topology (instances are immutable)
        self._leaf_lca_levels: np.ndarray | None = None

        self._name_to_node: Dict[str, int] = {n: i for i, n in enumerate(self._node_names)}
        self._name_to_switch: Dict[str, int] = {s.name: s.index for s in self._switches}
        self._levels: Dict[int, List[SwitchInfo]] = {}
        for info in self._switches:
            self._levels.setdefault(info.level, []).append(info)
        #: lazily built per-level (switch index, leaf_lo, leaf_hi) arrays
        #: for the vectorized lowest-level-switch search
        self._level_arrays: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_switches(cls, specs: Iterable[SwitchSpec]) -> "TreeTopology":
        """Build and validate a topology from switch specifications.

        Raises :class:`TopologyError` on: duplicate switch/node names, a
        node attached to more than one switch, unknown child switch
        references, cycles, forests (more than one root), or empty input.
        """
        spec_list = list(specs)
        if not spec_list:
            raise TopologyError("topology needs at least one switch")
        by_name: Dict[str, SwitchSpec] = {}
        for spec in spec_list:
            err = spec.validate()
            if err:
                raise TopologyError(err)
            if spec.name in by_name:
                raise TopologyError(f"duplicate switch name {spec.name!r}")
            by_name[spec.name] = spec

        node_owner: Dict[str, str] = {}
        for spec in spec_list:
            for node in spec.nodes:
                if node in node_owner:
                    raise TopologyError(
                        f"node {node!r} attached to both {node_owner[node]!r} and {spec.name!r}"
                    )
                node_owner[node] = spec.name

        parent_of: Dict[str, str] = {}
        for spec in spec_list:
            for child in spec.switches:
                if child not in by_name:
                    raise TopologyError(f"switch {spec.name!r} references unknown child {child!r}")
                if child in parent_of:
                    raise TopologyError(
                        f"switch {child!r} has two parents: {parent_of[child]!r} and {spec.name!r}"
                    )
                parent_of[child] = spec.name

        roots = [s.name for s in spec_list if s.name not in parent_of]
        if len(roots) != 1:
            raise TopologyError(f"topology must have exactly one root switch, found {roots}")
        root = roots[0]

        # Iterative DFS from the root: detects cycles/unreachable switches,
        # assigns DFS-contiguous leaf indices and node ids.
        order: List[str] = []
        visited: set[str] = set()
        stack: List[str] = [root]
        while stack:
            name = stack.pop()
            if name in visited:
                raise TopologyError(f"cycle involving switch {name!r}")
            visited.add(name)
            order.append(name)
            # reversed so children come out of the stack in spec order
            stack.extend(reversed(by_name[name].switches))
        unreachable = set(by_name) - visited
        if unreachable:
            raise TopologyError(f"switches unreachable from root: {sorted(unreachable)}")

        # Post-order pass computing level / leaf ranges / capacities.
        levels: Dict[str, int] = {}
        leaf_lo: Dict[str, int] = {}
        leaf_hi: Dict[str, int] = {}
        capacity: Dict[str, int] = {}
        leaf_names: List[str] = []
        leaf_sizes: List[int] = []
        node_names: List[str] = []

        def visit(name: str) -> None:
            spec = by_name[name]
            if spec.is_leaf:
                levels[name] = 1
                leaf_lo[name] = len(leaf_names)
                leaf_names.append(name)
                leaf_sizes.append(len(spec.nodes))
                node_names.extend(spec.nodes)
                leaf_hi[name] = len(leaf_names)
                capacity[name] = len(spec.nodes)
                return
            lo = len(leaf_names)
            cap = 0
            lvl = 0
            for child in spec.switches:
                visit(child)
                cap += capacity[child]
                lvl = max(lvl, levels[child])
            levels[name] = lvl + 1
            leaf_lo[name] = lo
            leaf_hi[name] = len(leaf_names)
            capacity[name] = cap

        # Manual recursion is fine: tree depth is tiny (<= 5 in practice),
        # but guard against pathological chains blowing the stack.
        import sys

        if len(spec_list) > sys.getrecursionlimit() - 100:
            sys.setrecursionlimit(len(spec_list) + 200)
        visit(root)

        # Depths from the root.
        depth: Dict[str, int] = {root: 0}
        for name in order:  # DFS order guarantees parents precede children
            for child in by_name[name].switches:
                depth[child] = depth[name] + 1

        # Global switch indices in DFS order.
        index_of = {name: i for i, name in enumerate(order)}
        infos: List[SwitchInfo] = []
        for name in order:
            infos.append(
                SwitchInfo(
                    index=index_of[name],
                    name=name,
                    level=levels[name],
                    depth=depth[name],
                    leaf_lo=leaf_lo[name],
                    leaf_hi=leaf_hi[name],
                    capacity=capacity[name],
                    parent=index_of[parent_of[name]] if name in parent_of else -1,
                )
            )

        n_leaves = len(leaf_names)
        if n_leaves == 0:
            raise TopologyError("topology has no leaf switches / compute nodes")
        leaf_switch_index = np.array([index_of[n] for n in leaf_names], dtype=np.int64)

        max_depth = max(depth.values())
        ancestors = np.empty((max_depth + 1, n_leaves), dtype=np.int64)
        for k, leaf in enumerate(leaf_names):
            chain: List[int] = []
            cur = leaf
            while True:
                chain.append(index_of[cur])
                if cur == root:
                    break
                cur = parent_of[cur]
            chain.reverse()  # root first
            # pad below the leaf with the leaf itself
            chain.extend([index_of[leaf]] * (max_depth + 1 - len(chain)))
            ancestors[:, k] = chain

        switch_levels = np.array([levels[n] for n in order], dtype=np.int64)

        return cls(
            node_names=node_names,
            leaf_names=leaf_names,
            leaf_sizes=np.array(leaf_sizes, dtype=np.int64),
            switch_infos=infos,
            leaf_switch_index=leaf_switch_index,
            ancestors=ancestors,
            switch_levels=switch_levels,
        )

    # ------------------------------------------------------------------
    # basic facts
    # ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Total compute nodes."""
        return len(self._node_names)

    @property
    def n_leaves(self) -> int:
        """Number of leaf switches."""
        return len(self._leaf_names)

    @property
    def n_switches(self) -> int:
        """Total number of switches in the tree."""
        return len(self._switches)

    @property
    def height(self) -> int:
        """Level of the root switch (a two-level tree has height 2)."""
        return self.root.level

    @property
    def root(self) -> SwitchInfo:
        """The top-level switch."""
        return self._switches[0]

    @property
    def switches(self) -> Tuple[SwitchInfo, ...]:
        """All switches, DFS order (root first)."""
        return self._switches

    def switches_at_level(self, level: int) -> List[SwitchInfo]:
        """Switches whose level equals ``level`` (1 = leaves)."""
        return list(self._levels.get(level, []))

    def level_switch_arrays(
        self, level: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(switch_index, leaf_lo, leaf_hi)`` arrays for one level.

        Same switches, same order as :meth:`switches_at_level`, but as
        flat int64 arrays so subtree-free counts for a whole level are
        one vectorized cumulative-sum difference instead of a Python
        loop over :meth:`~repro.cluster.state.ClusterState.subtree_free`.
        Built lazily and cached — instances are immutable.
        """
        arrays = self._level_arrays.get(level)
        if arrays is None:
            infos = self._levels.get(level, [])
            arrays = (
                np.array([s.index for s in infos], dtype=np.int64),
                np.array([s.leaf_lo for s in infos], dtype=np.int64),
                np.array([s.leaf_hi for s in infos], dtype=np.int64),
            )
            for arr in arrays:
                arr.setflags(write=False)
            self._level_arrays[level] = arrays
        return arrays

    def switch(self, name_or_index) -> SwitchInfo:
        """Look up a switch by name or global index."""
        if isinstance(name_or_index, str):
            try:
                return self._switches[self._name_to_switch[name_or_index]]
            except KeyError:
                raise KeyError(f"no switch named {name_or_index!r}") from None
        return self._switches[int(name_or_index)]

    def leaf(self, leaf_index: int) -> SwitchInfo:
        """The :class:`SwitchInfo` of leaf ``leaf_index``."""
        return self._switches[int(self._leaf_switch_index[leaf_index])]

    def node_name(self, node_id: int) -> str:
        """The SLURM-style name of node ``node_id``."""
        return self._node_names[node_id]

    def node_id(self, name: str) -> int:
        """The id of the node named ``name`` (KeyError when unknown)."""
        try:
            return self._name_to_node[name]
        except KeyError:
            raise KeyError(f"no node named {name!r}") from None

    @property
    def node_names(self) -> Tuple[str, ...]:
        """All node names, indexed by node id."""
        return self._node_names

    @property
    def leaf_names(self) -> Tuple[str, ...]:
        """All leaf-switch names, indexed by leaf index."""
        return self._leaf_names

    def leaf_nodes(self, leaf_index: int) -> np.ndarray:
        """Node ids attached to leaf ``leaf_index`` (contiguous range)."""
        lo = int(self.leaf_node_offset[leaf_index])
        hi = int(self.leaf_node_offset[leaf_index + 1])
        return np.arange(lo, hi, dtype=np.int64)

    # ------------------------------------------------------------------
    # distance queries (paper Eq. 4)
    # ------------------------------------------------------------------

    def lca_level(self, leaf_a, leaf_b) -> np.ndarray:
        """Level of the lowest common switch of two leaves (vectorized).

        ``leaf_a`` / ``leaf_b`` are leaf indices (scalars or arrays).
        Two equal leaves have LCA level 1 (the leaf itself).
        """
        la, lb = np.broadcast_arrays(
            np.asarray(leaf_a, dtype=np.int64), np.asarray(leaf_b, dtype=np.int64)
        )
        shape = la.shape
        la = la.ravel()
        lb = lb.ravel()
        anc_a = self._ancestors[:, la]
        anc_b = self._ancestors[:, lb]
        # Ancestor chains agree on a prefix (from the root) then diverge
        # for good, so the deepest common ancestor sits at index sum-1.
        common = (anc_a == anc_b).sum(axis=0) - 1
        lca = anc_a[common, np.arange(la.size)]
        return self._switch_levels[lca].reshape(shape)

    def leaf_lca_levels(self) -> np.ndarray:
        """Dense leaf×leaf matrix of LCA levels (read-only, built lazily).

        ``M[a, b]`` is the level of the lowest common switch of leaves
        ``a`` and ``b`` (diagonal = 1). At Mira scale this is 136×136 —
        small enough to precompute once and index directly, which is what
        lets the Eq. 6 leaf-pair kernel replace per-node-pair ancestor
        walks with a single fancy-index lookup.
        """
        m = self._leaf_lca_levels
        if m is None:
            idx = np.arange(self.n_leaves, dtype=np.int64)
            m = self.lca_level(idx[:, None], idx[None, :])
            m.setflags(write=False)
            self._leaf_lca_levels = m
        return m

    def distance(self, node_i, node_j) -> np.ndarray:
        """Eq. 4 distance ``d(i, j) = 2 * level of lowest common switch``.

        Vectorized over node-id arrays. The distance of a node to itself
        is 0 (intra-node communication never touches the network).
        """
        ni = np.asarray(node_i, dtype=np.int64)
        nj = np.asarray(node_j, dtype=np.int64)
        la = self.leaf_of_node[ni]
        lb = self.leaf_of_node[nj]
        d = 2 * self.lca_level(la, lb)
        return np.where(ni == nj, 0, d)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"TreeTopology(n_nodes={self.n_nodes}, n_leaves={self.n_leaves}, "
            f"height={self.height})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TreeTopology):
            return NotImplemented
        return (
            self._node_names == other._node_names
            and self._leaf_names == other._leaf_names
            and np.array_equal(self.leaf_sizes, other.leaf_sizes)
            and self._switches == other._switches
        )

    def __hash__(self) -> int:
        return hash((self._node_names, self._leaf_names, self._switches))
