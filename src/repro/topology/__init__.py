"""Tree / fat-tree network topology substrate (paper §3.2, §5.2)."""

from .entities import NodeSpec, SwitchSpec
from .tree import SwitchInfo, TopologyError, TreeTopology
from .config import load_topology_conf, parse_topology_conf, write_topology_conf
from .hostlist import HostlistError, compress_hostlist, expand_hostlist
from .describe import describe_topology, topology_summary
from .shared import (
    PublishedTopology,
    TopologyHandle,
    attach_topology,
    clear_topology_registry,
    install_topology_handles,
    publish_topology,
    shared_topology,
)
from .random import random_leaf_sizes, random_tree
from .builders import (
    TOPOLOGY_BUILDERS,
    cori_like,
    fat_tree,
    dept_cluster,
    iitk_hpc2010,
    intrepid_like,
    mira_like,
    theta_like,
    three_level_tree,
    tree_from_leaf_sizes,
    two_level_tree,
)

__all__ = [
    "NodeSpec",
    "SwitchSpec",
    "SwitchInfo",
    "TopologyError",
    "TreeTopology",
    "load_topology_conf",
    "parse_topology_conf",
    "write_topology_conf",
    "HostlistError",
    "compress_hostlist",
    "expand_hostlist",
    "describe_topology",
    "topology_summary",
    "PublishedTopology",
    "TopologyHandle",
    "attach_topology",
    "clear_topology_registry",
    "install_topology_handles",
    "publish_topology",
    "shared_topology",
    "random_leaf_sizes",
    "random_tree",
    "TOPOLOGY_BUILDERS",
    "cori_like",
    "fat_tree",
    "dept_cluster",
    "iitk_hpc2010",
    "intrepid_like",
    "mira_like",
    "theta_like",
    "three_level_tree",
    "tree_from_leaf_sizes",
    "two_level_tree",
]
