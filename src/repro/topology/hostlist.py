"""SLURM hostlist expressions.

SLURM configuration files describe groups of hosts with bracketed range
expressions such as ``n[0-3]``, ``node[00-12]`` or ``c[1,3,5-7]``.  This
module implements both directions:

* :func:`expand_hostlist` — ``"n[0-3]"`` -> ``["n0", "n1", "n2", "n3"]``
* :func:`compress_hostlist` — the inverse, producing a compact expression.

Zero padding is preserved: ``n[00-02]`` expands to ``n00, n01, n02`` and
compressing those names yields ``n[00-02]`` again.
"""

from __future__ import annotations

import re
from itertools import groupby
from typing import Iterable, List, Sequence

__all__ = ["expand_hostlist", "compress_hostlist", "HostlistError"]


class HostlistError(ValueError):
    """Raised for malformed hostlist expressions."""


_BRACKET_RE = re.compile(r"^(?P<prefix>[^\[\]]*)\[(?P<body>[^\[\]]+)\](?P<suffix>[^\[\]]*)$")
_TRAILING_NUM_RE = re.compile(r"^(?P<stem>.*?)(?P<num>\d+)$")


def _split_top_level(expr: str) -> List[str]:
    """Split a comma-separated hostlist on commas that are outside brackets."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in expr:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
            if depth < 0:
                raise HostlistError(f"unbalanced ']' in {expr!r}")
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise HostlistError(f"unbalanced '[' in {expr!r}")
    parts.append("".join(current))
    return [p.strip() for p in parts if p.strip()]


def _expand_range_body(body: str) -> List[str]:
    """Expand the inside of a bracket: ``"0-3,7,10-11"`` -> numeric strings."""
    out: List[str] = []
    for piece in body.split(","):
        piece = piece.strip()
        if not piece:
            raise HostlistError(f"empty range element in [{body}]")
        if "-" in piece:
            lo_s, _, hi_s = piece.partition("-")
            if not lo_s.isdigit() or not hi_s.isdigit():
                raise HostlistError(f"non-numeric range {piece!r}")
            lo, hi = int(lo_s), int(hi_s)
            if hi < lo:
                raise HostlistError(f"descending range {piece!r}")
            width = len(lo_s) if lo_s.startswith("0") or len(lo_s) == len(hi_s) else 0
            for v in range(lo, hi + 1):
                out.append(str(v).zfill(width) if width else str(v))
        else:
            if not piece.isdigit():
                raise HostlistError(f"non-numeric element {piece!r}")
            out.append(piece)
    return out


def expand_hostlist(expr: str) -> List[str]:
    """Expand a SLURM hostlist expression into an explicit list of names.

    Accepts comma-separated terms, each either a plain name (``login1``)
    or a single bracketed range (``n[0-3,8]``). Names are returned in the
    order produced by the expression (duplicates are preserved).
    """
    if not isinstance(expr, str):
        raise TypeError(f"hostlist must be a str, got {type(expr).__name__}")
    names: List[str] = []
    for term in _split_top_level(expr):
        m = _BRACKET_RE.match(term)
        if m is None:
            if "[" in term or "]" in term:
                raise HostlistError(f"malformed hostlist term {term!r}")
            names.append(term)
            continue
        prefix, body, suffix = m.group("prefix"), m.group("body"), m.group("suffix")
        for num in _expand_range_body(body):
            names.append(f"{prefix}{num}{suffix}")
    return names


def _runs(numbers: Sequence[int]) -> List[tuple[int, int]]:
    """Group sorted integers into inclusive (lo, hi) runs."""
    runs: List[tuple[int, int]] = []
    for _, grp in groupby(enumerate(numbers), key=lambda t: t[1] - t[0]):
        items = [v for _, v in grp]
        runs.append((items[0], items[-1]))
    return runs


def compress_hostlist(names: Iterable[str]) -> str:
    """Compress host names into a compact SLURM hostlist expression.

    Names sharing a stem and numeric-suffix width are grouped into
    bracketed ranges; anything without a trailing number is passed
    through verbatim. Output terms are sorted by (stem, width, number)
    so the result is deterministic.
    """
    plain: List[str] = []
    grouped: dict[tuple[str, int], List[int]] = {}
    for name in names:
        m = _TRAILING_NUM_RE.match(name)
        if m is None:
            plain.append(name)
            continue
        stem, num = m.group("stem"), m.group("num")
        # Width only matters when the number is zero-padded; unpadded numbers
        # of different lengths (n9, n10) must share a group to form n[9-10].
        width = len(num) if num.startswith("0") and len(num) > 1 else 0
        grouped.setdefault((stem, width), []).append(int(num))

    terms: List[str] = sorted(set(plain))
    for (stem, width), numbers in sorted(grouped.items()):
        numbers = sorted(set(numbers))
        pieces: List[str] = []
        for lo, hi in _runs(numbers):
            lo_s, hi_s = str(lo).zfill(width), str(hi).zfill(width)
            pieces.append(lo_s if lo == hi else f"{lo_s}-{hi_s}")
        if len(pieces) == 1 and "-" not in pieces[0]:
            terms.append(f"{stem}{pieces[0]}")
        else:
            terms.append(f"{stem}[{','.join(pieces)}]")
    return ",".join(terms)
