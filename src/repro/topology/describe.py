"""Human-readable topology descriptions.

``repro-sched topology <machine> --describe`` renders the switch tree
as indented text with per-switch capacities — handy when sanity-checking
a hand-written ``topology.conf`` before a study.
"""

from __future__ import annotations

from typing import Dict, List

from .tree import SwitchInfo, TreeTopology

__all__ = ["describe_topology", "topology_summary"]


def topology_summary(topology: TreeTopology) -> Dict[str, float]:
    """Headline facts: node/switch counts, height, leaf-size spread."""
    sizes = topology.leaf_sizes
    return {
        "nodes": topology.n_nodes,
        "switches": topology.n_switches,
        "leaf_switches": topology.n_leaves,
        "height": topology.height,
        "min_leaf_size": int(sizes.min()),
        "max_leaf_size": int(sizes.max()),
        "mean_leaf_size": float(sizes.mean()),
    }


def describe_topology(topology: TreeTopology, *, max_children: int = 8) -> str:
    """Indented tree rendering, eliding long sibling runs.

    Each line shows the switch name, its level, and the compute-node
    capacity of its subtree; leaves also show their node-name range.
    At most ``max_children`` children are printed per switch, with an
    elision marker for the rest.
    """
    if max_children < 1:
        raise ValueError(f"max_children must be >= 1, got {max_children}")
    children: Dict[int, List[SwitchInfo]] = {}
    for info in topology.switches:
        if info.parent >= 0:
            children.setdefault(info.parent, []).append(info)

    lines: List[str] = []

    def visit(info: SwitchInfo, depth: int) -> None:
        indent = "  " * depth
        if info.is_leaf:
            leaf_index = topology.leaf_names.index(info.name)
            node_ids = topology.leaf_nodes(leaf_index)
            first = topology.node_name(int(node_ids[0]))
            last = topology.node_name(int(node_ids[-1]))
            span = first if len(node_ids) == 1 else f"{first}..{last}"
            lines.append(
                f"{indent}{info.name} [leaf, {info.capacity} nodes: {span}]"
            )
            return
        lines.append(
            f"{indent}{info.name} [level {info.level}, {info.capacity} nodes, "
            f"{info.n_leaves} leaf switches]"
        )
        kids = children.get(info.index, [])
        for kid in kids[:max_children]:
            visit(kid, depth + 1)
        if len(kids) > max_children:
            lines.append(
                f"{indent}  ... {len(kids) - max_children} more switches elided"
            )

    visit(topology.root, 0)
    return "\n".join(lines)
