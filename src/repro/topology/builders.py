"""Synthetic machine topologies.

The paper evaluates on job logs from three machines and uses two real
``topology.conf`` files (IIT Kanpur HPC2010, 16 nodes/leaf; LBNL Cori,
>= 300 nodes/leaf). None of those files are public, so this module
builds trees with the *stated shapes*:

==================  ======  =========  ==============  =======
builder             levels  leaves     nodes per leaf  total
==================  ======  =========  ==============  =======
``dept_cluster``    2       2          25              50
``iitk_hpc2010``    3       4 x 12     16              768
``cori_like``       3       4 x 8      340             10880
``theta_like``      2       275        16 (last: 8)    4392
``intrepid_like``   3       5 x 24     342             41040
``mira_like``       3       8 x 17     360             48960
==================  ======  =========  ==============  =======

``intrepid_like``/``mira_like`` match the machine sizes the paper
states (~40K / ~48K nodes) with 330-380 nodes per leaf switch, the
LBNL-shape range quoted in §2 and §5.2. ``theta_like`` uses 16-node
leaves (the IITK shape): §6.1 attributes Theta's identical greedy/
balanced results to "fewer nodes/switch in the topology".
``dept_cluster`` reproduces the two-switch 50-node departmental cluster
of the Figure 1 experiment.
"""

from __future__ import annotations

from typing import List, Sequence

from .entities import SwitchSpec
from .tree import TreeTopology
from .._validation import require_positive_int

__all__ = [
    "fat_tree",
    "two_level_tree",
    "three_level_tree",
    "tree_from_leaf_sizes",
    "dept_cluster",
    "iitk_hpc2010",
    "cori_like",
    "theta_like",
    "intrepid_like",
    "mira_like",
    "TOPOLOGY_BUILDERS",
]


def tree_from_leaf_sizes(
    leaf_sizes: Sequence[int],
    *,
    node_prefix: str = "n",
    switch_prefix: str = "s",
) -> TreeTopology:
    """Two-level tree with explicitly-sized leaf switches.

    ``leaf_sizes[k]`` nodes hang off leaf switch ``{switch_prefix}{k}``;
    one root switch connects all leaves. Node names are globally
    numbered ``n0, n1, ...`` in leaf order.
    """
    if not leaf_sizes:
        raise ValueError("leaf_sizes must be non-empty")
    specs: List[SwitchSpec] = []
    node_id = 0
    leaf_names: List[str] = []
    for k, size in enumerate(leaf_sizes):
        require_positive_int(int(size), f"leaf_sizes[{k}]")
        name = f"{switch_prefix}{k}"
        nodes = [f"{node_prefix}{node_id + i}" for i in range(int(size))]
        node_id += int(size)
        specs.append(SwitchSpec(name=name, nodes=nodes))
        leaf_names.append(name)
    specs.append(SwitchSpec(name=f"{switch_prefix}{len(leaf_sizes)}", switches=leaf_names))
    return TreeTopology.from_switches(specs)


def two_level_tree(n_leaves: int, nodes_per_leaf: int) -> TreeTopology:
    """Uniform two-level tree: ``n_leaves`` leaf switches under one root."""
    require_positive_int(n_leaves, "n_leaves")
    require_positive_int(nodes_per_leaf, "nodes_per_leaf")
    return tree_from_leaf_sizes([nodes_per_leaf] * n_leaves)


def three_level_tree(n_pods: int, leaves_per_pod: int, nodes_per_leaf: int) -> TreeTopology:
    """Uniform three-level tree: root -> pods -> leaves -> nodes."""
    require_positive_int(n_pods, "n_pods")
    require_positive_int(leaves_per_pod, "leaves_per_pod")
    require_positive_int(nodes_per_leaf, "nodes_per_leaf")
    specs: List[SwitchSpec] = []
    pod_names: List[str] = []
    node_id = 0
    leaf_id = 0
    for p in range(n_pods):
        leaf_names: List[str] = []
        for _ in range(leaves_per_pod):
            name = f"leaf{leaf_id}"
            leaf_id += 1
            nodes = [f"n{node_id + i}" for i in range(nodes_per_leaf)]
            node_id += nodes_per_leaf
            specs.append(SwitchSpec(name=name, nodes=nodes))
            leaf_names.append(name)
        pod = f"pod{p}"
        specs.append(SwitchSpec(name=pod, switches=leaf_names))
        pod_names.append(pod)
    specs.append(SwitchSpec(name="root", switches=pod_names))
    return TreeTopology.from_switches(specs)


def dept_cluster() -> TreeTopology:
    """The 50-node, two-switch departmental cluster of Figure 1."""
    return two_level_tree(n_leaves=2, nodes_per_leaf=25)


def iitk_hpc2010() -> TreeTopology:
    """IIT Kanpur HPC2010-shaped tree: 16 nodes per leaf switch, 768 nodes."""
    return three_level_tree(n_pods=4, leaves_per_pod=12, nodes_per_leaf=16)


def cori_like() -> TreeTopology:
    """LBNL Cori-shaped tree: 340 nodes per leaf switch, 10880 nodes."""
    return three_level_tree(n_pods=4, leaves_per_pod=8, nodes_per_leaf=340)


def theta_like() -> TreeTopology:
    """Theta-sized tree: exactly 4392 nodes on 16-node leaf switches.

    §6.1 explains that on Theta greedy and balanced "both allocated
    powers of 2 nodes per leaf switch due to fewer nodes/switch in the
    topology" — i.e. the paper's Theta tree uses the IIT Kanpur-style
    16-nodes-per-leaf shape, not the LBNL >=300 one. 274 full leaves
    plus one 8-node leaf give the machine's exact 4392 nodes.
    """
    return tree_from_leaf_sizes([16] * 274 + [8])


def intrepid_like() -> TreeTopology:
    """Intrepid-sized tree: 41040 nodes (paper log max request: 40960)."""
    return three_level_tree(n_pods=5, leaves_per_pod=24, nodes_per_leaf=342)


def mira_like() -> TreeTopology:
    """Mira-sized tree: 48960 nodes (paper: 48K nodes, max request 16384)."""
    return three_level_tree(n_pods=8, leaves_per_pod=17, nodes_per_leaf=360)


def fat_tree(k: int) -> TreeTopology:
    """Classic k-ary fat tree (Leiserson/Al-Fares), folded to a tree.

    k pods, each with k/2 edge (leaf) switches serving k/2 hosts:
    ``k^3 / 4`` hosts total. The aggregation layer folds into one pod
    switch and the core layer into one logical root — the same
    abstraction SLURM's ``topology.conf`` applies to multi-path
    fabrics, and the paper's Eq. 3 half-factor (or the generalized
    :class:`~repro.cost.contention.ContentionModel`) accounts for the
    folded links' multiplicity.

    ``k`` must be even and >= 2.
    """
    require_positive_int(k, "k")
    if k % 2 != 0:
        raise ValueError(f"fat-tree arity k must be even, got {k}")
    return three_level_tree(n_pods=k, leaves_per_pod=k // 2, nodes_per_leaf=k // 2)


#: Name -> builder, for CLI / experiment configuration.
TOPOLOGY_BUILDERS = {
    "dept": dept_cluster,
    "iitk": iitk_hpc2010,
    "cori": cori_like,
    "theta": theta_like,
    "intrepid": intrepid_like,
    "mira": mira_like,
    "fat-tree-8": lambda: fat_tree(8),
    "fat-tree-16": lambda: fat_tree(16),
}
