"""Random tree topologies for fuzzing and robustness studies.

The paper evaluates on three fixed machine shapes; these generators
build arbitrary (seeded) trees so property tests can exercise the
allocators, cost model, and scheduler on shapes nobody hand-picked —
including irregular leaf sizes and unbalanced depths.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .entities import SwitchSpec
from .tree import TreeTopology
from .._validation import require_positive_int

__all__ = ["random_tree", "random_leaf_sizes"]


def random_leaf_sizes(
    rng: np.random.Generator,
    *,
    n_leaves: Optional[int] = None,
    min_size: int = 1,
    max_size: int = 32,
    max_leaves: int = 12,
) -> List[int]:
    """Seeded irregular leaf sizes (uniform in [min_size, max_size])."""
    if n_leaves is None:
        n_leaves = int(rng.integers(1, max_leaves + 1))
    require_positive_int(n_leaves, "n_leaves")
    if not 1 <= min_size <= max_size:
        raise ValueError("need 1 <= min_size <= max_size")
    return [int(s) for s in rng.integers(min_size, max_size + 1, size=n_leaves)]


def random_tree(
    seed: int = 0,
    *,
    max_depth: int = 3,
    max_children: int = 4,
    max_leaf_size: int = 16,
) -> TreeTopology:
    """A random (possibly unbalanced) tree topology.

    Every inner switch gets 1..``max_children`` children; each child is
    a leaf with probability growing with depth, so trees terminate but
    vary in shape. Deterministic per seed.
    """
    require_positive_int(max_depth, "max_depth")
    require_positive_int(max_children, "max_children")
    require_positive_int(max_leaf_size, "max_leaf_size")
    rng = np.random.default_rng(seed)
    specs: List[SwitchSpec] = []
    node_counter = [0]
    switch_counter = [0]

    def make_leaf() -> str:
        name = f"leaf{switch_counter[0]}"
        switch_counter[0] += 1
        size = int(rng.integers(1, max_leaf_size + 1))
        nodes = [f"n{node_counter[0] + i}" for i in range(size)]
        node_counter[0] += size
        specs.append(SwitchSpec(name=name, nodes=nodes))
        return name

    def make_switch(depth: int) -> str:
        if depth >= max_depth:
            return make_leaf()
        children: List[str] = []
        for _ in range(int(rng.integers(1, max_children + 1))):
            # deeper levels are increasingly likely to terminate
            if rng.random() < 0.3 + 0.3 * depth:
                children.append(make_leaf())
            else:
                children.append(make_switch(depth + 1))
        if not children:  # unreachable, but stay safe
            children.append(make_leaf())
        name = f"sw{switch_counter[0]}"
        switch_counter[0] += 1
        specs.append(SwitchSpec(name=name, switches=children))
        return name

    make_switch(0)
    return TreeTopology.from_switches(specs)
