"""SLURM ``topology.conf`` parsing and writing.

The paper (§5.2) feeds its tree topologies to SLURM via ``topology.conf``
files of the form::

    SwitchName=s0 Nodes=n[0-3]
    SwitchName=s1 Nodes=n[4-7]
    SwitchName=s2 Switches=s[0-1]

This module round-trips that format: :func:`parse_topology_conf` reads
the text into a :class:`~repro.topology.tree.TreeTopology`, and
:func:`write_topology_conf` renders any topology back to the same syntax
(hostlists compressed).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from .entities import SwitchSpec
from .hostlist import compress_hostlist, expand_hostlist
from .tree import TopologyError, TreeTopology

__all__ = ["parse_topology_conf", "load_topology_conf", "write_topology_conf"]


def _parse_line(line: str, lineno: int) -> SwitchSpec:
    fields = {}
    for token in line.split():
        key, eq, value = token.partition("=")
        if not eq:
            raise TopologyError(f"line {lineno}: malformed token {token!r}")
        key = key.strip().lower()
        if key in fields:
            raise TopologyError(f"line {lineno}: repeated key {key!r}")
        fields[key] = value.strip()
    name = fields.pop("switchname", None)
    if name is None:
        raise TopologyError(f"line {lineno}: missing SwitchName")
    nodes = fields.pop("nodes", None)
    switches = fields.pop("switches", None)
    # SLURM allows extra keys (LinkSpeed etc.); ignore unknown ones.
    if nodes is not None and switches is not None:
        raise TopologyError(f"line {lineno}: switch {name!r} has both Nodes and Switches")
    if nodes is None and switches is None:
        raise TopologyError(f"line {lineno}: switch {name!r} has neither Nodes nor Switches")
    return SwitchSpec(
        name=name,
        nodes=expand_hostlist(nodes) if nodes is not None else [],
        switches=expand_hostlist(switches) if switches is not None else [],
    )


def parse_topology_conf(text: str) -> TreeTopology:
    """Parse ``topology.conf`` text into a validated :class:`TreeTopology`.

    Blank lines and ``#`` comments (full-line or trailing) are ignored,
    matching SLURM's parser.
    """
    specs: List[SwitchSpec] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        specs.append(_parse_line(line, lineno))
    return TreeTopology.from_switches(specs)


def load_topology_conf(path: Union[str, Path]) -> TreeTopology:
    """Read and parse a ``topology.conf`` file from disk."""
    return parse_topology_conf(Path(path).read_text())


def write_topology_conf(topology: TreeTopology) -> str:
    """Render a topology as ``topology.conf`` text.

    Leaf switches are listed first (with compressed node hostlists), then
    inner switches bottom-up, so the output parses with any conf reader
    that expects children before parents. The result round-trips through
    :func:`parse_topology_conf` to a structurally equal topology; note
    that hostlist compression sorts sibling names, so when sibling names
    are not already in numeric order the reparsed topology may assign
    different *leaf indices* (node names and all distances are
    preserved).
    """
    lines: List[str] = []
    for level in range(1, topology.height + 1):
        for info in topology.switches_at_level(level):
            if info.is_leaf:
                leaf_index = None
                # Map global switch index back to a leaf index via name.
                leaf_index = topology.leaf_names.index(info.name)
                names = [topology.node_name(i) for i in topology.leaf_nodes(leaf_index)]
                lines.append(f"SwitchName={info.name} Nodes={compress_hostlist(names)}")
            else:
                children = [
                    s.name for s in topology.switches if s.parent == info.index
                ]
                lines.append(f"SwitchName={info.name} Switches={compress_hostlist(children)}")
    return "\n".join(lines) + "\n"
