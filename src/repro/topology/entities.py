"""Topology entities: compute nodes and switches.

These are lightweight descriptions used while *building* a topology.
The runtime representation lives in :class:`repro.topology.tree.TreeTopology`,
which converts everything to flat NumPy arrays for speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["NodeSpec", "SwitchSpec"]


@dataclass(frozen=True)
class NodeSpec:
    """A compute node attached to exactly one leaf switch.

    Attributes
    ----------
    name:
        Unique host name (e.g. ``"n17"``).
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node name must be non-empty")


@dataclass
class SwitchSpec:
    """A switch in a tree/fat-tree topology.

    A switch is either a *leaf* switch (``nodes`` non-empty, ``switches``
    empty) or an *inner* switch (``switches`` non-empty, ``nodes`` empty);
    mixing both on one switch is rejected by
    :meth:`repro.topology.tree.TreeTopology.from_switches`.

    Attributes
    ----------
    name:
        Unique switch name (e.g. ``"s2"``).
    nodes:
        Host names directly attached (leaf switches only).
    switches:
        Child switch names (inner switches only).
    """

    name: str
    nodes: List[str] = field(default_factory=list)
    switches: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("switch name must be non-empty")

    @property
    def is_leaf(self) -> bool:
        """True when this switch connects compute nodes directly."""
        return bool(self.nodes)

    def validate(self) -> Optional[str]:
        """Return an error string if this spec is malformed, else None."""
        if self.nodes and self.switches:
            return f"switch {self.name!r} lists both Nodes and Switches"
        if not self.nodes and not self.switches:
            return f"switch {self.name!r} lists neither Nodes nor Switches"
        if len(set(self.nodes)) != len(self.nodes):
            return f"switch {self.name!r} repeats a node name"
        if len(set(self.switches)) != len(self.switches):
            return f"switch {self.name!r} repeats a child switch name"
        return None
