"""Process-wide switch between vectorized and legacy (loop) hot paths.

PR 4 vectorized the allocator inner loops, the switch search, the
counterfactual overlay capture, and ``ClusterState.jobs_on``. The
original Python-loop implementations are kept behind this flag for two
reasons:

* the equivalence property tests run every workload through both paths
  and require bit-identical results (``tests/allocation`` and
  ``tests/scheduler/test_incremental_equivalence.py``);
* ``benchmarks/run_bench.py`` measures the *pre-change* engine with the
  same script that measures the optimized one, so the before/after
  numbers in ``BENCH_PR4.json`` are directly comparable.

The flag is a plain module global — flipping it mid-simulation is not
supported (and never needed: both paths produce identical node sets, so
only timings would blur). It deliberately lives in its own leaf module
because both :mod:`repro.cluster.state` and :mod:`repro.allocation.base`
read it and neither may import the other.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = ["is_legacy", "legacy_mode", "set_legacy"]

_LEGACY = False


def is_legacy() -> bool:
    """True when the pre-PR-4 Python-loop implementations are active."""
    return _LEGACY


def set_legacy(enabled: bool) -> None:
    global _LEGACY
    _LEGACY = bool(enabled)


@contextmanager
def legacy_mode(enabled: bool = True) -> Iterator[None]:
    """Temporarily select the legacy implementations (tests/benchmarks)."""
    global _LEGACY
    previous = _LEGACY
    _LEGACY = bool(enabled)
    try:
        yield
    finally:
        _LEGACY = previous
