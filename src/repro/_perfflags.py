"""Process-wide switch between vectorized and legacy (loop) hot paths.

PR 4 vectorized the allocator inner loops, the switch search, the
counterfactual overlay capture, and ``ClusterState.jobs_on``. The
original Python-loop implementations are kept behind this flag for two
reasons:

* the equivalence property tests run every workload through both paths
  and require bit-identical results (``tests/allocation`` and
  ``tests/scheduler/test_incremental_equivalence.py``);
* ``benchmarks/run_bench.py`` measures the *pre-change* engine with the
  same script that measures the optimized one, so the before/after
  numbers in ``BENCH_PR4.json`` are directly comparable.

The flag is a plain module global — flipping it mid-simulation is not
supported (and never needed: both paths produce identical node sets, so
only timings would blur). It deliberately lives in its own leaf module
because both :mod:`repro.cluster.state` and :mod:`repro.allocation.base`
read it and neither may import the other.

PR 9 adds a second, independent switch for the optional *compiled* Eq. 6
leaf-pair kernel (:mod:`repro.cost.kernels`). It is tri-state: ``None``
(the default) means "auto" — the kernel engages exactly when numba is
importable; ``True``/``False`` force it on or off. The preference lives
here so it composes with ``legacy_mode`` (legacy always wins: the
compiled kernel only accelerates the vectorized fast path, which legacy
mode disables wholesale). Resolution of "is numba actually available"
stays in :mod:`repro.cost.kernels` so this module keeps zero imports.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "compiled_mode",
    "compiled_pref",
    "is_legacy",
    "legacy_mode",
    "set_compiled",
    "set_legacy",
]

_LEGACY = False

#: tri-state compiled-kernel preference: None = auto (on iff numba
#: importable), True/False = forced. Read via ``compiled_pref()``.
_COMPILED: Optional[bool] = None


def is_legacy() -> bool:
    """True when the pre-PR-4 Python-loop implementations are active."""
    return _LEGACY


def set_legacy(enabled: bool) -> None:
    global _LEGACY
    _LEGACY = bool(enabled)


@contextmanager
def legacy_mode(enabled: bool = True) -> Iterator[None]:
    """Temporarily select the legacy implementations (tests/benchmarks)."""
    global _LEGACY
    previous = _LEGACY
    _LEGACY = bool(enabled)
    try:
        yield
    finally:
        _LEGACY = previous


def compiled_pref() -> Optional[bool]:
    """The compiled-kernel preference: True/False forced, None = auto."""
    return _COMPILED


def set_compiled(enabled: Optional[bool]) -> None:
    """Force the compiled Eq. 6 kernel on/off, or ``None`` for auto."""
    global _COMPILED
    _COMPILED = enabled if enabled is None else bool(enabled)


@contextmanager
def compiled_mode(enabled: Optional[bool] = True) -> Iterator[None]:
    """Temporarily force the compiled-kernel preference (tests/benchmarks).

    ``True`` engages :mod:`repro.cost.kernels` even without numba (its
    pure-numpy mirror runs instead — same arithmetic, so still
    bit-identical); ``False`` pins the inline numpy path; ``None``
    restores auto-detection.
    """
    global _COMPILED
    previous = _COMPILED
    _COMPILED = enabled if enabled is None else bool(enabled)
    try:
        yield
    finally:
        _COMPILED = previous
