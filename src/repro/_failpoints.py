"""Process-local failpoints for deterministic I/O fault injection.

A failpoint is a named site in harness code (``atomic_write``, journal
appends) where :mod:`repro.chaos` can arm a fault — "the next write
raises ENOSPC", "every write sleeps 50 ms" — without the production
code knowing anything about chaos testing. The production hook is one
call, :func:`trigger`, which is a no-op unless that site has an armed
action; the chaos side arms actions through the :func:`armed` context
manager so they can never leak past a test or chaos phase.

Kept stdlib-only and at the package top level on purpose: it is
imported by the lowest layers (``repro.runs.atomic``), so it must not
import anything that could cycle back.

Actions
-------
``raise-enospc``
    Raise ``OSError(errno.ENOSPC)`` — a full disk — at the site.
``sleep``
    Block for ``arg`` seconds — slow I/O — then continue normally.

Each armed action has a bounded fire ``count``; once spent it
disarms itself, so "fail once then succeed" (the retry-recovery
scenario) is the natural default.
"""

from __future__ import annotations

import errno
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = ["arm", "disarm", "disarm_all", "trigger", "armed", "FailpointError"]


class FailpointError(ValueError):
    """An unknown failpoint action name was armed."""


_ACTIONS = ("raise-enospc", "sleep")

_lock = threading.Lock()
_armed: Dict[str, List[Dict[str, object]]] = {}


def arm(site: str, action: str, *, count: int = 1, arg: float = 0.0) -> None:
    """Arm ``action`` at ``site`` for the next ``count`` triggers."""
    if action not in _ACTIONS:
        raise FailpointError(
            f"unknown failpoint action {action!r} (know {', '.join(_ACTIONS)})"
        )
    if count < 1:
        raise ValueError(f"failpoint count must be >= 1, got {count}")
    with _lock:
        _armed.setdefault(site, []).append(
            {"action": action, "count": count, "arg": float(arg)}
        )


def disarm(site: str) -> None:
    """Remove every armed action at ``site``."""
    with _lock:
        _armed.pop(site, None)


def disarm_all() -> None:
    """Remove every armed action at every site."""
    with _lock:
        _armed.clear()


def trigger(site: str, *, detail: str = "") -> None:
    """Production-side hook: fire any armed action at ``site``.

    No-op (one dict lookup) when nothing is armed. A firing action
    decrements its count and disarms itself at zero.
    """
    with _lock:
        actions = _armed.get(site)
        if not actions:
            return
        entry = actions[0]
        entry["count"] = int(entry["count"]) - 1
        if int(entry["count"]) <= 0:
            actions.pop(0)
            if not actions:
                _armed.pop(site, None)
        action = str(entry["action"])
        arg = float(entry["arg"])
    if action == "raise-enospc":
        raise OSError(
            errno.ENOSPC,
            f"injected ENOSPC at failpoint {site!r}"
            + (f" ({detail})" if detail else ""),
        )
    if action == "sleep":
        time.sleep(arg)


@contextmanager
def armed(
    site: str, action: str, *, count: int = 1, arg: float = 0.0
) -> Iterator[None]:
    """Arm an action for the duration of a ``with`` block, then disarm.

    Disarms *all* actions at the site on exit so a partially-fired
    arming cannot leak into later code.
    """
    arm(site, action, count=count, arg=arg)
    try:
        yield
    finally:
        disarm(site)


def snapshot() -> Dict[str, List[Dict[str, object]]]:
    """Copy of the currently armed actions (for tests/diagnostics)."""
    with _lock:
        return {site: [dict(e) for e in entries] for site, entries in _armed.items()}
