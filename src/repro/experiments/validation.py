"""Cross-model validation: Eq. 6 estimates vs flow-level measurements.

The paper justifies its cost model with a single correlation number
(§5.3: r = 0.83 on the Figure 1 cluster). With both models implemented
here, we can test the claim far more broadly: generate many random
placements of a collective job on a partially loaded cluster, price
each with the Eq. 2-6 effective-hops model, *and* measure its actual
completion time on the max-min-fair flow simulator with the background
jobs really sending traffic. A high rank correlation means the
scheduler's cheap estimator orders placements the same way a real
network would — which is all an allocator needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..analysis.stats import pearson_correlation
from ..cluster.state import ClusterState
from ..cluster.job import JobKind
from ..cost.model import CostModel
from ..netsim.network import FlowNetwork
from ..netsim.simulator import CollectiveWorkload, FlowSimulator
from ..patterns.base import CommunicationPattern
from ..patterns.registry import get_pattern
from ..topology.builders import tree_from_leaf_sizes
from .report import render_kv

__all__ = ["ValidationResult", "run_cost_model_validation"]


def _spearman(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation via Pearson on ranks (average-tie-free
    inputs here: costs/durations are continuous)."""
    rx = np.argsort(np.argsort(x)).astype(np.float64)
    ry = np.argsort(np.argsort(y)).astype(np.float64)
    return pearson_correlation(rx, ry)


@dataclass
class ValidationResult:
    """Correlations between estimated cost and simulated duration."""

    pattern: str
    n_placements: int
    costs: np.ndarray
    durations: np.ndarray
    pearson: float
    spearman: float

    def render(self) -> str:
        """Key-value report of the Eq. 6 vs network-simulation correlation."""
        return render_kv(
            [
                ("pattern", self.pattern),
                ("placements evaluated", self.n_placements),
                ("Pearson r (cost vs simulated time)", self.pearson),
                ("Spearman rank correlation", self.spearman),
                ("paper's reference correlation (§5.3)", 0.83),
            ],
            title="Cost-model validation: Eq. 6 vs flow-level simulation",
        )


def _structured_placements(
    rng: np.random.Generator,
    free_busy: np.ndarray,
    free_quiet: np.ndarray,
    job_nodes: int,
    n_placements: int,
) -> List[Tuple[int, ...]]:
    """Placements sweeping the overlap with the contended leaves.

    Uniform random node picks barely vary in either model (everything
    averages out); an allocator's real choice is *how much* of a job to
    co-locate with existing communication-intensive load. Each placement
    draws a fraction f in [0, 1] of its nodes from the busy leaves and
    the rest from the quiet ones, giving a genuine contention gradient.
    """
    placements: List[Tuple[int, ...]] = []
    for k in range(n_placements):
        f = k / max(n_placements - 1, 1)
        n_busy = min(int(round(f * job_nodes)), free_busy.size)
        n_quiet = job_nodes - n_busy
        if n_quiet > free_quiet.size:  # pragma: no cover - sizes chosen to fit
            n_quiet = free_quiet.size
            n_busy = job_nodes - n_quiet
        picked = np.concatenate(
            [
                rng.choice(free_busy, size=n_busy, replace=False),
                rng.choice(free_quiet, size=n_quiet, replace=False),
            ]
        )
        placements.append(tuple(sorted(int(n) for n in picked)))
    return placements


def run_cost_model_validation(
    *,
    pattern: str = "rhvd",
    n_placements: int = 40,
    job_nodes: int = 16,
    seed: int = 0,
    msize_bytes: float = 1e6,
) -> ValidationResult:
    """Correlate Eq. 6 placement costs with simulated collective times.

    Setup: a 4x16-node two-level tree with one 16-node background
    communication-intensive job continuously running a collective on
    leaves 0/1. Candidate placements sweep their overlap with those
    busy leaves (see :func:`_structured_placements`); each is
    (a) priced with the Eq. 2-6 model against the background occupancy,
    and (b) executed on the flow simulator concurrently with the
    background job, recording the candidate's iteration time.
    """
    if n_placements < 3:
        raise ValueError("need at least 3 placements for a correlation")
    topo = tree_from_leaf_sizes([16, 16, 16, 16])
    pat: CommunicationPattern = get_pattern(pattern)
    rng = np.random.default_rng(seed)

    # background job: half on leaf 0, half on leaf 1
    background = tuple(range(0, 8)) + tuple(range(16, 24))
    state = ClusterState(topo)
    state.allocate(1, background, JobKind.COMM)
    free = np.flatnonzero(state.node_state == 0)
    busy_leaves = topo.leaf_of_node[free] < 2
    placements = _structured_placements(
        rng, free[busy_leaves], free[~busy_leaves], job_nodes, n_placements
    )

    model = CostModel()
    net = FlowNetwork(topo, base_bandwidth=125e6)
    sim = FlowSimulator(net)

    costs: List[float] = []
    durations: List[float] = []
    for nodes in placements:
        trial = state.copy()
        trial.allocate(2, nodes, JobKind.COMM)
        costs.append(model.allocation_cost(trial, np.asarray(nodes), pat))

        workloads = [
            CollectiveWorkload(1, background, pat, msize_bytes=msize_bytes,
                               iterations=1000),
            CollectiveWorkload(2, nodes, pat, msize_bytes=msize_bytes,
                               iterations=5),
        ]
        records = sim.run(workloads, until=60.0, max_events=2_000_000)
        mine = [r.duration for r in records if r.job_id == 2]
        if not mine:
            raise RuntimeError("candidate job failed to complete an iteration")
        durations.append(float(np.mean(mine)))

    costs_arr = np.array(costs)
    durations_arr = np.array(durations)
    return ValidationResult(
        pattern=pattern,
        n_placements=n_placements,
        costs=costs_arr,
        durations=durations_arr,
        pearson=pearson_correlation(costs_arr, durations_arr),
        spearman=_spearman(costs_arr, durations_arr),
    )
