"""Continuous and individual experiment runs (paper §5.4).

*Continuous runs* replay a full 1000-job log through the event-driven
scheduler once per allocator. Every allocator sees identical jobs
(same trace seed, same comm/compute labels) but evolves its own cluster
state, exactly as in the paper.

*Individual runs* give every allocator the *same* starting state: the
cluster is partially occupied by warm-up jobs placed with the default
algorithm, then each sampled job is priced independently against that
frozen snapshot under every allocator. This isolates the allocation
quality from queueing dynamics — the paper's device for a fair
job-by-job comparison (§5.4, Table 4, Figure 7 right panel).

Both harnesses accept ``workers``: with ``workers > 1`` the independent
(allocator, …) tasks fan out over a ``ProcessPoolExecutor``. Task specs
are plain picklable values and results are reassembled in the serial
order, so parallel output is bit-identical to the serial path.

Crash resilience (``docs/resilience.md``): ``max_retries``,
``on_task_error``, ``task_timeout``, and ``journal`` route the fan-out
through :func:`repro.runs.run_tasks` — worker crashes rebuild the pool
and resubmit only unfinished cells, failed cells retry with exponential
backoff, and every task spec/attempt/result digest is journaled so
``repro-sched verify-run`` can replay and diff the run later. Because
each cell is a pure function of its spec, the recovered output stays
bit-identical to a serial run. With none of those arguments given, the
pre-existing fast paths run unchanged.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..allocation.base import Allocator
from ..allocation.default_slurm import DefaultSlurmAllocator
from ..allocation.registry import PAPER_ALLOCATORS, get_allocator
from ..cluster.job import Job
from ..cluster.state import ClusterState
from ..cost.contention import ContentionModel
from ..cost.model import CostModel
from ..faults.events import FaultEvent
from ..obs import runtime as obs_runtime
from ..obs.progress import ProgressReporter
from ..runs import (
    PartialResults,
    RetryPolicy,
    RunJournal,
    TaskSpec,
    digest_obj,
    result_digest,
    run_tasks,
)
from ..runs.retry import ON_ERROR_RETRY
from ..scheduler.engine import EngineConfig, SchedulerEngine
from ..scheduler.metrics import SimulationResult
from ..scheduler.serialize import fault_from_dict, fault_to_dict, job_to_dict
from ..topology.shared import shared_topology
from ..topology.tree import TreeTopology
from ..workloads.classify import CommMix, assign_kinds, single_pattern_mix
from ..workloads.logs import LOG_SPECS, generate_log

__all__ = [
    "ExperimentConfig",
    "config_to_dict",
    "config_from_dict",
    "continuous_runs",
    "IndividualOutcome",
    "IndividualRunResult",
    "individual_runs",
    "evaluate_single_job",
    "outcomes_digest",
    "warm_state",
    "prepare_jobs",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment's workload and scheduler settings.

    Defaults follow the paper's headline configuration: 1000 jobs, 90%
    communication-intensive, RHVD at a 0.7 communication fraction,
    the four paper allocators, EASY backfill, no faults.

    ``faults`` injects the same failure schedule into every allocator's
    continuous run (individual runs price frozen snapshots and ignore
    it); ``interrupt_policy`` / ``checkpoint_interval`` configure what
    happens to interrupted jobs (see :mod:`repro.faults.policy`).
    """

    log: str = "theta"
    n_jobs: int = 1000
    percent_comm: float = 90.0
    mix: CommMix = field(default_factory=lambda: single_pattern_mix("rhvd"))
    allocators: Tuple[str, ...] = PAPER_ALLOCATORS
    seed: int = 0
    policy: str = "backfill"
    cost_model: CostModel = field(default_factory=CostModel)
    faults: Tuple[FaultEvent, ...] = ()
    interrupt_policy: str = "requeue"
    checkpoint_interval: float = 3600.0

    def topology(self) -> TreeTopology:
        """The configured log's machine topology.

        In a pool worker whose initializer attached a shared-memory
        topology under this log's name
        (:func:`repro.topology.install_topology_handles`), that
        zero-copy instance is returned; otherwise the topology is built
        fresh from :data:`~repro.workloads.logs.LOG_SPECS`. The two are
        equal, so results never depend on which path served the call.
        """
        shared = shared_topology(self.log)
        if shared is not None:
            return shared
        return LOG_SPECS[self.log].topology()

    def engine_config(self) -> EngineConfig:
        """Translate the experiment knobs into an :class:`EngineConfig`."""
        return EngineConfig(
            policy=self.policy,
            cost_model=self.cost_model,
            interrupt_policy=self.interrupt_policy,
            checkpoint_interval=self.checkpoint_interval,
        )

    def with_(self, **kwargs) -> "ExperimentConfig":
        """Functional update (thin wrapper over dataclasses.replace)."""
        return replace(self, **kwargs)


def config_to_dict(cfg: ExperimentConfig) -> Dict[str, Any]:
    """Plain-JSON representation of a config (for run journals)."""
    return {
        "log": cfg.log,
        "n_jobs": cfg.n_jobs,
        "percent_comm": cfg.percent_comm,
        "mix": [[name, fraction] for name, fraction in cfg.mix],
        "allocators": list(cfg.allocators),
        "seed": cfg.seed,
        "policy": cfg.policy,
        "cost_model": {
            "weight_by_msize": cfg.cost_model.weight_by_msize,
            "contention": {
                "uplink_discount": cfg.cost_model.contention.uplink_discount,
                "per_level": cfg.cost_model.contention.per_level,
            },
        },
        "faults": [fault_to_dict(f) for f in cfg.faults],
        "interrupt_policy": cfg.interrupt_policy,
        "checkpoint_interval": cfg.checkpoint_interval,
    }


def config_from_dict(data: Dict[str, Any]) -> ExperimentConfig:
    """Inverse of :func:`config_to_dict` (``verify-run`` replays)."""
    cm = data["cost_model"]
    return ExperimentConfig(
        log=str(data["log"]),
        n_jobs=int(data["n_jobs"]),
        percent_comm=float(data["percent_comm"]),
        mix=tuple((str(name), float(fraction)) for name, fraction in data["mix"]),
        allocators=tuple(str(a) for a in data["allocators"]),
        seed=int(data["seed"]),
        policy=str(data["policy"]),
        cost_model=CostModel(
            weight_by_msize=bool(cm["weight_by_msize"]),
            contention=ContentionModel(
                uplink_discount=float(cm["contention"]["uplink_discount"]),
                per_level=bool(cm["contention"]["per_level"]),
            ),
        ),
        faults=tuple(fault_from_dict(f) for f in data["faults"]),
        interrupt_policy=str(data["interrupt_policy"]),
        checkpoint_interval=float(data["checkpoint_interval"]),
    )


def _journal_context(
    cfg: ExperimentConfig,
    explicit_jobs: Optional[Sequence[Job]],
    **extra: Any,
) -> Dict[str, Any]:
    """Everything a journal needs to replay its tasks from scratch.

    Explicitly supplied job lists are embedded; ``jobs: null`` means
    :func:`prepare_jobs` regenerates them from the config.
    """
    context: Dict[str, Any] = {
        "config": config_to_dict(cfg),
        "jobs": (
            [job_to_dict(j) for j in explicit_jobs]
            if explicit_jobs is not None
            else None
        ),
    }
    context.update(extra)
    return context


def _resilient(
    max_retries: int,
    on_task_error: str,
    journal: Optional[object],
    task_timeout: Optional[float],
) -> bool:
    """Whether any crash-resilience feature was requested."""
    return (
        max_retries > 0
        or on_task_error != ON_ERROR_RETRY
        or journal is not None
        or task_timeout is not None
    )


def prepare_jobs(cfg: ExperimentConfig) -> List[Job]:
    """Generate the trace and apply comm/compute labels, reproducibly.

    The trace seed and the labelling seed both derive from ``cfg.seed``
    so two configs differing only in allocator lists see identical jobs.
    """
    spec = LOG_SPECS[cfg.log]
    trace = generate_log(spec, cfg.n_jobs, seed=cfg.seed + 1)
    return assign_kinds(
        trace, percent_comm=cfg.percent_comm, mix=cfg.mix, seed=cfg.seed + 2
    )


def _continuous_worker(
    cfg: ExperimentConfig, name: str, jobs: List[Job]
) -> SimulationResult:
    """One allocator's continuous run (module-level so it pickles)."""
    engine = SchedulerEngine(cfg.topology(), name, cfg.engine_config())
    return engine.run(jobs, faults=cfg.faults)


def continuous_runs(
    cfg: ExperimentConfig,
    jobs: Optional[Sequence[Job]] = None,
    *,
    workers: Optional[int] = None,
    max_retries: int = 0,
    on_task_error: str = ON_ERROR_RETRY,
    journal: Optional[Union[str, "os.PathLike"]] = None,
    task_timeout: Optional[float] = None,
    progress: Optional[ProgressReporter] = None,
) -> Dict[str, SimulationResult]:
    """Replay the log once per allocator; returns results keyed by name.

    ``workers > 1`` runs the allocators in parallel processes. Each
    worker evolves its own engine from the same job list, so results are
    bit-identical to the serial path and returned in ``cfg.allocators``
    order either way.

    ``max_retries`` / ``on_task_error`` / ``task_timeout`` / ``journal``
    route the fan-out through the resilient executor (crashed workers
    rebuild the pool, failed cells retry with backoff, attempts and
    digests are journaled). With ``on_task_error="skip"`` the return
    value is a :class:`~repro.runs.PartialResults` whose ``missing``
    names the allocators that exhausted their attempts.

    ``progress`` (or an ambient reporter installed via
    :func:`repro.obs.progressing`) receives one update per finished
    allocator cell; purely diagnostic.
    """
    explicit_jobs = None if jobs is None else list(jobs)
    job_list = prepare_jobs(cfg) if explicit_jobs is None else explicit_jobs
    if progress is None:
        progress = obs_runtime.progress()
    if _resilient(max_retries, on_task_error, journal, task_timeout):
        tasks = [
            TaskSpec(
                key=name,
                fn=_continuous_worker,
                args=(cfg, name, job_list),
                spec={"allocator": name},
            )
            for name in cfg.allocators
        ]
        jrn = (
            RunJournal(
                journal,
                run_type="continuous_runs",
                context=_journal_context(cfg, explicit_jobs),
            )
            if journal is not None
            else None
        )
        try:
            batch = run_tasks(
                tasks,
                workers=workers,
                policy=RetryPolicy(max_retries=max_retries, timeout=task_timeout),
                on_task_error=on_task_error,
                journal=jrn,
                digest=result_digest,
                progress=progress,
            )
        finally:
            if jrn is not None:
                jrn.close()
        ordered = {
            name: batch.results[name]
            for name in cfg.allocators
            if name in batch.results
        }
        if batch.complete:
            return ordered
        return PartialResults(ordered, batch.missing, batch.quarantined)
    if workers is not None and workers > 1 and len(cfg.allocators) > 1:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(cfg.allocators))
        ) as pool:
            futures = [
                pool.submit(_continuous_worker, cfg, name, job_list)
                for name in cfg.allocators
            ]
            gathered: Dict[str, SimulationResult] = {}
            for done, (name, future) in enumerate(
                zip(cfg.allocators, futures), start=1
            ):
                gathered[name] = future.result()
                if progress is not None:
                    progress.task_update(done, len(cfg.allocators), name)
            return gathered
    topology = cfg.topology()
    results: Dict[str, SimulationResult] = {}
    for done, name in enumerate(cfg.allocators, start=1):
        engine = SchedulerEngine(topology, name, cfg.engine_config())
        results[name] = engine.run(job_list, faults=cfg.faults)
        if progress is not None:
            progress.task_update(done, len(cfg.allocators), name)
    return results


# ----------------------------------------------------------------------
# individual runs
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class IndividualOutcome:
    """One (job, allocator) evaluation against the shared snapshot."""

    job_id: int
    allocator: str
    execution_time: float
    cost_jobaware: float
    cost_default: float


@dataclass
class IndividualRunResult:
    """All individual-run outcomes plus convenience aggregation.

    ``missing`` is only populated by resilient runs under
    ``on_task_error="skip"``: it maps each allocator whose evaluations
    exhausted their attempts to the error that ended them; its outcomes
    are absent from ``outcomes``. ``quarantined`` is its
    ``on_task_error="quarantine"`` counterpart.
    """

    outcomes: List[IndividualOutcome]
    sampled_job_ids: List[int]
    missing: Dict[str, str] = field(default_factory=dict)
    quarantined: Dict[str, str] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """True when no sampled job is missing a result."""
        return not self.missing and not self.quarantined

    def execution_times(self, allocator: str) -> np.ndarray:
        """Per-sampled-job execution times under ``allocator``, in job order."""
        by_job = {
            o.job_id: o.execution_time
            for o in self.outcomes
            if o.allocator == allocator
        }
        return np.array([by_job[j] for j in self.sampled_job_ids], dtype=np.float64)

    def mean_improvement_pct(self, allocator: str, baseline: str = "default") -> float:
        """Paper Table 4: mean per-job % execution-time improvement."""
        base = self.execution_times(baseline)
        cand = self.execution_times(allocator)
        with np.errstate(divide="ignore", invalid="ignore"):
            pct = np.where(base > 0, 100.0 * (base - cand) / base, 0.0)
        return float(pct.mean())


def evaluate_single_job(
    state: ClusterState,
    job: Job,
    allocator: Union[str, Allocator],
    cost_model: Optional[CostModel] = None,
) -> IndividualOutcome:
    """Price one job against a frozen cluster state under one allocator.

    Prices the allocation on a cheap
    :meth:`~repro.cluster.state.ClusterState.comm_overlay` view with
    Eq. 6 (and the counterfactual default allocation from the same
    state), and returns the Eq.-7-adjusted execution time. ``state`` is
    not mutated; because it stays frozen, its version-tagged cost cache
    makes the shared default counterfactual of a job a one-time cost
    across all allocators.
    """
    allocator = get_allocator(allocator) if isinstance(allocator, str) else allocator
    cost_model = cost_model or CostModel()
    default_alloc = DefaultSlurmAllocator()

    nodes = allocator.allocate(state, job)
    view = state.comm_overlay(nodes, job.kind)  # validates the node set

    if not job.is_comm_intensive:
        return IndividualOutcome(
            job_id=job.job_id,
            allocator=allocator.name,
            execution_time=job.runtime,
            cost_jobaware=0.0,
            cost_default=0.0,
        )

    aware = {
        comp.pattern: cost_model.allocation_cost(view, nodes, comp.pattern)
        for comp in job.comm
    }
    if allocator.name == default_alloc.name:
        default = dict(aware)
    else:
        default_nodes = default_alloc.allocate(state, job)
        default_view = state.comm_overlay(default_nodes, job.kind)
        default = {
            comp.pattern: cost_model.allocation_cost(
                default_view, default_nodes, comp.pattern
            )
            for comp in job.comm
        }
    runtime = cost_model.adjusted_runtime(job, aware, default)
    return IndividualOutcome(
        job_id=job.job_id,
        allocator=allocator.name,
        execution_time=runtime,
        cost_jobaware=float(sum(aware.values())),
        cost_default=float(sum(default.values())),
    )


def warm_state(
    topology: TreeTopology,
    jobs: Sequence[Job],
    *,
    target_occupancy: float = 0.5,
    allocator: Optional[Allocator] = None,
) -> Tuple[ClusterState, List[int]]:
    """Partially occupy a fresh cluster with leading jobs (§5.4).

    Walks the job list in submission order, placing each job with the
    default allocator until the target occupancy is reached. Returns the
    state and the ids of the placed (warm-up) jobs.
    """
    if not 0.0 <= target_occupancy < 1.0:
        raise ValueError(f"target_occupancy must be in [0, 1), got {target_occupancy}")
    allocator = allocator or DefaultSlurmAllocator()
    state = ClusterState(topology)
    placed: List[int] = []
    target_busy = int(topology.n_nodes * target_occupancy)
    for job in jobs:
        if state.total_busy >= target_busy:
            break
        if job.nodes > state.total_free:
            continue
        nodes = allocator.allocate(state, job)
        state.allocate(job.job_id, nodes, job.kind)
        placed.append(job.job_id)
    return state, placed


def _individual_worker(
    state: ClusterState,
    sampled: List[Job],
    name: str,
    cost_model: Optional[CostModel],
) -> List[IndividualOutcome]:
    """All sampled jobs under one allocator (module-level so it pickles)."""
    return [evaluate_single_job(state, job, name, cost_model) for job in sampled]


def outcomes_digest(outcomes: Sequence[IndividualOutcome]) -> str:
    """Canonical digest of one allocator's individual-run outcomes."""
    return digest_obj(
        [
            [o.job_id, o.allocator, o.execution_time, o.cost_jobaware, o.cost_default]
            for o in outcomes
        ]
    )


def _individual_setup(
    cfg: ExperimentConfig,
    *,
    n_samples: int,
    target_occupancy: float,
    jobs: Sequence[Job],
) -> Tuple[ClusterState, List[Job]]:
    """Warm the cluster and draw the sampled jobs (shared with replay)."""
    topology = cfg.topology()
    state, warm_ids = warm_state(topology, jobs, target_occupancy=target_occupancy)
    warm = set(warm_ids)
    candidates = [
        j for j in jobs if j.job_id not in warm and 1 < j.nodes <= state.total_free
    ]
    if not candidates:
        raise ValueError("no candidate jobs fit the warmed cluster; lower occupancy")
    rng = np.random.default_rng(cfg.seed + 3)
    take = min(n_samples, len(candidates))
    idx = rng.choice(len(candidates), size=take, replace=False)
    sampled = [candidates[i] for i in sorted(idx)]
    return state, sampled


def individual_runs(
    cfg: ExperimentConfig,
    *,
    n_samples: int = 200,
    target_occupancy: float = 0.5,
    jobs: Optional[Sequence[Job]] = None,
    workers: Optional[int] = None,
    max_retries: int = 0,
    on_task_error: str = ON_ERROR_RETRY,
    journal: Optional[Union[str, "os.PathLike"]] = None,
    task_timeout: Optional[float] = None,
    progress: Optional[ProgressReporter] = None,
) -> IndividualRunResult:
    """§5.4 individual runs: one shared snapshot, one job at a time.

    ``n_samples`` jobs are drawn (seeded) from the non-warm-up portion
    of the log; every allocator in ``cfg.allocators`` prices each of
    them against the same warm snapshot. ``workers > 1`` fans the
    allocators out over processes; every evaluation is a pure function
    of the frozen snapshot, and outcomes are reassembled in the serial
    (job-major, allocator-minor) order, so results are bit-identical.

    The resilience arguments behave as in :func:`continuous_runs`; under
    ``on_task_error="skip"`` the result's ``missing`` names allocators
    whose column could not be computed.
    """
    explicit_jobs = None if jobs is None else list(jobs)
    job_list = prepare_jobs(cfg) if explicit_jobs is None else explicit_jobs
    state, sampled = _individual_setup(
        cfg, n_samples=n_samples, target_occupancy=target_occupancy, jobs=job_list
    )
    if progress is None:
        progress = obs_runtime.progress()

    outcomes: List[IndividualOutcome] = []
    if _resilient(max_retries, on_task_error, journal, task_timeout):
        tasks = [
            TaskSpec(
                key=name,
                fn=_individual_worker,
                args=(state, sampled, name, cfg.cost_model),
                spec={"allocator": name},
            )
            for name in cfg.allocators
        ]
        jrn = (
            RunJournal(
                journal,
                run_type="individual_runs",
                context=_journal_context(
                    cfg,
                    explicit_jobs,
                    n_samples=n_samples,
                    target_occupancy=target_occupancy,
                ),
            )
            if journal is not None
            else None
        )
        try:
            batch = run_tasks(
                tasks,
                workers=workers,
                policy=RetryPolicy(max_retries=max_retries, timeout=task_timeout),
                on_task_error=on_task_error,
                journal=jrn,
                digest=outcomes_digest,
                progress=progress,
            )
        finally:
            if jrn is not None:
                jrn.close()
        columns = [
            batch.results[name] for name in cfg.allocators if name in batch.results
        ]
        for i in range(len(sampled)):
            for col in columns:
                outcomes.append(col[i])
        return IndividualRunResult(
            outcomes=outcomes,
            sampled_job_ids=[j.job_id for j in sampled],
            missing=dict(batch.missing),
            quarantined=dict(batch.quarantined),
        )
    if workers is not None and workers > 1 and len(cfg.allocators) > 1:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(cfg.allocators))
        ) as pool:
            futures = [
                pool.submit(_individual_worker, state, sampled, name, cfg.cost_model)
                for name in cfg.allocators
            ]
            per_allocator = []
            for done, (name, future) in enumerate(
                zip(cfg.allocators, futures), start=1
            ):
                per_allocator.append(future.result())
                if progress is not None:
                    progress.task_update(done, len(cfg.allocators), name)
        for i in range(len(sampled)):
            for col in per_allocator:
                outcomes.append(col[i])
    else:
        for done, job in enumerate(sampled, start=1):
            for name in cfg.allocators:
                outcomes.append(evaluate_single_job(state, job, name, cfg.cost_model))
            if progress is not None:
                progress.task_update(done, len(sampled), job.job_id)
    return IndividualRunResult(
        outcomes=outcomes, sampled_job_ids=[j.job_id for j in sampled]
    )
