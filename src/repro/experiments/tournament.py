"""Allocator tournament: every allocator × workloads × fault regimes.

The paper compares four allocators on three logs with no failures; the
zoo (``docs/allocators.md``) holds many more, and the PR 2 fault model
supplies adversarial conditions. This harness runs the full cross
product — each *cell* is one continuous replay of one workload under
one fault regime with one allocator — fans the cells out through the
resilient executor (:func:`repro.runs.run_tasks`, the same ``workers=``
machinery the sweeps and the PR 8 fabric ride), and distils a ranked
report: per-allocator mean Eq. 6 communication cost, p95 wait, wasted
node-hours, and wall-clock runtime, aggregated into standings by mean
per-cell rank.

Everything except the wall-clock timings is deterministic: workloads
and fault traces are seeded, cells are pure functions of their spec,
and the report's markdown/JSON renderings take ``include_timing=False``
to produce byte-identical output across runs — the form the golden
test and the journal digests use.

Exposed on the CLI as ``repro-sched tournament``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..allocation.registry import allocator_names, get_allocator
from ..cluster.job import Job
from ..faults.events import FaultEvent
from ..faults.generator import FaultGeneratorConfig, generate_faults
from ..obs import runtime as obs_runtime
from ..obs.metrics import MetricsRegistry
from ..obs.progress import ProgressReporter
from ..runs import RetryPolicy, RunJournal, TaskSpec, digest_obj, run_tasks
from ..scheduler.engine import SchedulerEngine
from ..workloads.classify import assign_kinds, single_pattern_mix
from ..workloads.logs import LOG_SPECS, generate_log
from ..workloads.synthetic import stream_trace
from .report import render_table
from .runner import ExperimentConfig

__all__ = [
    "FaultRegime",
    "FAULT_REGIMES",
    "TOURNAMENT_WORKLOADS",
    "TournamentCell",
    "TournamentReport",
    "run_tournament",
]

#: seconds of fault-generation tail past the last job submission
_HORIZON_TAIL = 86400.0

#: the six summary metrics every cell carries into the report
_CELL_METRICS = (
    "mean_cost_jobaware",
    "p95_wait_hours",
    "total_wait_hours",
    "wasted_node_hours",
    "mean_bounded_slowdown",
    "failed_jobs",
)


@dataclass(frozen=True)
class FaultRegime:
    """One named failure environment of the tournament cross product.

    Attributes
    ----------
    name:
        Regime key (``--regimes`` accepts these).
    rate:
        Expected failures per simulated hour, cluster-wide; 0 disables
        fault injection entirely.
    switch_fraction:
        Probability a failure takes a whole leaf switch down instead of
        a single node.
    mean_downtime:
        Mean seconds a failed node/switch stays down.
    """

    name: str
    rate: float
    switch_fraction: float
    mean_downtime: float = 1800.0

    def events(self, topology, horizon: float, seed: int) -> Tuple[FaultEvent, ...]:
        """Seeded fault trace of this regime over ``[0, horizon)`` seconds."""
        if self.rate == 0.0:
            return ()
        config = FaultGeneratorConfig(
            rate=self.rate,
            horizon=horizon,
            seed=seed,
            mean_downtime=self.mean_downtime,
            switch_fraction=self.switch_fraction,
        )
        return tuple(generate_faults(topology, config))


#: the three stock regimes the issue's acceptance grid names
FAULT_REGIMES: Dict[str, FaultRegime] = {
    "none": FaultRegime("none", rate=0.0, switch_fraction=0.0),
    "node-faults": FaultRegime("node-faults", rate=2.0, switch_fraction=0.0),
    "switch-faults": FaultRegime("switch-faults", rate=0.5, switch_fraction=1.0),
}


def _paper_workload(log: str) -> Callable[[int, int], Tuple[str, List[Job]]]:
    """Builder for one of the paper's logs (headline comm mix)."""

    def build(n_jobs: int, seed: int) -> Tuple[str, List[Job]]:
        trace = generate_log(LOG_SPECS[log], n_jobs, seed=seed + 1)
        jobs = assign_kinds(
            trace,
            percent_comm=90.0,
            mix=single_pattern_mix("rhvd"),
            seed=seed + 2,
        )
        return log, jobs

    return build


def _stream_workload(n_jobs: int, seed: int) -> Tuple[str, List[Job]]:
    """Synthetic ``stream_trace`` workload on the theta topology."""
    trace = list(stream_trace(n_jobs, seed=seed + 1, max_nodes=512))
    jobs = assign_kinds(
        trace,
        percent_comm=90.0,
        mix=single_pattern_mix("rhvd"),
        seed=seed + 2,
    )
    return "theta", jobs


#: workload name -> builder(n_jobs, seed) -> (log/topology name, labelled jobs)
TOURNAMENT_WORKLOADS: Dict[str, Callable[[int, int], Tuple[str, List[Job]]]] = {
    "theta": _paper_workload("theta"),
    "intrepid": _paper_workload("intrepid"),
    "mira": _paper_workload("mira"),
    "stream": _stream_workload,
}


@dataclass(frozen=True)
class TournamentCell:
    """One (workload, regime, allocator) replay's distilled outcome."""

    workload: str
    regime: str
    allocator: str
    metrics: Dict[str, float]
    seconds: float

    def row(self, include_timing: bool = True) -> List[object]:
        """Detail-table row (report rendering)."""
        row: List[object] = [self.allocator]
        row.extend(self.metrics[m] for m in _CELL_METRICS)
        if include_timing:
            row.append(self.seconds)
        return row


def _cell_digest(payload: Dict[str, Any]) -> str:
    """Journal digest of one cell — wall-clock timing excluded."""
    return digest_obj({k: v for k, v in payload.items() if k != "seconds"})


def _tournament_cell(
    cfg: ExperimentConfig, spec: str, jobs: List[Job]
) -> Dict[str, Any]:
    """Run one cell (module-level so it pickles into pool workers)."""
    start = time.perf_counter()
    engine = SchedulerEngine(cfg.topology(), spec, cfg.engine_config())
    result = engine.run(jobs, faults=cfg.faults)
    seconds = time.perf_counter() - start
    summary = result.summary()
    waits = result.wait_times
    p95 = float(np.percentile(waits, 95) / 3600.0) if waits.size else 0.0
    metrics = {
        "mean_cost_jobaware": float(summary["mean_cost_jobaware"]),
        "p95_wait_hours": p95,
        "total_wait_hours": float(summary["total_wait_hours"]),
        "wasted_node_hours": float(summary["wasted_node_hours"]),
        "mean_bounded_slowdown": float(summary["mean_bounded_slowdown"]),
        "failed_jobs": float(summary["failed_jobs"]),
    }
    return {"metrics": metrics, "seconds": seconds}


@dataclass
class TournamentReport:
    """Ranked cross-product results with markdown/JSON renderings.

    ``standings`` orders allocators by mean per-cell rank (rank 1 =
    cheapest Eq. 6 mean communication cost within its (workload,
    regime) group; ties broken by allocator name). ``missing`` names
    cells that exhausted their attempts under ``on_task_error="skip"``.
    """

    allocators: List[str]
    workloads: List[str]
    regimes: List[str]
    n_jobs: int
    seed: int
    cells: List[TournamentCell]
    missing: Dict[str, str] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """True when every cell of the cross product produced a result."""
        return not self.missing

    def _groups(self) -> Dict[Tuple[str, str], List[TournamentCell]]:
        groups: Dict[Tuple[str, str], List[TournamentCell]] = {}
        for cell in self.cells:
            groups.setdefault((cell.workload, cell.regime), []).append(cell)
        return groups

    def standings(self) -> List[Dict[str, object]]:
        """Aggregate rows, best allocator first.

        Per allocator: mean within-group rank by mean communication
        cost, then means of every cell metric and the total runtime.
        """
        ranks: Dict[str, List[int]] = {a: [] for a in self.allocators}
        for group in self._groups().values():
            ordered = sorted(
                group, key=lambda c: (c.metrics["mean_cost_jobaware"], c.allocator)
            )
            for position, cell in enumerate(ordered, start=1):
                ranks[cell.allocator].append(position)
        rows: List[Dict[str, object]] = []
        for name in self.allocators:
            mine = [c for c in self.cells if c.allocator == name]
            if not mine:
                continue
            row: Dict[str, object] = {
                "allocator": name,
                "mean_rank": float(np.mean(ranks[name])) if ranks[name] else 0.0,
                "cells": len(mine),
                "seconds": float(sum(c.seconds for c in mine)),
            }
            for metric in _CELL_METRICS:
                row[metric] = float(np.mean([c.metrics[metric] for c in mine]))
            rows.append(row)
        rows.sort(key=lambda r: (r["mean_rank"], r["allocator"]))
        return rows

    def to_dict(self, include_timing: bool = True) -> Dict[str, object]:
        """Plain-JSON form (``include_timing=False`` is byte-stable)."""
        def cell_dict(cell: TournamentCell) -> Dict[str, object]:
            data: Dict[str, object] = {
                "workload": cell.workload,
                "regime": cell.regime,
                "allocator": cell.allocator,
                "metrics": dict(cell.metrics),
            }
            if include_timing:
                data["seconds"] = cell.seconds
            return data

        standings = self.standings()
        if not include_timing:
            standings = [
                {k: v for k, v in row.items() if k != "seconds"}
                for row in standings
            ]
        return {
            "config": {
                "allocators": list(self.allocators),
                "workloads": list(self.workloads),
                "regimes": list(self.regimes),
                "n_jobs": self.n_jobs,
                "seed": self.seed,
            },
            "standings": standings,
            "cells": [cell_dict(c) for c in self.cells],
            "missing": dict(self.missing),
        }

    def to_json(self, include_timing: bool = True) -> str:
        """Canonical JSON rendering (sorted keys, trailing newline)."""
        return json.dumps(
            self.to_dict(include_timing=include_timing), indent=2, sort_keys=True
        ) + "\n"

    def render_markdown(self, include_timing: bool = True) -> str:
        """Standings plus one detail table per (workload, regime) group."""
        headers = [
            "allocator",
            "mean cost",
            "p95 wait (h)",
            "wait (h)",
            "wasted nh",
            "slowdown",
            "failed",
        ]
        out = [
            "# Allocator tournament",
            "",
            f"{len(self.allocators)} allocators x {len(self.workloads)} "
            f"workloads x {len(self.regimes)} fault regimes, "
            f"{self.n_jobs} jobs per cell, seed {self.seed}.",
            "",
        ]
        standing_headers = ["#", "allocator", "mean rank", "cells"] + headers[1:]
        if include_timing:
            standing_headers.append("runtime (s)")
        standing_rows = []
        for position, row in enumerate(self.standings(), start=1):
            rendered = [position, row["allocator"], row["mean_rank"], row["cells"]]
            rendered.extend(row[m] for m in _CELL_METRICS)
            if include_timing:
                rendered.append(row["seconds"])
            standing_rows.append(rendered)
        out.append(
            render_table(standing_headers, standing_rows, title="Standings")
        )
        detail_headers = list(headers)
        if include_timing:
            detail_headers.append("runtime (s)")
        for (workload, regime), group in sorted(self._groups().items()):
            ordered = sorted(
                group, key=lambda c: (c.metrics["mean_cost_jobaware"], c.allocator)
            )
            out.append("")
            out.append(
                render_table(
                    detail_headers,
                    [c.row(include_timing) for c in ordered],
                    title=f"{workload} / {regime}",
                )
            )
        if self.missing:
            out.append("")
            out.append("## Missing cells")
            out.append("")
            for key in sorted(self.missing):
                out.append(f"- `{key}`: {self.missing[key]}")
        return "\n".join(out).rstrip() + "\n"


def _validate_inputs(
    allocators: Sequence[str], workloads: Sequence[str], regimes: Sequence[str]
) -> None:
    """Fail fast with the CLI-friendly errors (KeyError/ValueError)."""
    for spec in allocators:
        get_allocator(spec)  # raises KeyError/ValueError with context
    for workload in workloads:
        if workload not in TOURNAMENT_WORKLOADS:
            raise KeyError(
                f"unknown workload {workload!r}; known: "
                f"{sorted(TOURNAMENT_WORKLOADS)}"
            )
    for regime in regimes:
        if regime not in FAULT_REGIMES:
            raise KeyError(
                f"unknown fault regime {regime!r}; known: {sorted(FAULT_REGIMES)}"
            )
    seen: Dict[str, str] = {}
    for spec in allocators:
        if spec in seen:
            raise ValueError(f"duplicate allocator spec {spec!r}")
        seen[spec] = spec


def run_tournament(
    allocators: Optional[Sequence[str]] = None,
    *,
    workloads: Sequence[str] = ("theta", "stream"),
    regimes: Sequence[str] = ("none", "node-faults", "switch-faults"),
    n_jobs: int = 300,
    seed: int = 0,
    workers: Optional[int] = None,
    max_retries: int = 0,
    on_task_error: str = "retry",
    journal: Optional[Union[str, "os.PathLike"]] = None,
    progress: Optional[ProgressReporter] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> TournamentReport:
    """Run the full allocator × workload × fault-regime cross product.

    ``allocators`` defaults to every registered name; parameterized
    specs (``"sa:iters=60"``) are accepted and keep their spec string as
    the report label, so the same family can enter the bracket several
    times with different tunings. Each cell replays the same seeded
    jobs under the same seeded fault trace, so two tournaments with the
    same arguments are identical except wall-clock timings.

    ``workers``/``max_retries``/``on_task_error``/``journal`` route the
    cells through :func:`repro.runs.run_tasks` (the sweep machinery):
    parallel fan-out, retries with backoff, journaled attempts, and —
    under ``on_task_error="skip"`` — a report whose ``missing`` maps
    abandoned cells to their last error instead of failing the bracket.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) receives
    per-allocator counters: ``tournament_cells_total`` and
    ``tournament_cell_seconds_total`` labelled by allocator.
    """
    allocator_list = list(allocators) if allocators else allocator_names()
    workload_list = list(workloads)
    regime_list = list(regimes)
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    _validate_inputs(allocator_list, workload_list, regime_list)
    if progress is None:
        progress = obs_runtime.progress()

    # Build each workload once; fault traces once per (workload, regime).
    built: Dict[str, Tuple[str, List[Job]]] = {
        w: TOURNAMENT_WORKLOADS[w](n_jobs, seed) for w in workload_list
    }
    tasks: List[TaskSpec] = []
    for workload in workload_list:
        log, jobs = built[workload]
        topology = LOG_SPECS[log].topology()
        horizon = (
            max(j.submit_time for j in jobs) + _HORIZON_TAIL if jobs else 0.0
        )
        for regime_name in regime_list:
            regime = FAULT_REGIMES[regime_name]
            faults = regime.events(topology, horizon, seed + 7)
            for spec in allocator_list:
                cfg = ExperimentConfig(
                    log=log,
                    n_jobs=n_jobs,
                    allocators=(spec,),
                    seed=seed,
                    faults=faults,
                    interrupt_policy="requeue",
                )
                tasks.append(
                    TaskSpec(
                        key=f"{workload}/{regime_name}/{spec}",
                        fn=_tournament_cell,
                        args=(cfg, spec, jobs),
                        spec={
                            "workload": workload,
                            "regime": regime_name,
                            "allocator": spec,
                        },
                    )
                )

    jrn = (
        RunJournal(
            journal,
            run_type="tournament",
            context={
                "allocators": allocator_list,
                "workloads": workload_list,
                "regimes": regime_list,
                "n_jobs": n_jobs,
                "seed": seed,
            },
        )
        if journal is not None
        else None
    )
    try:
        batch = run_tasks(
            tasks,
            workers=workers,
            policy=RetryPolicy(max_retries=max_retries),
            on_task_error=on_task_error,
            journal=jrn,
            digest=_cell_digest,
            progress=progress,
        )
    finally:
        if jrn is not None:
            jrn.close()

    cells: List[TournamentCell] = []
    for task in tasks:
        payload = batch.results.get(task.key)
        if payload is None:
            continue
        cells.append(
            TournamentCell(
                workload=task.spec["workload"],
                regime=task.spec["regime"],
                allocator=task.spec["allocator"],
                metrics=dict(payload["metrics"]),
                seconds=float(payload["seconds"]),
            )
        )
    missing = {**batch.missing, **batch.quarantined}

    if metrics is not None:
        cells_total = metrics.counter(
            "tournament_cells_total",
            "tournament cells completed per allocator",
            labels=("allocator",),
        )
        cell_seconds = metrics.counter(
            "tournament_cell_seconds_total",
            "wall-clock seconds spent in tournament cells per allocator",
            labels=("allocator",),
            unit="seconds",
        )
        for cell in cells:
            cells_total.labels(allocator=cell.allocator).inc()
            cell_seconds.labels(allocator=cell.allocator).inc(cell.seconds)

    return TournamentReport(
        allocators=allocator_list,
        workloads=workload_list,
        regimes=regime_list,
        n_jobs=n_jobs,
        seed=seed,
        cells=cells,
        missing=missing,
    )
