"""Table 4 — individual-run execution-time improvements (§6.3).

200 randomly sampled jobs are each priced against the *same* partially
occupied cluster snapshot under all four allocators (see
:func:`repro.experiments.runner.individual_runs`), and the mean per-job
percentage improvement over the default allocation is reported per log
and pattern. The paper's numbers:

=====  =======  ======  ========  ========
log    pattern  greedy  balanced  adaptive
=====  =======  ======  ========  ========
1      RHVD     3.65    7.23      7.81
1      RD       1.70    8.12      8.29
2      RHVD     9.65    9.65      9.65
2      RD       13.56   13.56     13.56
3      RHVD     10.84   19.69     21.71
3      RD       9.45    24.32     24.91
=====  =======  ======  ========  ========

Shape to reproduce: every algorithm improves on default, and balanced /
adaptive >= greedy in (almost) every row. Note the paper's Theta rows
(log 2) are identical across algorithms — with few nodes per switch all
three picked the same placement; our theta-like topology reproduces
that tendency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..workloads.classify import single_pattern_mix
from .report import render_table
from .runner import ExperimentConfig, individual_runs

__all__ = ["PAPER_TABLE4", "Table4Result", "run_table4"]

#: {(log, pattern): {allocator: % improvement}}
PAPER_TABLE4: Dict[Tuple[str, str], Dict[str, float]] = {
    ("intrepid", "rhvd"): {"greedy": 3.65, "balanced": 7.23, "adaptive": 7.81},
    ("intrepid", "rd"): {"greedy": 1.70, "balanced": 8.12, "adaptive": 8.29},
    ("theta", "rhvd"): {"greedy": 9.65, "balanced": 9.65, "adaptive": 9.65},
    ("theta", "rd"): {"greedy": 13.56, "balanced": 13.56, "adaptive": 13.56},
    ("mira", "rhvd"): {"greedy": 10.84, "balanced": 19.69, "adaptive": 21.71},
    ("mira", "rd"): {"greedy": 9.45, "balanced": 24.32, "adaptive": 24.91},
}

LOGS = ("intrepid", "theta", "mira")
PATTERNS = ("rhvd", "rd")


@dataclass
class Table4Result:
    #: {(log, pattern): {allocator: mean % improvement}}
    """Individual-runs (§6.3) percent improvements per (log, pattern)."""
    improvements: Dict[Tuple[str, str], Dict[str, float]]

    def render(self) -> str:
        """ASCII table of improvement percentages."""
        headers = [
            "log",
            "pattern",
            "greedy %",
            "balanced %",
            "adaptive %",
            "paper greedy",
            "paper balanced",
            "paper adaptive",
        ]
        rows: List[List[object]] = []
        for (log, pattern), imp in self.improvements.items():
            paper = PAPER_TABLE4.get((log, pattern), {})
            rows.append(
                [
                    log,
                    pattern,
                    imp.get("greedy", 0.0),
                    imp.get("balanced", 0.0),
                    imp.get("adaptive", 0.0),
                    paper.get("greedy", "-"),
                    paper.get("balanced", "-"),
                    paper.get("adaptive", "-"),
                ]
            )
        return render_table(
            headers, rows, title="Table 4: individual-run % execution-time improvement"
        )


def run_table4(
    *,
    n_jobs: int = 1000,
    n_samples: int = 200,
    percent_comm: float = 90.0,
    comm_fraction: float = 0.70,
    target_occupancy: float = 0.5,
    seed: int = 0,
    logs: Tuple[str, ...] = LOGS,
    patterns: Tuple[str, ...] = PATTERNS,
) -> Table4Result:
    """Run the individual-run grid; mean per-job improvement vs default."""
    improvements: Dict[Tuple[str, str], Dict[str, float]] = {}
    for log in logs:
        for pattern in patterns:
            cfg = ExperimentConfig(
                log=log,
                n_jobs=n_jobs,
                percent_comm=percent_comm,
                mix=single_pattern_mix(pattern, comm_fraction),
                seed=seed,
            )
            result = individual_runs(
                cfg, n_samples=n_samples, target_occupancy=target_occupancy
            )
            improvements[(log, pattern)] = {
                name: result.mean_improvement_pct(name)
                for name in cfg.allocators
                if name != "default"
            }
    return Table4Result(improvements)
