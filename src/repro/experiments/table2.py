"""Table 2 — balanced allocation worked example (paper §4.2).

A communication-intensive job requests 512 nodes; seven leaf switches
have 160/150/100/80/70/50/40 nodes free. The paper's balanced algorithm
allocates 128/128/64/64/64/32/32. This module reconstructs the exact
scenario on a real topology and runs the actual allocator — the
expected output is deterministic and asserted in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..allocation.balanced import BalancedAllocator
from ..cluster.job import CommComponent, Job, JobKind
from ..cluster.state import ClusterState
from ..patterns.recursive_doubling import RecursiveDoubling
from ..topology.builders import tree_from_leaf_sizes
from .report import render_table

__all__ = [
    "PAPER_FREE_NODES",
    "PAPER_ALLOCATED",
    "Table2Result",
    "run_table2",
    "build_table2_state",
]

PAPER_FREE_NODES: Tuple[int, ...] = (160, 150, 100, 80, 70, 50, 40)
PAPER_ALLOCATED: Tuple[int, ...] = (128, 128, 64, 64, 64, 32, 32)
REQUEST = 512
LEAF_CAPACITY = 200  # any capacity >= max free count works


def build_table2_state() -> Tuple[ClusterState, Job]:
    """A 7-leaf cluster occupied so the leaves have the paper's free counts."""
    topo = tree_from_leaf_sizes([LEAF_CAPACITY] * len(PAPER_FREE_NODES))
    state = ClusterState(topo)
    filler_id = 1000
    for leaf, free in enumerate(PAPER_FREE_NODES):
        busy = LEAF_CAPACITY - free
        if busy:
            nodes = np.arange(
                topo.leaf_node_offset[leaf], topo.leaf_node_offset[leaf] + busy
            )
            state.allocate(filler_id, nodes, JobKind.COMPUTE)
            filler_id += 1
    job = Job(
        job_id=1,
        submit_time=0.0,
        nodes=REQUEST,
        runtime=3600.0,
        kind=JobKind.COMM,
        comm=(CommComponent(RecursiveDoubling(), 0.7),),
    )
    return state, job


@dataclass
class Table2Result:
    """Worked allocation example (§4.2): leaf frees and chosen counts."""
    free_nodes: Tuple[int, ...]
    allocated: Tuple[int, ...]

    @property
    def matches_paper(self) -> bool:
        """True when the allocation equals the paper's worked answer."""
        return self.allocated == PAPER_ALLOCATED

    def render(self) -> str:
        """ASCII table of free and allocated nodes per leaf."""
        headers = ["leaf"] + [f"L[{i+1}]" for i in range(len(self.free_nodes))]
        rows = [
            ["free nodes", *self.free_nodes],
            ["allocated (measured)", *self.allocated],
            ["allocated (paper)", *PAPER_ALLOCATED],
        ]
        table = render_table(headers, rows, title="Table 2: balanced allocation of a 512-node job")
        status = "exact match" if self.matches_paper else "MISMATCH"
        return f"{table}\nPaper comparison: {status}"


def run_table2() -> Table2Result:
    """Run the balanced allocator on the paper's exact scenario."""
    state, job = build_table2_state()
    nodes = BalancedAllocator().allocate(state, job)
    leaves, counts = np.unique(state.topology.leaf_of_node[nodes], return_counts=True)
    per_leaf = {int(l): int(c) for l, c in zip(leaves, counts)}
    allocated = tuple(per_leaf.get(k, 0) for k in range(len(PAPER_FREE_NODES)))
    return Table2Result(free_nodes=PAPER_FREE_NODES, allocated=allocated)
