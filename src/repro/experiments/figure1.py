"""Figure 1 — inter-job interference study (paper §1 and §5.3).

Two communication-intensive MPI_Allgather jobs share the two leaf
switches of a 50-node departmental cluster:

* **J1**: 8 nodes (4 per switch), running the collective continuously;
* **J2**: 12 nodes (6 per switch), arriving periodically for a burst.

The flow-level network simulator reproduces the paper's observation:
J1's per-iteration time spikes whenever J2 is active, because the two
jobs share switch uplinks. §5.3 additionally reports a correlation of
0.83 between measured execution times and the Eq. 2/3 contention-based
cost estimate; :func:`run_figure1` computes the same correlation over
the simulated series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..cluster.job import JobKind
from ..cluster.state import ClusterState
from ..cost.model import CostModel
from ..netsim.network import FlowNetwork
from ..netsim.simulator import CollectiveWorkload, FlowSimulator, IterationRecord
from ..patterns.rhvd import RecursiveHalvingVectorDoubling
from ..topology.builders import dept_cluster
from ..analysis.ascii_plot import sparkline
from .report import render_kv

__all__ = ["Figure1Result", "run_figure1", "PAPER_CORRELATION"]

#: §5.3: correlation between contention estimate and measured runtimes.
PAPER_CORRELATION = 0.83


@dataclass
class Figure1Result:
    """Simulated Figure 1 series and the contention correlation."""

    #: (end time, duration) of every J1 iteration
    j1_series: List[Tuple[float, float]]
    #: (end time, duration) of every J2 burst
    j2_series: List[Tuple[float, float]]
    #: intervals [start, end) during which J2 was active
    j2_active: List[Tuple[float, float]]
    #: mean J1 iteration duration while J2 idle / active
    j1_base_duration: float
    j1_contended_duration: float
    #: Pearson correlation between per-iteration cost estimate and duration
    correlation: float

    @property
    def slowdown_factor(self) -> float:
        """How much J2 slows J1 down (paper Figure 1's spike height)."""
        if self.j1_base_duration == 0:
            return 1.0
        return self.j1_contended_duration / self.j1_base_duration

    def render(self) -> str:
        """Interference study report: timings, slowdowns, ASCII chart."""
        kv = render_kv(
            [
                ("J1 iterations", len(self.j1_series)),
                ("J2 iterations", len(self.j2_series)),
                ("J2 bursts", len(self.j2_active)),
                ("J1 mean duration, J2 idle (s)", self.j1_base_duration),
                ("J1 mean duration, J2 active (s)", self.j1_contended_duration),
                ("slowdown factor while contended", self.slowdown_factor),
                ("contention/runtime correlation (measured)", self.correlation),
                ("contention/runtime correlation (paper)", PAPER_CORRELATION),
            ],
            title="Figure 1: interference between co-scheduled collectives",
        )
        strip = sparkline([d for _, d in self.j1_series], width=68)
        return f"{kv}\nJ1 iteration time over wall-clock time (spikes = J2 active):\n[{strip}]"


def run_figure1(
    *,
    burst_count: int = 6,
    burst_period_s: float = 120.0,
    burst_iterations: int = 400,
    msize_bytes: float = 1e6,
    bandwidth_bytes_per_s: float = 125e6,
) -> Figure1Result:
    """Simulate the two-job interference study.

    Time is compressed relative to the paper's 10-hour wall-clock run
    (J2 every 30 minutes): ``burst_period_s`` controls the cadence, and
    the qualitative series — flat baseline with spikes during each J2
    burst — is cadence-independent.
    """
    topo = dept_cluster()
    net = FlowNetwork(topo, base_bandwidth=bandwidth_bytes_per_s)
    pattern = RecursiveHalvingVectorDoubling()

    leaf0 = topo.leaf_nodes(0)
    leaf1 = topo.leaf_nodes(1)
    j1_nodes = tuple(leaf0[:4].tolist() + leaf1[:4].tolist())
    j2_nodes = tuple(leaf0[4:10].tolist() + leaf1[4:10].tolist())

    horizon = burst_count * burst_period_s + burst_period_s
    workloads = [
        CollectiveWorkload(
            job_id=1,
            nodes=j1_nodes,
            pattern=pattern,
            msize_bytes=msize_bytes,
            iterations=10_000_000,  # effectively continuous; `until` truncates
        )
    ]
    for k in range(burst_count):
        workloads.append(
            CollectiveWorkload(
                job_id=2 + k,
                nodes=j2_nodes,
                pattern=pattern,
                msize_bytes=msize_bytes,
                iterations=burst_iterations,
                start_time=burst_period_s * (k + 0.5),
            )
        )
    records = FlowSimulator(net).run(
        workloads, until=horizon, max_events=20_000_000
    )

    j1 = [(r.end, r.duration) for r in records if r.job_id == 1]
    j2 = [(r.end, r.duration) for r in records if r.job_id >= 2]
    j2_active = _burst_intervals(records)

    ends = np.array([t for t, _ in j1])
    durs = np.array([d for _, d in j1])
    contended = np.zeros(ends.size, dtype=bool)
    for lo, hi in j2_active:
        contended |= (ends > lo) & (ends <= hi + 1e-9)
    base = float(durs[~contended].mean()) if (~contended).any() else 0.0
    cont = float(durs[contended].mean()) if contended.any() else base

    correlation = _contention_correlation(topo, j1_nodes, j2_nodes, durs, contended)
    return Figure1Result(
        j1_series=j1,
        j2_series=j2,
        j2_active=j2_active,
        j1_base_duration=base,
        j1_contended_duration=cont,
        correlation=correlation,
    )


def _burst_intervals(records: List[IterationRecord]) -> List[Tuple[float, float]]:
    """[start, end] per J2 burst (its first iteration start to last end)."""
    by_job: dict[int, List[IterationRecord]] = {}
    for r in records:
        if r.job_id >= 2:
            by_job.setdefault(r.job_id, []).append(r)
    intervals = []
    for job_id in sorted(by_job):
        rs = by_job[job_id]
        intervals.append((min(r.start for r in rs), max(r.end for r in rs)))
    return intervals


def _contention_correlation(
    topo,
    j1_nodes: Tuple[int, ...],
    j2_nodes: Tuple[int, ...],
    durations: np.ndarray,
    contended: np.ndarray,
) -> float:
    """Pearson correlation of the Eq. 2-6 cost estimate vs measured time.

    Two cluster states are priced: J1 alone, and J1 + J2 both marked
    communication-intensive; each J1 iteration is assigned the estimate
    matching whether J2 was active — the same device the paper uses to
    correlate its contention model against the Figure 1 measurements.
    """
    pattern = RecursiveHalvingVectorDoubling()
    model = CostModel()

    state_alone = ClusterState(topo)
    state_alone.allocate(1, j1_nodes, JobKind.COMM)
    cost_alone = model.allocation_cost(state_alone, j1_nodes, pattern)

    state_both = ClusterState(topo)
    state_both.allocate(1, j1_nodes, JobKind.COMM)
    state_both.allocate(2, j2_nodes, JobKind.COMM)
    cost_both = model.allocation_cost(state_both, j1_nodes, pattern)

    estimates = np.where(contended, cost_both, cost_alone)
    if np.std(estimates) == 0 or np.std(durations) == 0:
        return 0.0
    return float(np.corrcoef(estimates, durations)[0, 1])
