"""Plain-text table rendering for experiment output.

Every experiment renders to an ASCII table comparing "paper" and
"measured" values, so the reproduction status is readable in a terminal
and diffable in EXPERIMENTS.md. No plotting dependency: figures are
reported as their underlying data series.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from ..runs.atomic import atomic_write_text

__all__ = ["render_table", "format_value", "render_kv", "write_report"]


def format_value(value) -> str:
    """Human formatting: ints plain, floats to sensible precision."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render a boxed ASCII table; columns sized to content."""
    str_rows: List[List[str]] = [[format_value(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.rjust(w) for c, w in zip(cells, widths)) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out: List[str] = []
    if title:
        out.append(title)
    out.append(sep)
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(r) for r in str_rows)
    out.append(sep)
    return "\n".join(out)


def render_kv(pairs: Sequence[tuple], *, title: Optional[str] = None) -> str:
    """Render key/value pairs as an aligned two-column block."""
    width = max((len(str(k)) for k, _ in pairs), default=0)
    out: List[str] = [title] if title else []
    out.extend(f"{str(k).ljust(width)} : {format_value(v)}" for k, v in pairs)
    return "\n".join(out)


def write_report(text: str, path: Union[str, Path]) -> None:
    """Atomically write rendered report text to ``path``.

    A crash mid-write leaves the previous report intact instead of a
    truncated table (``repro.runs.atomic``).
    """
    atomic_write_text(path, text if text.endswith("\n") else text + "\n")
