"""Generic parameter sweeps producing tidy rows.

The paper's evaluation is a handful of fixed grids; research use needs
arbitrary ones ("how do the gains move with comm_fraction x load x
seed?"). :func:`sweep` runs the continuous-run harness over the cross
product of parameter lists and emits one flat dict per (configuration,
allocator) — ready for CSV export (:func:`rows_to_csv`) or any
dataframe library.
"""

from __future__ import annotations

import csv
import io
from concurrent.futures import ProcessPoolExecutor
from itertools import product
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from ..runs import (
    PartialRows,
    RetryPolicy,
    RunJournal,
    TaskSpec,
    digest_obj,
    result_digest,
    run_tasks,
)
from ..runs.retry import ON_ERROR_RETRY
from ..scheduler.metrics import SimulationResult, percent_improvement
from ..topology.shared import install_topology_handles, publish_topology
from ..workloads.classify import single_pattern_mix
from ..workloads.logs import LOG_SPECS
from .runner import ExperimentConfig, _resilient, continuous_runs

__all__ = [
    "sweep",
    "rows_to_csv",
    "point_config",
    "point_rows",
    "expand_grid",
    "SWEEPABLE",
]

#: parameters `sweep` understands, with how they map onto the config
SWEEPABLE = ("log", "n_jobs", "percent_comm", "pattern", "comm_fraction", "seed", "policy")


def point_config(
    point: Mapping[str, object], allocators: Sequence[str]
) -> ExperimentConfig:
    """Build the config for one fully resolved sweep point."""
    return ExperimentConfig(
        log=str(point["log"]),
        n_jobs=int(point["n_jobs"]),
        percent_comm=float(point["percent_comm"]),
        mix=single_pattern_mix(str(point["pattern"]), float(point["comm_fraction"])),
        allocators=tuple(allocators),
        seed=int(point["seed"]),
        policy=str(point["policy"]),
    )


def _sweep_point_worker(cfg: ExperimentConfig) -> Dict[str, SimulationResult]:
    """One grid point's continuous runs (module-level so it pickles)."""
    return continuous_runs(cfg)


def expand_grid(
    grid: Mapping[str, Sequence],
    defaults: Optional[Mapping[str, object]] = None,
) -> List[Dict[str, object]]:
    """Expand a sweep grid into fully resolved points, cross-product order.

    Validates parameter names against :data:`SWEEPABLE` and fills
    unswept parameters from ``defaults`` (then the built-in baseline).
    This single expansion is shared by the serial :func:`sweep` path
    and the distributed fabric (:mod:`repro.fabric`), so both walk the
    identical cell list in the identical order.
    """
    unknown = set(grid) - set(SWEEPABLE)
    if unknown:
        raise ValueError(f"unknown sweep parameters: {sorted(unknown)}")
    if not grid:
        raise ValueError("grid must name at least one parameter")
    base: Dict[str, object] = {
        "log": "theta",
        "n_jobs": 200,
        "percent_comm": 90.0,
        "pattern": "rhvd",
        "comm_fraction": 0.7,
        "seed": 0,
        "policy": "backfill",
    }
    if defaults:
        bad = set(defaults) - set(SWEEPABLE)
        if bad:
            raise ValueError(f"unknown default parameters: {sorted(bad)}")
        base.update(defaults)
    points: List[Dict[str, object]] = []
    for values in product(*(grid[n] for n in grid)):
        point = dict(base)
        point.update(dict(zip(list(grid), values)))
        points.append(point)
    return points


def point_rows(
    point: Mapping[str, object],
    results: Dict[str, SimulationResult],
) -> List[Dict[str, object]]:
    """Flatten one grid point's per-allocator results into sweep rows.

    One row per allocator, in ``results`` order: the sweep point, the
    paper's aggregate metrics, and the percent improvement over the
    ``"default"`` allocator when it is part of the run. Every value is
    a JSON-safe scalar, which is what lets the fabric compute rows in a
    worker process, ship them as JSON, and still merge a report
    bit-identical to the serial path (JSON round-trips floats exactly).
    """
    base_exec = (
        results["default"].total_execution_hours if "default" in results else None
    )
    rows: List[Dict[str, object]] = []
    for name, res in results.items():
        row: Dict[str, object] = {k: point[k] for k in SWEEPABLE}
        row["allocator"] = name
        row.update(res.summary())
        row["exec_improvement_pct"] = (
            percent_improvement(base_exec, res.total_execution_hours)
            if base_exec is not None
            else None
        )
        rows.append(row)
    return rows


def _point_digest(results: Dict[str, SimulationResult]) -> str:
    """Digest of one point's per-allocator results (journal / replay)."""
    return digest_obj({name: result_digest(res) for name, res in results.items()})


def _point_key(point: Mapping[str, object], names: Sequence[str]) -> str:
    """Stable human-readable journal key for one grid point."""
    return "|".join(f"{n}={point[n]}" for n in names)


def sweep(
    grid: Mapping[str, Sequence],
    *,
    allocators: Sequence[str] = ("default", "balanced"),
    defaults: Optional[Mapping[str, object]] = None,
    workers: Optional[int] = None,
    max_retries: int = 0,
    on_task_error: str = ON_ERROR_RETRY,
    journal: Optional[Union[str, "os.PathLike"]] = None,
    task_timeout: Optional[float] = None,
    share_topology: bool = True,
) -> List[Dict[str, object]]:
    """Run every combination in ``grid``; one row per (point, allocator).

    ``grid`` maps parameter names (a subset of :data:`SWEEPABLE`) to the
    values to sweep; unswept parameters come from ``defaults`` or the
    :class:`ExperimentConfig` defaults. Every row carries the sweep
    point, the paper's aggregate metrics, and the percent improvement
    over the ``"default"`` allocator when it is part of the run.

    ``workers > 1`` runs the grid points in parallel processes (each
    point's allocators run serially inside its worker); rows come back
    in the same cross-product order as the serial path, bit-identical.
    With ``share_topology`` (the default) each distinct log's topology —
    including its precomputed leaf-pair LCA matrix — is published once
    into shared memory and attached zero-copy by every worker, instead
    of being rebuilt per process; set it to False to fall back to
    per-worker construction (e.g. when ``/dev/shm`` is unavailable).

    The resilience arguments behave as in
    :func:`~repro.experiments.runner.continuous_runs`, per grid point;
    under ``on_task_error="skip"`` (or ``"quarantine"``) the return
    value is a :class:`~repro.runs.PartialRows` whose ``missing`` (or
    ``quarantined``) names the grid points whose rows are absent.
    """
    names = list(grid)
    points = expand_grid(grid, defaults)
    configs = [point_config(point, allocators) for point in points]

    pooled = workers is not None and workers > 1 and len(configs) > 1
    published = {}
    initializer = None
    initargs = ()
    if share_topology and pooled:
        for log in dict.fromkeys(cfg.log for cfg in configs):
            published[log] = publish_topology(LOG_SPECS[log].topology())
        handles = {log: pub.handle for log, pub in published.items()}
        initializer = install_topology_handles
        initargs = (handles,)

    missing: Dict[str, str] = {}
    quarantined: Dict[str, str] = {}
    try:
        if _resilient(max_retries, on_task_error, journal, task_timeout):
            keys = [_point_key(point, names) for point in points]
            tasks = [
                TaskSpec(
                    key=key,
                    fn=_sweep_point_worker,
                    args=(cfg,),
                    spec={"point": point, "allocators": list(allocators)},
                )
                for key, point, cfg in zip(keys, points, configs)
            ]
            jrn = (
                RunJournal(journal, run_type="sweep", context={})
                if journal is not None
                else None
            )
            try:
                result_batch = run_tasks(
                    tasks,
                    workers=workers,
                    policy=RetryPolicy(max_retries=max_retries, timeout=task_timeout),
                    on_task_error=on_task_error,
                    journal=jrn,
                    digest=_point_digest,
                    initializer=initializer,
                    initargs=initargs,
                )
            finally:
                if jrn is not None:
                    jrn.close()
            missing = dict(result_batch.missing)
            quarantined = dict(result_batch.quarantined)
            kept = [
                (point, result_batch.results[key])
                for key, point in zip(keys, points)
                if key in result_batch.results
            ]
        elif pooled:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(configs)),
                initializer=initializer,
                initargs=initargs,
            ) as pool:
                kept = list(zip(points, pool.map(continuous_runs, configs)))
        else:
            kept = [
                (point, continuous_runs(cfg)) for point, cfg in zip(points, configs)
            ]
    finally:
        # destroy the segments only after every worker exited (both pool
        # paths join their workers before returning)
        for pub in published.values():
            pub.unlink()

    rows: List[Dict[str, object]] = []
    for point, results in kept:
        rows.extend(point_rows(point, results))
    if missing or quarantined:
        return PartialRows(rows, missing, quarantined)
    return rows


def rows_to_csv(rows: Iterable[Dict[str, object]]) -> str:
    """Render sweep rows as CSV text (columns from the first row)."""
    rows = list(rows)
    if not rows:
        raise ValueError("no rows to render")
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buf.getvalue()
