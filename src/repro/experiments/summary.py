"""Run every experiment and emit one combined report.

``repro-sched experiment all`` (or :func:`run_all`) regenerates each
paper artifact at a chosen scale and concatenates the rendered reports
— the one-command answer to "show me the whole reproduction".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .figure1 import run_figure1
from .figure6 import run_figure6
from .figure7 import run_figure7
from .figure8 import run_figure8
from .figure9 import run_figure9
from .table2 import run_table2
from .table3 import run_table3
from .table4 import run_table4
from .validation import run_cost_model_validation

__all__ = ["SummaryResult", "run_all"]

_RULE = "=" * 72


@dataclass
class SummaryResult:
    """Rendered reports of every experiment, in paper order."""

    reports: Dict[str, str]

    def render(self) -> str:
        """Concatenated report of every experiment that ran."""
        blocks: List[str] = []
        for name, report in self.reports.items():
            blocks.append(f"{_RULE}\n{name}\n{_RULE}\n{report}")
        return "\n\n".join(blocks)


def run_all(
    *,
    n_jobs: int = 300,
    seed: int = 0,
    include_validation: bool = True,
    n_samples: Optional[int] = None,
) -> SummaryResult:
    """Regenerate every table/figure at ``n_jobs`` scale.

    ``n_samples`` (individual-run sample count) defaults to
    ``min(200, n_jobs // 2)``. ``include_validation=False`` skips the
    flow-simulation cross-check, which dominates the wall time at small
    scales.
    """
    samples = n_samples if n_samples is not None else min(200, max(n_jobs // 2, 10))
    reports: Dict[str, str] = {}
    reports["figure1"] = run_figure1(
        burst_count=4, burst_period_s=60.0, burst_iterations=200
    ).render()
    reports["table2"] = run_table2().render()
    reports["table3"] = run_table3(n_jobs=n_jobs, seed=seed).render()
    reports["figure6"] = run_figure6(n_jobs=n_jobs, seed=seed).render()
    reports["table4"] = run_table4(
        n_jobs=n_jobs, n_samples=samples, seed=seed
    ).render()
    reports["figure7"] = run_figure7(
        n_jobs=n_jobs, n_samples=samples, seed=seed
    ).render()
    for log in ("intrepid", "theta", "mira"):
        reports[f"figure8 ({log})"] = run_figure8(
            log=log, n_jobs=n_jobs, seed=seed
        ).render()
    reports["figure9"] = run_figure9(n_jobs=n_jobs, seed=seed).render()
    if include_validation:
        reports["validation (extra)"] = run_cost_model_validation(
            n_placements=10, seed=seed
        ).render()
    return SummaryResult(reports)
