"""Table 3 — execution and wait times, continuous runs (paper §6.1).

Three job logs x two communication patterns (RHVD, RD) x four
allocation algorithms, 90% communication-intensive jobs; total
execution hours and total wait hours per combination.

The paper's numbers are embedded in :data:`PAPER_TABLE3` so the bench
output and EXPERIMENTS.md show paper-vs-measured side by side. Absolute
hours differ (synthetic logs, modeled runtimes); the comparisons that
must reproduce are the *orderings*: balanced and adaptive beat default
everywhere, and wait times drop substantially under the job-aware
algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..workloads.classify import single_pattern_mix
from .report import render_table
from .runner import ExperimentConfig, continuous_runs

__all__ = ["PAPER_TABLE3", "Table3Cell", "Table3Result", "run_table3"]

#: Paper Table 3: {(log, pattern): {"exec": {alg: hours}, "wait": {alg: hours}}}
PAPER_TABLE3: Dict[Tuple[str, str], Dict[str, Dict[str, float]]] = {
    ("intrepid", "rhvd"): {
        "exec": {"default": 1382, "greedy": 1351, "balanced": 1256, "adaptive": 1251},
        "wait": {"default": 57, "greedy": 49, "balanced": 27, "adaptive": 27},
    },
    ("intrepid", "rd"): {
        "exec": {"default": 1382, "greedy": 1345, "balanced": 1264, "adaptive": 1257},
        "wait": {"default": 57, "greedy": 52, "balanced": 32, "adaptive": 33},
    },
    ("theta", "rhvd"): {
        "exec": {"default": 2189, "greedy": 1740, "balanced": 1700, "adaptive": 1663},
        "wait": {"default": 45303, "greedy": 31190, "balanced": 34539, "adaptive": 33092},
    },
    ("theta", "rd"): {
        "exec": {"default": 2189, "greedy": 1810, "balanced": 1731, "adaptive": 1706},
        "wait": {"default": 45303, "greedy": 34901, "balanced": 35874, "adaptive": 31809},
    },
    ("mira", "rhvd"): {
        "exec": {"default": 3289, "greedy": 3956, "balanced": 2342, "adaptive": 2435},
        "wait": {"default": 17387, "greedy": 34966, "balanced": 3685, "adaptive": 4751},
    },
    ("mira", "rd"): {
        "exec": {"default": 3289, "greedy": 3285, "balanced": 2559, "adaptive": 2637},
        "wait": {"default": 17387, "greedy": 15845, "balanced": 6336, "adaptive": 5631},
    },
}

LOGS = ("intrepid", "theta", "mira")
PATTERNS = ("rhvd", "rd")


@dataclass(frozen=True)
class Table3Cell:
    """Measured totals of one (log, pattern, allocator) combination."""

    log: str
    pattern: str
    allocator: str
    exec_hours: float
    wait_hours: float


@dataclass
class Table3Result:
    """Exec/wait grid (§6.1): one cell per (log, pattern, allocator)."""
    cells: List[Table3Cell]

    def cell(self, log: str, pattern: str, allocator: str) -> Table3Cell:
        """Look up the cell for ``(log, pattern, allocator)``."""
        for c in self.cells:
            if (c.log, c.pattern, c.allocator) == (log, pattern, allocator):
                return c
        raise KeyError((log, pattern, allocator))

    def render(self) -> str:
        """ASCII table of execution/wait hours and improvements."""
        headers = [
            "log",
            "pattern",
            "metric",
            "default",
            "greedy",
            "balanced",
            "adaptive",
            "paper default",
            "paper balanced",
        ]
        rows = []
        seen = sorted({(c.log, c.pattern) for c in self.cells},
                      key=lambda kp: (LOGS.index(kp[0]), PATTERNS.index(kp[1])))
        for log, pattern in seen:
            paper = PAPER_TABLE3.get((log, pattern), {})
            for metric, attr in (("exec h", "exec_hours"), ("wait h", "wait_hours")):
                key = "exec" if metric.startswith("exec") else "wait"
                row = [log, pattern, metric]
                for alg in ("default", "greedy", "balanced", "adaptive"):
                    try:
                        row.append(getattr(self.cell(log, pattern, alg), attr))
                    except KeyError:
                        row.append("-")
                row.append(paper.get(key, {}).get("default", "-"))
                row.append(paper.get(key, {}).get("balanced", "-"))
                rows.append(row)
        return render_table(headers, rows, title="Table 3: totals over the log (hours)")


def run_table3(
    *,
    n_jobs: int = 1000,
    percent_comm: float = 90.0,
    comm_fraction: float = 0.70,
    seed: int = 0,
    logs: Tuple[str, ...] = LOGS,
    patterns: Tuple[str, ...] = PATTERNS,
) -> Table3Result:
    """Run the full Table 3 grid and collect totals."""
    cells: List[Table3Cell] = []
    for log in logs:
        for pattern in patterns:
            cfg = ExperimentConfig(
                log=log,
                n_jobs=n_jobs,
                percent_comm=percent_comm,
                mix=single_pattern_mix(pattern, comm_fraction),
                seed=seed,
            )
            results = continuous_runs(cfg)
            for name, res in results.items():
                cells.append(
                    Table3Cell(
                        log=log,
                        pattern=pattern,
                        allocator=name,
                        exec_hours=res.total_execution_hours,
                        wait_hours=res.total_wait_hours,
                    )
                )
    return Table3Result(cells)
