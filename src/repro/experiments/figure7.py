"""Figure 7 — per-job execution times, continuous vs individual (§6.3).

For the Theta log under recursive doubling, the paper plots per-job
execution times of 200 jobs under all four allocators, once from the
continuous replay (left panel) and once from the shared-snapshot
individual runs (right panel). The headline comparisons: job-aware
algorithms sit at or below the default curve, with maximum per-job
reductions of ~70% (continuous) and ~15% (individual) for Theta.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..workloads.classify import single_pattern_mix
from ..analysis.ascii_plot import line_plot
from .report import render_table
from .runner import ExperimentConfig, continuous_runs, individual_runs, prepare_jobs

__all__ = ["Figure7Result", "run_figure7", "PAPER_MAX_REDUCTION"]

#: §6.3: max per-job exec reduction for Theta + RD.
PAPER_MAX_REDUCTION = {"continuous": 70.0, "individual": 15.0}


@dataclass
class Figure7Result:
    """Continuous-vs-individual (§6.3) mean execution times per mode."""
    log: str
    job_ids: List[int]
    #: {"continuous"|"individual": {allocator: exec seconds per job}}
    series: Dict[str, Dict[str, np.ndarray]]

    def max_reduction_pct(self, mode: str, allocator: str = "adaptive") -> float:
        """Largest per-job % reduction vs default in the given mode."""
        base = self.series[mode]["default"]
        cand = self.series[mode][allocator]
        ok = base > 0
        if not ok.any():
            return 0.0
        return float((100.0 * (base[ok] - cand[ok]) / base[ok]).max())

    def mean_reduction_pct(self, mode: str, allocator: str = "adaptive") -> float:
        """Percent reduction of ``allocator`` vs default in ``mode``."""
        base = self.series[mode]["default"]
        cand = self.series[mode][allocator]
        ok = base > 0
        if not ok.any():
            return 0.0
        return float((100.0 * (base[ok] - cand[ok]) / base[ok]).mean())

    def render(self) -> str:
        """ASCII table of mean execution times and reductions per mode."""
        headers = ["mode", "allocator", "mean exec (s)", "mean reduction %", "max reduction %"]
        rows: List[List[object]] = []
        for mode in ("continuous", "individual"):
            for name, series in self.series[mode].items():
                rows.append(
                    [
                        mode,
                        name,
                        float(series.mean()),
                        self.mean_reduction_pct(mode, name),
                        self.max_reduction_pct(mode, name),
                    ]
                )
        table = render_table(
            headers,
            rows,
            title=f"Figure 7: per-job execution times, {self.log} + RD ({len(self.job_ids)} jobs)",
        )
        paper = (
            f"Paper ({self.log}): max reduction ~{PAPER_MAX_REDUCTION['continuous']:.0f}% "
            f"continuous, ~{PAPER_MAX_REDUCTION['individual']:.0f}% individual"
        )
        order = np.argsort(self.series["continuous"]["default"])
        chart = line_plot(
            {
                "default": self.series["continuous"]["default"][order],
                "adaptive": self.series["continuous"]["adaptive"][order],
            },
            title="per-job execution seconds, continuous runs "
                  "(jobs sorted by default exec time):",
            height=10,
        )
        return f"{table}\n{paper}\n{chart}"


def run_figure7(
    *,
    log: str = "theta",
    n_jobs: int = 1000,
    n_samples: int = 200,
    percent_comm: float = 90.0,
    comm_fraction: float = 0.70,
    seed: int = 0,
) -> Figure7Result:
    """Per-job exec series for both §5.4 run styles on one log."""
    cfg = ExperimentConfig(
        log=log,
        n_jobs=n_jobs,
        percent_comm=percent_comm,
        mix=single_pattern_mix("rd", comm_fraction),
        seed=seed,
    )
    jobs = prepare_jobs(cfg)

    individual = individual_runs(cfg, n_samples=n_samples, jobs=jobs)
    job_ids = individual.sampled_job_ids

    continuous = continuous_runs(cfg, jobs=jobs)
    cont_series: Dict[str, np.ndarray] = {}
    for name, res in continuous.items():
        by_id = {r.job.job_id: r.execution_time for r in res.records}
        cont_series[name] = np.array([by_id[j] for j in job_ids], dtype=np.float64)

    ind_series = {
        name: individual.execution_times(name) for name in cfg.allocators
    }
    return Figure7Result(
        log=log,
        job_ids=job_ids,
        series={"continuous": cont_series, "individual": ind_series},
    )
