"""Figure 9 — turnaround time and node-hours vs %comm-intensive (§6.5).

Intrepid log, RHVD pattern, with the communication-intensive share
swept over 30% / 60% / 90%. Reported per allocator: mean turnaround
hours (left panel) and mean node-hours (right panel). Paper claims to
reproduce: job-aware allocators beat default at every percentage, and
the improvement *grows* with the percentage (adaptive: ~2.6% of
turnaround at 30% -> ~11.1% at 90%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..scheduler.metrics import percent_improvement
from ..workloads.classify import single_pattern_mix
from ..analysis.ascii_plot import bar_chart
from .report import render_table
from .runner import ExperimentConfig, continuous_runs

__all__ = ["PAPER_FIGURE9", "Figure9Result", "run_figure9"]

#: §6.5 quoted ranges: average improvement bands over the sweep, %.
PAPER_FIGURE9 = {
    "greedy": {"turnaround": (0.6, 2.8), "node_hours": (0.5, 1.9)},
    "balanced": {"turnaround": (2.2, 11.1), "node_hours": (2.3, 7.8)},
    "adaptive": {"turnaround": (2.2, 11.1), "node_hours": (2.3, 7.8)},
}


@dataclass
class Figure9Result:
    """%comm sweep (§6.5) aggregate metrics per level, per allocator."""
    log: str
    #: {percent_comm: {allocator: (avg turnaround h, avg node-hours)}}
    points: Dict[float, Dict[str, Tuple[float, float]]]
    #: {percent_comm: {allocator: jobs completed per hour of makespan}}
    throughput: Dict[float, Dict[str, float]]

    def throughput_improvement(self, percent: float, allocator: str) -> float:
        """§6.5's "improves system throughput" claim, as % vs default."""
        base = self.throughput[percent]["default"]
        cand = self.throughput[percent][allocator]
        if base == 0:
            return 0.0
        return 100.0 * (cand - base) / base

    def improvement(self, percent: float, allocator: str, metric: str) -> float:
        """% improvement vs default at one sweep point; metric in
        {"turnaround", "node_hours"}."""
        idx = 0 if metric == "turnaround" else 1
        base = self.points[percent]["default"][idx]
        cand = self.points[percent][allocator][idx]
        return percent_improvement(base, cand)

    def render(self) -> str:
        """ASCII table of the sweep metrics per %comm level."""
        headers = [
            "%comm",
            "allocator",
            "avg turnaround (h)",
            "impr %",
            "avg node-hours",
            "impr %",
        ]
        rows: List[List[object]] = []
        for percent in sorted(self.points):
            for name, (tat, nh) in self.points[percent].items():
                rows.append(
                    [
                        percent,
                        name,
                        tat,
                        self.improvement(percent, name, "turnaround"),
                        nh,
                        self.improvement(percent, name, "node_hours"),
                    ]
                )
        table = render_table(
            headers,
            rows,
            title=f"Figure 9: turnaround and node-hours vs %comm-intensive ({self.log}, RHVD)",
        )
        bars = bar_chart(
            {
                f"balanced @ {int(p)}%": self.improvement(p, "balanced", "node_hours")
                for p in sorted(self.points)
            },
            title="node-hour improvement grows with %comm-intensive:",
            unit="%",
        )
        top = max(self.points)
        thr = self.throughput_improvement(top, "balanced")
        note = (f"system throughput (jobs/makespan-hour) at {int(top)}% comm: "
                f"balanced +{thr:.1f}% vs default "
                "(paper §6.5: up to 31% for Theta, 12.5% for Mira)")
        return f"{table}\n{bars}\n{note}"


def run_figure9(
    *,
    log: str = "intrepid",
    n_jobs: int = 1000,
    comm_fraction: float = 0.70,
    percents: Tuple[float, ...] = (30.0, 60.0, 90.0),
    seed: int = 0,
) -> Figure9Result:
    """Sweep the communication-intensive percentage on one log."""
    points: Dict[float, Dict[str, Tuple[float, float]]] = {}
    throughput: Dict[float, Dict[str, float]] = {}
    for percent in percents:
        cfg = ExperimentConfig(
            log=log,
            n_jobs=n_jobs,
            percent_comm=percent,
            mix=single_pattern_mix("rhvd", comm_fraction),
            seed=seed,
        )
        results = continuous_runs(cfg)
        points[percent] = {
            name: (res.avg_turnaround_hours, res.avg_node_hours)
            for name, res in results.items()
        }
        throughput[percent] = {
            name: (len(res) / (res.makespan / 3600.0)) if res.makespan > 0 else 0.0
            for name, res in results.items()
        }
    return Figure9Result(log=log, points=points, throughput=throughput)
