"""Paper experiment reproductions, one module per table/figure.

==========  =================================================
experiment  paper artifact
==========  =================================================
figure1     two-job interference + contention correlation
table2      balanced allocation worked example
table3      exec/wait totals, 3 logs x 2 patterns x 4 algs
figure6     mix sweep A-E (%exec reduction)
table4      individual-run improvements, 200 jobs
figure7     continuous vs individual per-job exec times
figure8     Eq. 6 cost by node range
figure9     turnaround/node-hours vs %comm-intensive
validation  (extra) Eq. 6 estimates vs flow-sim measurements
==========  =================================================
"""

from .report import format_value, render_kv, render_table
from .runner import (
    ExperimentConfig,
    IndividualOutcome,
    IndividualRunResult,
    continuous_runs,
    evaluate_single_job,
    individual_runs,
    prepare_jobs,
    warm_state,
)
from .figure1 import Figure1Result, run_figure1
from .table2 import Table2Result, run_table2
from .table3 import Table3Result, run_table3
from .figure6 import Figure6Result, run_figure6
from .table4 import Table4Result, run_table4
from .figure7 import Figure7Result, run_figure7
from .figure8 import Figure8Result, run_figure8
from .figure9 import Figure9Result, run_figure9
from .validation import ValidationResult, run_cost_model_validation
from .summary import SummaryResult, run_all
from .sweeps import rows_to_csv, sweep
from .tournament import (
    FAULT_REGIMES,
    FaultRegime,
    TOURNAMENT_WORKLOADS,
    TournamentCell,
    TournamentReport,
    run_tournament,
)

#: name -> zero-config runner, for the CLI
EXPERIMENT_RUNNERS = {
    "figure1": run_figure1,
    "table2": run_table2,
    "table3": run_table3,
    "figure6": run_figure6,
    "table4": run_table4,
    "figure7": run_figure7,
    "figure8": run_figure8,
    "figure9": run_figure9,
    "validation": run_cost_model_validation,
    "all": run_all,
}

__all__ = [
    "format_value",
    "render_kv",
    "render_table",
    "ExperimentConfig",
    "IndividualOutcome",
    "IndividualRunResult",
    "continuous_runs",
    "evaluate_single_job",
    "individual_runs",
    "prepare_jobs",
    "warm_state",
    "Figure1Result",
    "run_figure1",
    "Table2Result",
    "run_table2",
    "Table3Result",
    "run_table3",
    "Figure6Result",
    "run_figure6",
    "Table4Result",
    "run_table4",
    "Figure7Result",
    "run_figure7",
    "Figure8Result",
    "run_figure8",
    "Figure9Result",
    "run_figure9",
    "ValidationResult",
    "run_cost_model_validation",
    "SummaryResult",
    "run_all",
    "rows_to_csv",
    "sweep",
    "EXPERIMENT_RUNNERS",
    "FAULT_REGIMES",
    "FaultRegime",
    "TOURNAMENT_WORKLOADS",
    "TournamentCell",
    "TournamentReport",
    "run_tournament",
]
