"""Figure 6 — execution-time gains across communication mixes (§6.2).

Five experiment sets vary the compute/communication split and the
collective patterns per communication-intensive job:

====  ===================================  paper mean gain (Theta)
A     67% compute, 33% RHVD                5.89%
B     50% compute, 50% RHVD                8.92%
C     30% compute, 70% RHVD                12.49%
D     50% compute, 15% RD + 35% binomial   7.94%
E     30% compute, 21% RD + 49% binomial   11.11%
====  ===================================  =======================

The qualitative claims to reproduce: gains grow with the communication
fraction (A < B < C and D < E), and RHVD-dominated mixes beat RD +
binomial at equal communication fraction (B > D, C > E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..scheduler.metrics import percent_improvement
from ..workloads.classify import EXPERIMENT_SETS
from ..analysis.ascii_plot import bar_chart
from .report import render_table
from .runner import ExperimentConfig, continuous_runs

__all__ = ["PAPER_FIGURE6_MEAN_GAIN", "Figure6Result", "run_figure6"]

#: Paper-quoted mean execution-time improvements per set, per log (%).
PAPER_FIGURE6_MEAN_GAIN: Dict[str, Dict[str, float]] = {
    "theta": {"A": 5.89, "B": 8.92, "C": 12.49, "D": 7.94, "E": 11.11},
    "intrepid": {"A": 2.59, "B": 3.92, "C": 5.49, "D": 3.71, "E": 5.19},
    "mira": {"A": 7.20, "B": 10.90, "C": 15.27, "D": 6.68, "E": 9.36},
}

SET_ORDER = ("A", "B", "C", "D", "E")


@dataclass
class Figure6Result:
    """Mix-sweep (§6.2) improvements per pattern set, per allocator."""
    log: str
    #: {set: {allocator: % exec improvement over default}}
    improvements: Dict[str, Dict[str, float]]

    def mean_gain(self, set_name: str) -> float:
        """Mean improvement over the three job-aware allocators."""
        vals = [
            v
            for k, v in self.improvements[set_name].items()
            if k != "default"
        ]
        return sum(vals) / len(vals) if vals else 0.0

    def render(self) -> str:
        """ASCII table of percent improvements per pattern set."""
        headers = ["set", "greedy %", "balanced %", "adaptive %", "mean %", "paper mean %"]
        paper = PAPER_FIGURE6_MEAN_GAIN.get(self.log, {})
        rows = []
        for s in SET_ORDER:
            if s not in self.improvements:
                continue
            imp = self.improvements[s]
            rows.append(
                [
                    s,
                    imp.get("greedy", 0.0),
                    imp.get("balanced", 0.0),
                    imp.get("adaptive", 0.0),
                    self.mean_gain(s),
                    paper.get(s, "-"),
                ]
            )
        table = render_table(
            headers,
            rows,
            title=f"Figure 6: % execution-time reduction by mix ({self.log})",
        )
        bars = bar_chart(
            {s: self.mean_gain(s) for s in SET_ORDER if s in self.improvements},
            title="mean % reduction per experiment set:",
            unit="%",
        )
        return f"{table}\n{bars}"


def run_figure6(
    *,
    log: str = "theta",
    n_jobs: int = 1000,
    percent_comm: float = 90.0,
    seed: int = 0,
    sets: Tuple[str, ...] = SET_ORDER,
) -> Figure6Result:
    """Run sets A-E on one log; % improvements are over total exec hours."""
    improvements: Dict[str, Dict[str, float]] = {}
    for set_name in sets:
        mix = EXPERIMENT_SETS[set_name]
        cfg = ExperimentConfig(
            log=log,
            n_jobs=n_jobs,
            percent_comm=percent_comm,
            mix=mix,
            seed=seed,
        )
        results = continuous_runs(cfg)
        base = results["default"].total_execution_hours
        improvements[set_name] = {
            name: percent_improvement(base, res.total_execution_hours)
            for name, res in results.items()
        }
    return Figure6Result(log=log, improvements=improvements)
