"""Figure 8 — communication cost by requested-node range (§6.4).

Continuous runs with 90% communication-intensive jobs, all using the
binomial pattern; the Eq. 6 cost of every communication-intensive job
is bucketed by its requested node count and averaged per allocator.
Paper claims to reproduce: every job-aware allocator's cost sits at or
below the default's in (almost) every bucket, with average reductions
around 3.4% for greedy and ~11% for balanced/adaptive; per-pattern
average reductions of roughly 5-6% (Intrepid, Mira) and 16-18% (Theta).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..scheduler.metrics import percent_improvement
from ..workloads.classify import single_pattern_mix
from .report import render_table
from .runner import ExperimentConfig, continuous_runs

__all__ = ["PAPER_FIGURE8_AVG_REDUCTION", "Figure8Result", "run_figure8"]

#: §6.4: average cost reduction over all algorithms per (log, pattern), %.
PAPER_FIGURE8_AVG_REDUCTION: Dict[str, Dict[str, float]] = {
    "intrepid": {"rd": 5.56, "rhvd": 5.72, "binomial": 5.72},
    "theta": {"rd": 15.88, "rhvd": 17.84, "binomial": 15.87},
    "mira": {"rd": 5.48, "rhvd": 6.09, "binomial": 5.40},
}


def _bucket_edges(max_nodes: int) -> List[Tuple[int, int]]:
    """Power-of-four node-range buckets: [2,8), [8,32), [32,128), ..."""
    edges: List[Tuple[int, int]] = []
    lo = 2
    while lo <= max_nodes:
        hi = lo * 4
        edges.append((lo, hi))
        lo = hi
    return edges


@dataclass
class Figure8Result:
    """Cost-by-node-range (§6.4) mean Eq. 6 costs per bucket."""
    log: str
    pattern: str
    #: bucket label -> {allocator: mean Eq. 6 cost}
    buckets: Dict[str, Dict[str, float]]
    #: {allocator: mean % cost reduction vs default over comm jobs}
    avg_reduction: Dict[str, float]

    def render(self) -> str:
        """ASCII table of mean Eq. 6 cost per node-range bucket."""
        allocators = ("default", "greedy", "balanced", "adaptive")
        headers = ["node range", *allocators]
        rows: List[List[object]] = []
        for label, costs in self.buckets.items():
            rows.append([label, *(costs.get(a, float("nan")) for a in allocators)])
        table = render_table(
            headers,
            rows,
            title=f"Figure 8: mean communication cost by node range ({self.log}, {self.pattern})",
        )
        reductions = ", ".join(
            f"{a}: {self.avg_reduction.get(a, 0.0):.1f}%" for a in allocators[1:]
        )
        paper = PAPER_FIGURE8_AVG_REDUCTION.get(self.log, {}).get(self.pattern)
        paper_s = f" (paper avg over algorithms: {paper:.1f}%)" if paper else ""
        return f"{table}\nAvg cost reduction vs default — {reductions}{paper_s}"


def run_figure8(
    *,
    log: str = "intrepid",
    pattern: str = "binomial",
    n_jobs: int = 1000,
    percent_comm: float = 90.0,
    comm_fraction: float = 0.70,
    seed: int = 0,
) -> Figure8Result:
    """Bucketed Eq. 6 costs for one log under one pattern."""
    cfg = ExperimentConfig(
        log=log,
        n_jobs=n_jobs,
        percent_comm=percent_comm,
        mix=single_pattern_mix(pattern, comm_fraction),
        seed=seed,
    )
    results = continuous_runs(cfg)

    # per-allocator arrays over the same comm-intensive job ids
    base = results["default"]
    comm_ids = [r.job.job_id for r in base.records if r.job.is_comm_intensive]
    sizes = {r.job.job_id: r.job.nodes for r in base.records}
    costs: Dict[str, Dict[int, float]] = {
        name: {r.job.job_id: r.total_cost_jobaware for r in res.records}
        for name, res in results.items()
    }

    max_nodes = max(sizes[j] for j in comm_ids)
    buckets: Dict[str, Dict[str, float]] = {}
    for lo, hi in _bucket_edges(max_nodes):
        ids = [j for j in comm_ids if lo <= sizes[j] < hi]
        if not ids:
            continue
        label = f"{lo}-{hi - 1}"
        buckets[label] = {
            name: float(np.mean([per_job[j] for j in ids]))
            for name, per_job in costs.items()
        }

    avg_reduction: Dict[str, float] = {}
    base_costs = np.array([costs["default"][j] for j in comm_ids])
    for name, per_job in costs.items():
        if name == "default":
            continue
        cand = np.array([per_job[j] for j in comm_ids])
        total_base = float(base_costs.sum())
        avg_reduction[name] = percent_improvement(total_base, float(cand.sum()))
    return Figure8Result(
        log=log, pattern=pattern, buckets=buckets, avg_reduction=avg_reduction
    )
