"""The observability runtime: hot-path hooks and process-global state.

This module is what the instrumented code imports. It owns three
process-global slots, each opt-in and independently installable:

* a :class:`PerfRecorder` (via :func:`collecting`) — counters and
  re-entrant wall-clock timers, exactly the PR 4 perf layer
  (``repro.perf`` now re-exports from here);
* a :class:`~repro.obs.tracing.SpanTracer` (via :func:`tracing`) —
  every :func:`timer` call site also emits a nested span while a
  tracer is installed, with no call-site changes;
* a :class:`~repro.obs.progress.ProgressReporter` (via
  :func:`progressing`) — the engine and the task executor feed it
  heartbeat updates; :func:`progress` is the accessor they poll.

With nothing installed (the default), :func:`count` is one global read
plus a falsy check and :func:`timer` returns a shared do-nothing
context manager — the instrumentation costs nothing measurable, which
is what keeps the PR 4 bit-identity equivalence suites and the 2x
throughput gate indifferent to this module's existence.

Timers are *nestable*: the same timer name may be entered re-entrantly
(e.g. the adaptive allocator pricing candidates inside the cost-kernel
timer that its own callees also enter) and only the outermost entry
accumulates, so a timer never double-counts its own nested spans.
Distinct names nest freely and report inclusive time. Spans, by
contrast, record *every* entry (each re-entrant entry is its own span,
nested under the previous one) — the tracer wants the tree, the
recorder wants unskewed totals.

Perf reports are diagnostics, not results: they are intentionally kept
out of ``dump_result`` serialization so saved results stay byte-stable
across machines (CI diffs them). Engine-owned recorders *are* carried
through engine checkpoints (via :meth:`PerfRecorder.state_dict` /
:meth:`PerfRecorder.from_state`) so a resumed ``--perf`` run reports
whole-run numbers, not just the post-resume tail. See
``docs/observability.md``.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Dict, Iterator, Optional

try:  # pragma: no cover - absent only on non-POSIX platforms
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .progress import ProgressReporter
    from .tracing import SpanTracer

__all__ = [
    "PerfRecorder",
    "active",
    "collecting",
    "count",
    "peak_rss_bytes",
    "timer",
    "tracer",
    "tracing",
    "progress",
    "progressing",
]


def peak_rss_bytes() -> int:
    """Lifetime peak resident set size of this process, in bytes.

    Backed by ``getrusage(RUSAGE_SELF).ru_maxrss`` — kilobytes on Linux,
    bytes on macOS, normalized to bytes here. This is the *high-water
    mark* since process start, not current usage: it only ever grows, so
    measuring the footprint of one phase needs a fresh process (the
    memory-gate benchmark runs its ladder rungs in subprocesses for
    exactly this reason). Returns 0 where ``resource`` is unavailable.
    """
    if resource is None:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return int(peak)
    return int(peak) * 1024


class PerfRecorder:
    """Counter + timer accumulator for one measured span."""

    __slots__ = ("counters", "_timers", "_depth", "_t0", "_elapsed_base")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self._timers: Dict[str, list] = {}  # name -> [seconds, outermost calls]
        self._depth: Dict[str, int] = {}
        self._t0 = time.perf_counter()
        # Elapsed seconds accumulated before _t0 — nonzero only on a
        # recorder restored from a checkpoint, so snapshot() reports
        # whole-run elapsed time across a pause/resume boundary.
        self._elapsed_base = 0.0

    def count(self, name: str, n: float = 1) -> None:
        """Add ``n`` to counter ``name`` (created on first use)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def timer(self, name: str) -> "_Span":
        """Accumulate wall time under ``name`` (re-entrant safe)."""
        return _Span(self, name)

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict report: counters, timers, and derived rates."""
        elapsed = self._elapsed_base + (time.perf_counter() - self._t0)
        timers = {
            name: {"seconds": cell[0], "calls": cell[1]}
            for name, cell in sorted(self._timers.items())
        }
        derived: Dict[str, float] = {"elapsed_seconds": elapsed}
        rss = peak_rss_bytes()
        if rss:
            derived["peak_rss_bytes"] = float(rss)
        events = self.counters.get("engine.events")
        if events and elapsed > 0:
            derived["events_per_sec"] = events / elapsed
        jobs = self.counters.get("engine.jobs_started")
        if jobs and elapsed > 0:
            derived["jobs_per_sec"] = jobs / elapsed
        return {
            "counters": dict(sorted(self.counters.items())),
            "timers": timers,
            "derived": derived,
        }

    def state_dict(self) -> Dict[str, Any]:
        """Checkpointable state: counters, timers, and elapsed so far.

        Open timer entries are *not* carried (a checkpoint is written
        between event batches, when no hot-path timer is open), so the
        restored recorder starts with a clean depth map.
        """
        return {
            "counters": dict(sorted(self.counters.items())),
            "timers": {
                name: [cell[0], cell[1]]
                for name, cell in sorted(self._timers.items())
            },
            "elapsed_seconds": self._elapsed_base
            + (time.perf_counter() - self._t0),
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "PerfRecorder":
        """Rebuild a recorder from :meth:`state_dict` (resume path)."""
        rec = cls()
        rec.counters = {str(k): v for k, v in state.get("counters", {}).items()}
        rec._timers = {
            str(name): [float(cell[0]), int(cell[1])]
            for name, cell in state.get("timers", {}).items()
        }
        rec._elapsed_base = float(state.get("elapsed_seconds", 0.0))
        return rec


class _Span:
    """One ``with``-entry of a named timer.

    A slotted object with hand-written ``__enter__``/``__exit__`` —
    timers sit on per-job hot paths, where the generator-based
    ``contextlib`` machinery costs several times more per entry. Each
    :meth:`PerfRecorder.timer` call makes a fresh span so re-entrant
    entries of the same name keep their own start times; only the
    outermost entry (depth 0) accumulates.
    """

    __slots__ = ("_rec", "_name", "_t0")

    def __init__(self, rec: PerfRecorder, name: str) -> None:
        self._rec = rec
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> None:
        rec = self._rec
        depth = rec._depth.get(self._name, 0)
        rec._depth[self._name] = depth + 1
        if depth == 0:
            self._t0 = time.perf_counter()
        return None

    def __exit__(self, *exc: object) -> bool:
        rec = self._rec
        name = self._name
        depth = rec._depth[name] - 1
        rec._depth[name] = depth
        if depth == 0:
            cell = rec._timers.setdefault(name, [0.0, 0])
            cell[0] += time.perf_counter() - self._t0
            cell[1] += 1
        return False


class _TimedSpan:
    """A :func:`timer` entry while a tracer is installed.

    Opens a tracer span and (when a recorder is also installed) the
    recorder timer for the same name, pairing enters and exits so the
    two layers never drift. Only constructed on the traced path — the
    untraced paths keep their cheaper objects.
    """

    __slots__ = ("_tracer", "_timer")

    def __init__(
        self, tracer: "SpanTracer", rec_timer: Optional[_Span]
    ) -> None:
        self._tracer = tracer
        self._timer = rec_timer

    def __enter__(self) -> None:
        if self._timer is not None:
            self._timer.__enter__()
        return None

    def __exit__(self, *exc: object) -> bool:
        self._tracer.finish()
        if self._timer is not None:
            self._timer.__exit__(*exc)
        return False


class _NullTimer:
    """Reusable do-nothing context manager for the tracing-off path.

    A plain object with empty ``__enter__``/``__exit__`` is several times
    cheaper than instantiating a generator-based context manager per
    call, and ``timer`` sits on per-job hot paths.
    """

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_TIMER = _NullTimer()

_active: Optional[PerfRecorder] = None
_tracer: Optional["SpanTracer"] = None
_progress: Optional["ProgressReporter"] = None


def active() -> Optional[PerfRecorder]:
    """The installed recorder, or ``None`` (counters/timers off)."""
    return _active


def tracer() -> Optional["SpanTracer"]:
    """The installed span tracer, or ``None`` (tracing off)."""
    return _tracer


def progress() -> Optional["ProgressReporter"]:
    """The installed progress reporter, or ``None`` (no heartbeat)."""
    return _progress


@contextmanager
def collecting(recorder: Optional[PerfRecorder] = None) -> Iterator[PerfRecorder]:
    """Install ``recorder`` (a fresh one by default) for the duration."""
    global _active
    previous = _active
    rec = recorder if recorder is not None else PerfRecorder()
    _active = rec
    try:
        yield rec
    finally:
        _active = previous


@contextmanager
def tracing(span_tracer: Optional["SpanTracer"] = None) -> Iterator["SpanTracer"]:
    """Install ``span_tracer`` (a fresh one by default) for the duration."""
    global _tracer
    from .tracing import SpanTracer

    previous = _tracer
    trc = span_tracer if span_tracer is not None else SpanTracer()
    _tracer = trc
    try:
        yield trc
    finally:
        _tracer = previous


@contextmanager
def progressing(reporter: "ProgressReporter") -> Iterator["ProgressReporter"]:
    """Install ``reporter`` for the duration (finished on exit)."""
    global _progress
    previous = _progress
    _progress = reporter
    try:
        yield reporter
    finally:
        _progress = previous
        reporter.finish()


def count(name: str, n: float = 1) -> None:
    """Bump a counter on the installed recorder; no-op when tracing is off."""
    rec = _active
    if rec is not None:
        rec.count(name, n)


def timer(name: str):
    """Time a block on the installed recorder and/or span tracer.

    A single hook with three costs: with neither layer installed it
    returns a shared no-op object; with only a recorder it returns the
    recorder's re-entrant timer; with a tracer it opens a span *now*
    (so the span tree reflects call order even before ``__enter__``)
    and pairs the recorder timer with it if one is installed too.
    """
    rec = _active
    trc = _tracer
    if trc is None:
        if rec is None:
            return _NULL_TIMER
        return rec.timer(name)
    trc.start(name)
    return _TimedSpan(trc, rec.timer(name) if rec is not None else None)
