"""Live run progress: a throttled heartbeat for long simulations.

A 100k-job replay runs for minutes with no output at all; a large
experiment sweep runs for longer. :class:`ProgressReporter` gives both
a heartbeat on stderr (by default) without perturbing results:

* the engine calls :meth:`engine_batch` once per event batch — events
  processed, jobs finished, and the simulation clock, with an ETA
  extrapolated from the jobs fraction when the total is known;
* the task executor and the experiment runners call
  :meth:`task_update` as cells complete — done/total with the most
  recent cell's key.

Updates are rate-limited to one line per ``interval`` seconds of wall
time (measured with an injectable clock, so tests don't sleep), and
:meth:`finish` always emits a final line so short runs still report.
Lines are plain, newline-terminated text — safe for logs and CI
output, no terminal control codes.

Install a reporter process-wide with :func:`repro.obs.progressing`;
the instrumented call sites poll :func:`repro.obs.progress` and do
nothing when no reporter is installed.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Callable, Optional, TextIO

__all__ = ["ProgressReporter", "format_eta"]


def format_eta(seconds: float) -> str:
    """Compact ``1h02m`` / ``4m07s`` / ``12s`` rendering of a duration."""
    seconds = max(0.0, seconds)
    if seconds >= 3600:
        hours, rem = divmod(int(seconds + 0.5), 3600)
        return f"{hours}h{rem // 60:02d}m"
    if seconds >= 60:
        minutes, rem = divmod(int(seconds + 0.5), 60)
        return f"{minutes}m{rem:02d}s"
    return f"{seconds:.0f}s"


class ProgressReporter:
    """Throttled progress lines for engine runs and task batches.

    ``interval`` is the minimum wall-clock spacing between emitted
    lines; ``total_jobs`` (when known) enables the percent and ETA
    fields. ``clock`` and ``stream`` are injectable for tests.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        interval: float = 1.0,
        total_jobs: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval < 0:
            raise ValueError(f"interval must be >= 0, got {interval}")
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self.total_jobs = total_jobs
        self._clock = clock
        self._started = clock()
        self._last_emit: Optional[float] = None
        self._last_line = ""
        self.lines_emitted = 0
        # most recent engine observation, re-rendered by finish()
        self._engine_state: Optional[tuple] = None
        self._events_total = 0
        self._task_state: Optional[tuple] = None
        self._finished = False

    # ------------------------------------------------------------------
    # reporting entry points
    # ------------------------------------------------------------------

    def engine_batch(
        self, sim_time: float, n_events: int, jobs_finished: int
    ) -> None:
        """One engine event batch: advance totals, maybe emit a line."""
        self._events_total += n_events
        self._engine_state = (sim_time, jobs_finished)
        if self._should_emit():
            self._emit(self._engine_line())

    def task_update(self, done: int, total: int, key: Any = None) -> None:
        """One completed task/cell out of ``total``; ``key`` names it."""
        self._task_state = (done, total, key)
        if self._should_emit():
            self._emit(self._task_line())

    def finish(self) -> None:
        """Emit the final state unconditionally (idempotent)."""
        if self._finished:
            return
        self._finished = True
        line = None
        if self._task_state is not None:
            line = self._task_line()
        elif self._engine_state is not None:
            line = self._engine_line(final=True)
        if line is not None and line != self._last_line:
            self._emit(line)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def _should_emit(self) -> bool:
        now = self._clock()
        if self._last_emit is not None and now - self._last_emit < self.interval:
            return False
        return True

    def _emit(self, line: str) -> None:
        self._last_emit = self._clock()
        self._last_line = line
        self.lines_emitted += 1
        self.stream.write(line + "\n")
        try:
            self.stream.flush()
        except (AttributeError, ValueError):  # closed or flushless stream
            pass

    def _engine_line(self, final: bool = False) -> str:
        assert self._engine_state is not None
        sim_time, jobs_finished = self._engine_state
        elapsed = self._clock() - self._started
        parts = [
            f"progress: events={self._events_total}",
            f"jobs={jobs_finished}"
            + (f"/{self.total_jobs}" if self.total_jobs else ""),
            f"sim_clock={sim_time:.0f}s",
            f"elapsed={format_eta(elapsed)}",
        ]
        if self.total_jobs and jobs_finished > 0 and not final:
            fraction = min(1.0, jobs_finished / self.total_jobs)
            if 0 < fraction < 1:
                eta = elapsed * (1 - fraction) / fraction
                parts.append(f"eta={format_eta(eta)}")
        if final:
            parts.append("done")
        return "  ".join(parts)

    def _task_line(self) -> str:
        assert self._task_state is not None
        done, total, key = self._task_state
        elapsed = self._clock() - self._started
        parts = [
            f"progress: tasks={done}/{total}",
            f"elapsed={format_eta(elapsed)}",
        ]
        if 0 < done < total:
            eta = elapsed * (total - done) / done
            parts.append(f"eta={format_eta(eta)}")
        if key is not None:
            parts.append(f"last={key}")
        return "  ".join(parts)
