"""Span tracing: nested, deterministic-id wall-clock spans.

A :class:`SpanTracer` records *spans* — named wall-clock intervals with
parent/child nesting — for one traced region (typically a whole
simulation). It is wired into the same hot-path hooks as the perf
recorder (:mod:`repro.obs.runtime`): installing a tracer via
:func:`repro.obs.tracing` makes every ``timer(...)`` site in the
engine, the allocators, and the Eq. 6 cost kernel emit a span, with no
call-site changes and no cost at all while no tracer is installed.

Design constraints, in order:

* **Determinism of structure.** Span ids are a plain sequence counter
  assigned at span *start*; parent ids come from the tracer's open-span
  stack. Two runs of the same workload produce the same tree of
  ``(span_id, parent_id, name)`` triples — only the timestamps differ.
  (Timestamps are diagnostics; results never depend on them.)
* **Re-entrancy.** The same span name may be opened inside itself (the
  adaptive allocator prices candidates inside ``cost.kernel`` whose
  callees also enter it); every entry is its own span, nested under the
  previous one.
* **Bounded memory.** ``max_spans`` caps retention; spans beyond the
  cap are counted in ``dropped`` (the stack still tracks them so
  nesting of retained spans stays correct).

Spans serialize to JSONL — one object per span, in start order — via
:meth:`SpanTracer.write_jsonl` / :func:`load_spans`, and
:func:`validate_spans` checks the well-formedness invariants consumers
may rely on (see ``docs/observability.md``).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Union

__all__ = [
    "Span",
    "SpanTracer",
    "load_spans",
    "spans_to_jsonl",
    "validate_spans",
    "span_aggregates",
]


@dataclass
class Span:
    """One named wall-clock interval in a trace.

    ``span_id`` is a 1-based sequence number in start order;
    ``parent_id`` is the id of the innermost span open at start time
    (0 for a root span). ``start`` / ``end`` are seconds relative to
    the tracer's epoch; ``end`` is ``None`` only while the span is
    still open.
    """

    __slots__ = ("span_id", "parent_id", "name", "start", "end")

    span_id: int
    parent_id: int
    name: str
    start: float
    end: Optional[float]

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation (the JSONL line payload)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
        }


class SpanTracer:
    """Collects nested spans for one traced region.

    Use :func:`repro.obs.tracing` to install a tracer process-wide so
    the instrumented hot paths report into it, or drive it directly:

    >>> tracer = SpanTracer()
    >>> with tracer.span("outer"):
    ...     with tracer.span("inner"):
    ...         pass
    >>> [s.name for s in tracer.spans]
    ['outer', 'inner']
    >>> tracer.spans[1].parent_id
    1
    """

    def __init__(
        self,
        max_spans: int = 200_000,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if max_spans <= 0:
            raise ValueError(f"max_spans must be > 0, got {max_spans}")
        self.max_spans = max_spans
        self._clock = clock
        self.epoch = clock()
        #: completed and open spans, in start order
        self.spans: List[Span] = []
        #: spans discarded after ``max_spans`` was reached
        self.dropped = 0
        self._stack: List[Optional[Span]] = []
        self._next_id = 1

    def __len__(self) -> int:
        return len(self.spans)

    def start(self, name: str) -> Optional[Span]:
        """Open a span named ``name`` under the current innermost span.

        Returns ``None`` when the retention cap is reached (the entry
        is still tracked on the stack so :meth:`finish` stays paired).
        """
        now = self._clock() - self.epoch
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            self._stack.append(None)
            return None
        parent = 0
        for open_span in reversed(self._stack):
            if open_span is not None:
                parent = open_span.span_id
                break
        span = Span(self._next_id, parent, name, now, None)
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return span

    def finish(self) -> None:
        """Close the innermost open span (LIFO; spans never interleave)."""
        if not self._stack:
            raise RuntimeError("finish() with no open span")
        span = self._stack.pop()
        if span is not None:
            span.end = self._clock() - self.epoch

    @contextmanager
    def span(self, name: str) -> Iterator[Optional[Span]]:
        """Context manager: one span around the ``with`` body."""
        handle = self.start(name)
        try:
            yield handle
        finally:
            self.finish()

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def to_dicts(self) -> List[Dict[str, Any]]:
        """All spans as plain dicts, in start order."""
        return [s.to_dict() for s in self.spans]

    def write_jsonl(self, path: Union[str, "os.PathLike"]) -> None:
        """Atomically write the trace as JSONL (one span per line)."""
        from ..runs.atomic import atomic_write_text

        atomic_write_text(path, spans_to_jsonl(self.spans))


def spans_to_jsonl(spans: Sequence[Span]) -> str:
    """Serialize spans as JSONL text (one compact object per line)."""
    lines = [
        json.dumps(s.to_dict(), separators=(",", ":"), sort_keys=True)
        for s in spans
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def load_spans(path: Union[str, "os.PathLike"]) -> List[Span]:
    """Read a span-trace JSONL file written by :meth:`SpanTracer.write_jsonl`.

    Raises ``ValueError`` on a malformed line; an empty file yields an
    empty list.
    """
    spans: List[Span] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                spans.append(
                    Span(
                        span_id=int(data["span_id"]),
                        parent_id=int(data["parent_id"]),
                        name=str(data["name"]),
                        start=float(data["start"]),
                        end=None if data["end"] is None else float(data["end"]),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{lineno}: malformed span line: {exc}")
    return spans


def validate_spans(spans: Sequence[Span]) -> None:
    """Check the structural invariants of a finished span trace.

    * ids are 1..N in order (start order);
    * every parent id names an earlier span (or 0 for roots);
    * every span is closed, with ``end >= start``;
    * a child lies within its parent's interval (strict nesting).

    Raises ``ValueError`` naming the first violation.
    """
    by_id: Dict[int, Span] = {}
    for position, span in enumerate(spans, start=1):
        if span.span_id != position:
            raise ValueError(
                f"span ids must be 1..N in order: position {position} "
                f"holds id {span.span_id}"
            )
        if span.end is None:
            raise ValueError(f"span {span.span_id} ({span.name!r}) never closed")
        if span.end < span.start:
            raise ValueError(
                f"span {span.span_id} ({span.name!r}) ends before it starts"
            )
        if span.parent_id:
            parent = by_id.get(span.parent_id)
            if parent is None:
                raise ValueError(
                    f"span {span.span_id} ({span.name!r}) names unknown "
                    f"parent {span.parent_id}"
                )
            assert parent.end is not None
            if span.start < parent.start or span.end > parent.end:
                raise ValueError(
                    f"span {span.span_id} ({span.name!r}) escapes its "
                    f"parent {parent.span_id} ({parent.name!r})"
                )
        by_id[span.span_id] = span


def span_aggregates(spans: Sequence[Span]) -> Dict[str, Dict[str, float]]:
    """Per-name rollup of a span trace: calls, total/self seconds, depth.

    ``self_seconds`` excludes time covered by *direct* children, so the
    per-name numbers sum to wall time without double counting (up to
    clock granularity). Used by ``repro-sched obs render``.
    """
    by_id = {s.span_id: s for s in spans}
    child_seconds: Dict[int, float] = {}
    depth: Dict[int, int] = {}
    for span in spans:
        depth[span.span_id] = (
            depth[span.parent_id] + 1 if span.parent_id in depth else 0
        )
        if span.parent_id in by_id:
            child_seconds[span.parent_id] = (
                child_seconds.get(span.parent_id, 0.0) + span.duration
            )
    out: Dict[str, Dict[str, float]] = {}
    for span in spans:
        cell = out.setdefault(
            span.name,
            {"calls": 0.0, "seconds": 0.0, "self_seconds": 0.0, "max_depth": 0.0},
        )
        cell["calls"] += 1
        cell["seconds"] += span.duration
        cell["self_seconds"] += span.duration - child_seconds.get(span.span_id, 0.0)
        cell["max_depth"] = max(cell["max_depth"], float(depth[span.span_id]))
    return out
