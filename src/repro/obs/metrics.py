"""Structured metrics: a registry of counters, gauges, and histograms.

:class:`MetricsRegistry` is the exposition half of the observability
subsystem. The hot paths never touch it — they report through the
near-free hooks in :mod:`repro.obs.runtime` — and at the end of a run
the collected counters, engine stats, and per-job records are folded
into a registry (:func:`repro.obs.render.metrics_from_result`), which
then renders in two interchange formats:

* **Prometheus text exposition** (:meth:`MetricsRegistry.render_prometheus`)
  — the ``# HELP`` / ``# TYPE`` / sample-line format every scraping
  stack understands, histograms as cumulative ``_bucket`` series with
  ``_sum`` / ``_count``;
* **JSONL** (:meth:`MetricsRegistry.to_jsonl`) — one self-contained
  JSON object per metric family child, for ad-hoc analysis with
  ``jq`` / pandas.

:func:`parse_prometheus` is the matching reader: it parses (and
thereby validates) the exposition text back into samples. CI uses it
as the exposition-format check, and ``repro-sched obs render`` uses it
to summarize a dump.

Metric and label names are validated against the Prometheus grammar at
registration time, so an invalid name fails fast at the call site, not
in the scraper.
"""

from __future__ import annotations

import bisect
import json
import math
import re
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PromParseError",
    "PromSample",
    "parse_prometheus",
    "DEFAULT_SECONDS_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets for second-valued observations: wide
#: exponential coverage from sub-millisecond spans to multi-day waits.
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 600.0, 3600.0, 14400.0, 86400.0,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _check_labels(labels: Sequence[str]) -> Tuple[str, ...]:
    for label in labels:
        if not _LABEL_RE.match(label) or label.startswith("__"):
            raise ValueError(f"invalid label name {label!r}")
    return tuple(labels)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Prometheus-style number: integral values without the trailing .0."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Shared family machinery: name, help, labels, children by key."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str] = (),
        unit: str = "",
    ) -> None:
        self.name = _check_name(name)
        self.help = help_text
        self.label_names = _check_labels(labels)
        self.unit = unit
        self._children: Dict[Tuple[str, ...], Any] = {}

    def labels(self, **labelvalues: str):
        """The child for one label combination (created on first use)."""
        if set(labelvalues) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._new_child()
            self._children[key] = child
        return child

    def _default_child(self):
        if self.label_names:
            raise ValueError(
                f"metric {self.name!r} is labelled {self.label_names}; "
                "use .labels(...)"
            )
        return self.labels()

    def _new_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def _samples(self) -> Iterable[Tuple[str, Tuple[Tuple[str, str], ...], float]]:
        """Yield ``(suffixed_name, label_pairs, value)`` exposition rows."""
        raise NotImplementedError  # pragma: no cover - overridden

    def _sorted_children(self):
        return sorted(self._children.items())


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; inc({amount})")
        self.value += amount


class Counter(_Metric):
    """Monotonically increasing value (events, jobs, cache hits)."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabelled child (label-free families only)."""
        self._default_child().inc(amount)

    def _samples(self):
        for key, child in self._sorted_children():
            yield self.name, tuple(zip(self.label_names, key)), child.value


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Gauge(_Metric):
    """Point-in-time value that can go either way (queue depth, hours)."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        """Set the unlabelled child (label-free families only)."""
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the label-free child."""
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the label-free child."""
        self._default_child().dec(amount)

    def _samples(self):
        for key, child in self._sorted_children():
            yield self.name, tuple(zip(self.label_names, key)), child.value


class _HistogramChild:
    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.total += value
        self.count += 1
        # counts are per-bucket (not cumulative); exposition cumsums.
        index = bisect.bisect_left(self.buckets, value)
        if index < len(self.counts):
            self.counts[index] += 1


class Histogram(_Metric):
    """Distribution with fixed upper-bound buckets (waits, costs, sizes)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str] = (),
        unit: str = "",
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labels, unit)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        self.buckets = bounds

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        """Observe into the unlabelled child (label-free families only)."""
        self._default_child().observe(value)

    def _samples(self):
        for key, child in self._sorted_children():
            pairs = tuple(zip(self.label_names, key))
            cumulative = 0
            for bound, count in zip(child.buckets, child.counts):
                cumulative += count
                yield (
                    self.name + "_bucket",
                    pairs + (("le", _format_value(bound)),),
                    float(cumulative),
                )
            yield self.name + "_bucket", pairs + (("le", "+Inf"),), float(child.count)
            yield self.name + "_sum", pairs, child.total
            yield self.name + "_count", pairs, float(child.count)


class MetricsRegistry:
    """A namespace of metric families with deterministic exposition.

    >>> reg = MetricsRegistry(namespace="repro")
    >>> jobs = reg.counter("jobs_total", "Jobs finished", labels=("allocator",))
    >>> jobs.labels(allocator="adaptive").inc(3)
    >>> print(reg.render_prometheus().splitlines()[2])
    repro_jobs_total{allocator="adaptive"} 3

    Families render sorted by name and children sorted by label values,
    so two registries built from the same data expose byte-identical
    text — the property the CI determinism checks lean on.
    """

    def __init__(self, namespace: str = "repro") -> None:
        if namespace and not _NAME_RE.match(namespace):
            raise ValueError(f"invalid namespace {namespace!r}")
        self.namespace = namespace
        self._families: Dict[str, _Metric] = {}

    def _full_name(self, name: str) -> str:
        return f"{self.namespace}_{name}" if self.namespace else name

    def _register(self, metric: _Metric) -> _Metric:
        existing = self._families.get(metric.name)
        if existing is not None:
            if type(existing) is not type(metric):
                raise ValueError(
                    f"metric {metric.name!r} already registered as "
                    f"{existing.kind}"
                )
            return existing
        self._families[metric.name] = metric
        return metric

    def counter(
        self, name: str, help_text: str, labels: Sequence[str] = (), unit: str = ""
    ) -> Counter:
        """Register (or fetch) a counter family under the namespace."""
        return self._register(Counter(self._full_name(name), help_text, labels, unit))

    def gauge(
        self, name: str, help_text: str, labels: Sequence[str] = (), unit: str = ""
    ) -> Gauge:
        """Register (or fetch) a gauge family under the namespace."""
        return self._register(Gauge(self._full_name(name), help_text, labels, unit))

    def histogram(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str] = (),
        unit: str = "",
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        """Register (or fetch) a histogram family under the namespace."""
        return self._register(
            Histogram(self._full_name(name), help_text, labels, unit, buckets)
        )

    def families(self) -> List[_Metric]:
        """All registered families, sorted by name."""
        return [self._families[name] for name in sorted(self._families)]

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------

    def render_prometheus(self) -> str:
        """The registry as Prometheus text exposition format (0.0.4)."""
        lines: List[str] = []
        for family in self.families():
            help_text = family.help.replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {family.name} {help_text}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for name, pairs, value in family._samples():
                if pairs:
                    rendered = ",".join(
                        f'{label}="{_escape_label_value(val)}"'
                        for label, val in pairs
                    )
                    lines.append(f"{name}{{{rendered}}} {_format_value(value)}")
                else:
                    lines.append(f"{name} {_format_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_jsonl(self) -> str:
        """One JSON object per family child (histograms keep structure)."""
        lines: List[str] = []
        for family in self.families():
            for key, child in family._sorted_children():
                entry: Dict[str, Any] = {
                    "name": family.name,
                    "type": family.kind,
                    "labels": dict(zip(family.label_names, key)),
                }
                if family.unit:
                    entry["unit"] = family.unit
                if family.kind == "histogram":
                    cumulative = 0
                    buckets = {}
                    for bound, count in zip(child.buckets, child.counts):
                        cumulative += count
                        buckets[_format_value(bound)] = cumulative
                    buckets["+Inf"] = child.count
                    entry["buckets"] = buckets
                    entry["sum"] = child.total
                    entry["count"] = child.count
                else:
                    entry["value"] = child.value
                lines.append(json.dumps(entry, sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# parsing (the validation half)
# ----------------------------------------------------------------------


class PromParseError(ValueError):
    """Prometheus exposition text that violates the format."""


class PromSample:
    """One parsed sample line: name, label dict, float value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str], value: float) -> None:
        self.name = name
        self.labels = labels
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PromSample({self.name!r}, {self.labels!r}, {self.value!r})"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<label>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def _unescape_label_value(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_number(text: str, lineno: int) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError:
        raise PromParseError(f"line {lineno}: invalid sample value {text!r}")


def parse_prometheus(
    text: str,
) -> Tuple[List[PromSample], Dict[str, str]]:
    """Parse Prometheus text exposition into samples and family types.

    Returns ``(samples, types)`` where ``types`` maps family name to
    its declared ``# TYPE``. Validates sample-line syntax, label
    syntax, ``TYPE`` declarations, and (for declared histograms) that
    ``_bucket`` counts are cumulative and consistent with ``_count``.
    Raises :class:`PromParseError` on the first violation.
    """
    samples: List[PromSample] = []
    types: Dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) < 4:
                    raise PromParseError(f"line {lineno}: malformed TYPE comment")
                family, kind = parts[2], parts[3]
                if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    raise PromParseError(
                        f"line {lineno}: unknown metric type {kind!r}"
                    )
                if family in types:
                    raise PromParseError(
                        f"line {lineno}: duplicate TYPE for {family!r}"
                    )
                types[family] = kind
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise PromParseError(f"line {lineno}: malformed sample {line!r}")
        labels: Dict[str, str] = {}
        label_text = match.group("labels")
        if label_text:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(label_text):
                if pair.start() != consumed:
                    break
                labels[pair.group("label")] = _unescape_label_value(
                    pair.group("value")
                )
                consumed = pair.end()
            if consumed != len(label_text):
                raise PromParseError(
                    f"line {lineno}: malformed labels {{{label_text}}}"
                )
        samples.append(
            PromSample(
                match.group("name"),
                labels,
                _parse_number(match.group("value"), lineno),
            )
        )
    _check_histograms(samples, types)
    return samples, types


def _check_histograms(samples: List[PromSample], types: Dict[str, str]) -> None:
    """Cumulative-bucket and count consistency for declared histograms."""
    buckets: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for sample in samples:
        for family, kind in types.items():
            if kind != "histogram":
                continue
            base_labels = tuple(
                sorted((k, v) for k, v in sample.labels.items() if k != "le")
            )
            if sample.name == family + "_bucket":
                if "le" not in sample.labels:
                    raise PromParseError(
                        f"histogram {family!r} bucket sample without le label"
                    )
                le = sample.labels["le"]
                bound = math.inf if le == "+Inf" else float(le)
                buckets.setdefault((family, base_labels), []).append(
                    (bound, sample.value)
                )
            elif sample.name == family + "_count":
                counts[(family, base_labels)] = sample.value
    for (family, base_labels), series in buckets.items():
        ordered = sorted(series)
        values = [count for _, count in ordered]
        if values != sorted(values):
            raise PromParseError(
                f"histogram {family!r} buckets are not cumulative"
            )
        if ordered and ordered[-1][0] != math.inf:
            raise PromParseError(f"histogram {family!r} is missing its +Inf bucket")
        total = counts.get((family, base_labels))
        if total is not None and ordered and ordered[-1][1] != total:
            raise PromParseError(
                f"histogram {family!r}: +Inf bucket {ordered[-1][1]} != "
                f"count {total}"
            )
