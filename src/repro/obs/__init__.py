"""Observability for whole-trace simulations: metrics, spans, progress.

``repro.obs`` is the measurement subsystem layered over the scheduler.
It has four parts, all opt-in and all inert (one global read per hook)
when nothing is installed:

* :mod:`repro.obs.runtime` — the hot-path hooks (:func:`count`,
  :func:`timer`) and the process-global recorder / tracer / progress
  slots, installed with :func:`collecting`, :func:`tracing`, and
  :func:`progressing`. Absorbs the PR 4 ``repro.perf`` layer
  (``repro.perf`` remains as a compatibility shim).
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters /
  gauges / histograms with labels, Prometheus text exposition, JSONL
  export, and :func:`parse_prometheus` for validation.
* :mod:`repro.obs.tracing` — :class:`SpanTracer` recording nested,
  deterministic-id wall-clock spans; JSONL round-trip and structural
  validation.
* :mod:`repro.obs.progress` — :class:`ProgressReporter`, a throttled
  stderr heartbeat (events / jobs / sim-clock, ETA) for runs that take
  minutes.

Offline rendering lives in :mod:`repro.obs.render`:
:func:`metrics_from_result` folds a finished run into a registry (the
``--metrics-out`` writer) and :func:`render_obs_summary` is the
``repro-sched obs render`` body. The user guide, metric catalogue, and
span taxonomy are in ``docs/observability.md``.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PromParseError,
    PromSample,
    parse_prometheus,
)
from .progress import ProgressReporter
from .render import metrics_from_result, render_obs_summary, render_perf
from .runtime import (
    PerfRecorder,
    active,
    collecting,
    count,
    peak_rss_bytes,
    progress,
    progressing,
    timer,
    tracer,
    tracing,
)
from .tracing import (
    Span,
    SpanTracer,
    load_spans,
    span_aggregates,
    spans_to_jsonl,
    validate_spans,
)

__all__ = [
    # runtime hooks
    "PerfRecorder",
    "active",
    "collecting",
    "count",
    "peak_rss_bytes",
    "timer",
    "tracer",
    "tracing",
    "progress",
    "progressing",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PromParseError",
    "PromSample",
    "parse_prometheus",
    # tracing
    "Span",
    "SpanTracer",
    "load_spans",
    "spans_to_jsonl",
    "validate_spans",
    "span_aggregates",
    # progress
    "ProgressReporter",
    # rendering
    "metrics_from_result",
    "render_obs_summary",
    "render_perf",
]
