"""Turning runs into metrics, and metrics/traces into readable text.

Three layers, all offline (nothing here touches the hot paths):

* :func:`metrics_from_result` — fold a finished
  :class:`~repro.scheduler.metrics.SimulationResult` (plus its perf
  report, when collected) into a :class:`~repro.obs.metrics.MetricsRegistry`:
  the paper's §5 aggregates as gauges, per-job wait/execution/
  turnaround distributions as histograms, and every perf counter and
  timer as Prometheus counters. This is what
  ``repro-sched simulate --metrics-out`` writes.
* :func:`render_obs_summary` — the ``repro-sched obs render`` body: a
  paper-Table-style text summary of a metrics dump and/or a span
  trace, built from :func:`~repro.obs.metrics.parse_prometheus`
  samples and :func:`~repro.obs.tracing.span_aggregates`.
* :func:`render_perf` — the ``--perf`` table from PR 4, unchanged
  (``repro.perf`` re-exports it).

The metric name catalogue lives in ``docs/observability.md``; keep the
two in sync when adding families here.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from .metrics import (
    DEFAULT_SECONDS_BUCKETS,
    MetricsRegistry,
    PromSample,
)
from .tracing import Span, span_aggregates

__all__ = [
    "render_perf",
    "metrics_from_result",
    "render_obs_summary",
]

#: Buckets for per-job time distributions (seconds): minutes to days.
JOB_SECONDS_BUCKETS: Tuple[float, ...] = (
    60.0, 300.0, 900.0, 1800.0, 3600.0, 7200.0, 14400.0, 28800.0,
    86400.0, 172800.0,
)

#: Buckets for per-job Eq. 6 communication cost (dimensionless).
COST_BUCKETS: Tuple[float, ...] = (
    0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
)


def _perf_metric_name(name: str) -> str:
    """``engine.passes_full`` -> ``perf_engine_passes_full``."""
    return "perf_" + name.replace(".", "_").replace("-", "_")


def metrics_from_result(
    result: Any,
    allocator: Optional[str] = None,
    stats: Optional[Dict[str, Any]] = None,
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Build a metrics registry from one finished simulation.

    ``result`` is a :class:`~repro.scheduler.metrics.SimulationResult`;
    ``allocator`` defaults to ``result.allocator_name`` and labels every
    family; ``stats`` may carry the engine's run stats (events
    processed, batches); pass ``registry`` to accumulate several runs
    (e.g. a sweep) into one exposition.
    """
    reg = registry if registry is not None else MetricsRegistry()
    alloc = allocator if allocator is not None else getattr(
        result, "allocator_name", "unknown"
    )
    labels = ("allocator",)

    jobs = reg.counter(
        "jobs_completed_total", "Jobs that finished in the simulation",
        labels=labels,
    )
    jobs.labels(allocator=alloc).inc(len(result.records))
    unstarted = reg.gauge(
        "jobs_unstarted", "Jobs that never started before the horizon closed",
        labels=labels,
    )
    unstarted.labels(allocator=alloc).set(len(result.unstarted))

    summary = result.summary()
    summary_help = {
        "total_execution_hours": "Summed execution time, hours (paper Table 3)",
        "total_wait_hours": "Summed wait time, hours (paper Table 3)",
        "avg_turnaround_hours": "Mean turnaround, hours (paper Fig. 9)",
        "avg_node_hours": "Mean node-hours per job (paper Fig. 9)",
        "makespan_hours": "Time to last completion, hours",
        "mean_cost_jobaware": "Mean Eq. 6 cost over comm-intensive jobs (paper Fig. 8)",
        "mean_bounded_slowdown": "Mean bounded slowdown (BSLD, tau=10s)",
        "failed_jobs": "Jobs abandoned after a failure",
        "total_requeues": "Failure-triggered restarts across all jobs",
        "wasted_node_hours": "Node-hours burned by interrupted runs",
        "goodput_node_hours": "Node-hours of completed final runs",
    }
    for key, help_text in summary_help.items():
        gauge = reg.gauge("result_" + key, help_text, labels=labels)
        gauge.labels(allocator=alloc).set(summary[key])

    for name, series, buckets in (
        ("job_wait_seconds", result.wait_times, DEFAULT_SECONDS_BUCKETS),
        ("job_execution_seconds", result.execution_times, JOB_SECONDS_BUCKETS),
        ("job_turnaround_seconds", result.turnaround_times, JOB_SECONDS_BUCKETS),
        ("job_cost_jobaware", result.costs_jobaware, COST_BUCKETS),
    ):
        hist = reg.histogram(
            name,
            f"Per-job distribution of {name.replace('_', ' ')}",
            labels=labels,
            unit="seconds" if name.endswith("seconds") else "",
            buckets=buckets,
        )
        child = hist.labels(allocator=alloc)
        for value in series:
            child.observe(float(value))

    if stats:
        for key, help_text in (
            ("events", "Engine events processed"),
            ("batches", "Engine event batches processed"),
        ):
            if key in stats:
                counter = reg.counter(
                    "engine_" + key + "_total", help_text, labels=labels
                )
                counter.labels(allocator=alloc).inc(float(stats[key]))

    perf = getattr(result, "perf", None)
    if perf:
        for name, value in perf.get("counters", {}).items():
            counter = reg.counter(
                _perf_metric_name(name) + "_total",
                f"Perf counter {name}",
                labels=labels,
            )
            counter.labels(allocator=alloc).inc(float(value))
        for name, cell in perf.get("timers", {}).items():
            base = _perf_metric_name(name)
            seconds = reg.counter(
                base + "_seconds_total",
                f"Inclusive wall seconds in timer {name}",
                labels=labels,
                unit="seconds",
            )
            seconds.labels(allocator=alloc).inc(float(cell["seconds"]))
            calls = reg.counter(
                base + "_calls_total",
                f"Outermost entries of timer {name}",
                labels=labels,
            )
            calls.labels(allocator=alloc).inc(float(cell["calls"]))
        elapsed = perf.get("derived", {}).get("elapsed_seconds")
        if elapsed is not None:
            gauge = reg.gauge(
                "run_elapsed_seconds",
                "Wall-clock seconds of the traced run",
                labels=labels,
                unit="seconds",
            )
            gauge.labels(allocator=alloc).set(float(elapsed))
        peak = perf.get("derived", {}).get("peak_rss_bytes")
        if peak is not None:
            gauge = reg.gauge(
                "process_peak_rss_bytes",
                "Peak resident set size of the measuring process",
                labels=labels,
                unit="bytes",
            )
            gauge.labels(allocator=alloc).set(float(peak))
    return reg


# ----------------------------------------------------------------------
# text rendering
# ----------------------------------------------------------------------


def render_perf(perf: Dict[str, Any]) -> str:
    """Human-readable table of a :meth:`PerfRecorder.snapshot` report."""
    lines = ["perf report", "-----------"]
    derived = perf.get("derived", {})
    for key, value in derived.items():
        lines.append(f"{key:40s} {value:14.3f}")
    counters = perf.get("counters", {})
    if counters:
        lines.append("counters:")
        for key, value in counters.items():
            lines.append(f"  {key:38s} {value:14.0f}")
    timers = perf.get("timers", {})
    if timers:
        lines.append("timers (inclusive):")
        for key, cell in timers.items():
            seconds, calls = cell["seconds"], cell["calls"]
            per_call = seconds / calls * 1e6 if calls else 0.0
            lines.append(
                f"  {key:38s} {seconds:10.3f} s  {calls:10d} calls  "
                f"{per_call:10.1f} us/call"
            )
    return "\n".join(lines)


def _label_suffix(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    rendered = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + rendered + "}"


def _render_metric_section(
    samples: Sequence[PromSample], types: Dict[str, str]
) -> List[str]:
    lines: List[str] = ["metrics", "-------"]
    plain = [s for s in samples if types.get(s.name) in ("counter", "gauge")]
    histograms: Dict[Tuple[str, str], Dict[str, float]] = {}
    for sample in samples:
        for family, kind in types.items():
            if kind != "histogram":
                continue
            if sample.name in (family + "_sum", family + "_count"):
                key = (
                    family,
                    _label_suffix({k: v for k, v in sample.labels.items()}),
                )
                histograms.setdefault(key, {})[
                    sample.name[len(family) + 1 :]
                ] = sample.value
    for sample in sorted(plain, key=lambda s: (s.name, sorted(s.labels.items()))):
        label = sample.name + _label_suffix(sample.labels)
        lines.append(f"  {label:58s} {sample.value:16.3f}")
    for (family, label_suffix), cells in sorted(histograms.items()):
        count = cells.get("count", 0.0)
        total = cells.get("sum", 0.0)
        mean = total / count if count else 0.0
        lines.append(
            f"  {family + label_suffix:58s} count={count:10.0f}  "
            f"mean={mean:12.3f}"
        )
    return lines


def _render_span_section(spans: Sequence[Span]) -> List[str]:
    aggregates = span_aggregates(spans)
    lines = [
        "spans",
        "-----",
        f"  {'name':38s} {'calls':>10s} {'total s':>12s} "
        f"{'self s':>12s} {'depth':>6s}",
    ]
    ordered = sorted(
        aggregates.items(), key=lambda item: -item[1]["seconds"]
    )
    for name, cell in ordered:
        lines.append(
            f"  {name:38s} {cell['calls']:10.0f} {cell['seconds']:12.4f} "
            f"{cell['self_seconds']:12.4f} {cell['max_depth']:6.0f}"
        )
    return lines


def render_obs_summary(
    samples: Optional[Sequence[PromSample]] = None,
    types: Optional[Dict[str, str]] = None,
    spans: Optional[Sequence[Span]] = None,
) -> str:
    """Paper-Table-style text summary of a metrics dump and/or a trace.

    Pass ``(samples, types)`` from
    :func:`~repro.obs.metrics.parse_prometheus` and/or ``spans`` from
    :func:`~repro.obs.tracing.load_spans`; sections render only for
    what was provided.
    """
    if samples is None and spans is None:
        raise ValueError("nothing to render: provide samples and/or spans")
    lines: List[str] = ["observability summary", "====================="]
    if samples is not None:
        lines.extend(_render_metric_section(samples, types or {}))
    if spans is not None:
        if samples is not None:
            lines.append("")
        lines.extend(_render_span_section(spans))
    return "\n".join(lines)
