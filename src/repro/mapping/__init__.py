"""Rank-to-node process mapping (paper §7 future work, implemented)."""

from .reorder import (
    MappingResult,
    evaluate_mapping,
    exhaustive_mapping,
    leaf_block_mapping,
    local_search_mapping,
)

__all__ = [
    "MappingResult",
    "evaluate_mapping",
    "exhaustive_mapping",
    "leaf_block_mapping",
    "local_search_mapping",
]
