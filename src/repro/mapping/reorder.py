"""Process (rank-to-node) mapping after allocation — paper §7 future work.

The paper's allocators decide *which* nodes a job gets; the conclusion
notes that reordering *which rank lands on which node* can buy further
improvement. Under the Eq. 6 cost model the mapping is exactly a
permutation of the allocated node array (ranks are positional), so this
module provides three optimizers over that permutation space:

* :func:`leaf_block_mapping` — group ranks into contiguous per-leaf
  blocks, largest blocks first. O(n log n), recovers what the paper's
  allocators produce natively, and is the right fix-up for placements
  coming from topology-blind sources (e.g. the ``linear`` baseline).
* :func:`local_search_mapping` — seeded stochastic 2-swap descent on
  top of any starting permutation; never returns something worse than
  its input.
* :func:`exhaustive_mapping` — brute force over all permutations;
  limited to tiny jobs, used as the ground truth in tests. Pass
  ``pin_rank0=True`` to cut the space by n for patterns whose cost is
  invariant under rank translation (RD/RHVD under XOR masks, ring under
  rotation) — NOT valid for binomial, whose rank 0 is the tree root.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Optional

import numpy as np

from ..cluster.state import ClusterState
from ..cost.model import CostModel
from ..patterns.base import CommunicationPattern

__all__ = [
    "MappingResult",
    "evaluate_mapping",
    "leaf_block_mapping",
    "local_search_mapping",
    "exhaustive_mapping",
]


@dataclass(frozen=True)
class MappingResult:
    """A rank->node permutation plus its before/after Eq. 6 costs."""

    nodes: np.ndarray
    cost_before: float
    cost_after: float

    @property
    def improvement_pct(self) -> float:
        """Percent cost reduction of the remapping (0 when cost was 0)."""
        if self.cost_before == 0:
            return 0.0
        return 100.0 * (self.cost_before - self.cost_after) / self.cost_before


def evaluate_mapping(
    state: ClusterState,
    nodes,
    pattern: CommunicationPattern,
    model: Optional[CostModel] = None,
) -> float:
    """Eq. 6 cost of the given rank order (thin convenience wrapper)."""
    return (model or CostModel()).allocation_cost(state, nodes, pattern)


def _as_nodes(nodes) -> np.ndarray:
    arr = np.asarray(nodes, dtype=np.int64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("nodes must be a non-empty 1-D array")
    if len(set(arr.tolist())) != arr.size:
        raise ValueError("nodes must be distinct")
    return arr


def leaf_block_mapping(
    state: ClusterState,
    nodes,
    pattern: CommunicationPattern,
    model: Optional[CostModel] = None,
) -> MappingResult:
    """Group ranks into contiguous per-leaf blocks, largest leaf first.

    Keeps node-id order inside each block, so the result is
    deterministic for a given input set.
    """
    model = model or CostModel()
    arr = _as_nodes(nodes)
    before = model.allocation_cost(state, arr, pattern)
    leaves = state.topology.leaf_of_node[arr]
    order = []
    uniq, counts = np.unique(leaves, return_counts=True)
    # biggest blocks first; leaf index breaks ties deterministically
    for leaf in uniq[np.lexsort((uniq, -counts))]:
        members = np.sort(arr[leaves == leaf])
        order.append(members)
    remapped = np.concatenate(order)
    after = model.allocation_cost(state, remapped, pattern)
    if after > before:  # never hand back a regression
        return MappingResult(nodes=arr, cost_before=before, cost_after=before)
    return MappingResult(nodes=remapped, cost_before=before, cost_after=after)


def local_search_mapping(
    state: ClusterState,
    nodes,
    pattern: CommunicationPattern,
    model: Optional[CostModel] = None,
    *,
    max_iters: int = 200,
    seed: int = 0,
) -> MappingResult:
    """Stochastic 2-swap descent over rank positions.

    Each iteration proposes swapping two rank positions and keeps the
    swap iff the Eq. 6 cost strictly decreases. Monotone by
    construction; ``seed`` makes runs reproducible.
    """
    if max_iters < 0:
        raise ValueError(f"max_iters must be >= 0, got {max_iters}")
    model = model or CostModel()
    arr = _as_nodes(nodes).copy()
    before = model.allocation_cost(state, arr, pattern)
    if arr.size < 3:  # swapping the only two ranks never changes Eq. 6
        return MappingResult(nodes=arr, cost_before=before, cost_after=before)
    rng = np.random.default_rng(seed)
    current = before
    for _ in range(max_iters):
        i, j = rng.choice(arr.size, size=2, replace=False)
        arr[i], arr[j] = arr[j], arr[i]
        candidate = model.allocation_cost(state, arr, pattern)
        if candidate < current:
            current = candidate
        else:
            arr[i], arr[j] = arr[j], arr[i]  # revert
    return MappingResult(nodes=arr, cost_before=before, cost_after=current)


def exhaustive_mapping(
    state: ClusterState,
    nodes,
    pattern: CommunicationPattern,
    model: Optional[CostModel] = None,
    *,
    max_nodes: int = 8,
    pin_rank0: bool = False,
) -> MappingResult:
    """Optimal mapping by brute force, for tiny jobs.

    Raises ``ValueError`` beyond ``max_nodes`` — n! explodes fast.
    """
    model = model or CostModel()
    arr = _as_nodes(nodes)
    if arr.size > max_nodes:
        raise ValueError(
            f"exhaustive mapping limited to {max_nodes} nodes, got {arr.size}"
        )
    before = model.allocation_cost(state, arr, pattern)
    best = arr
    best_cost = before
    if pin_rank0:
        head, tail = arr[:1], arr[1:].tolist()
    else:
        head, tail = arr[:0], arr.tolist()
    for perm in permutations(tail):
        candidate = np.concatenate([head, np.array(perm, dtype=np.int64)])
        cost = model.allocation_cost(state, candidate, pattern)
        if cost < best_cost:
            best = candidate
            best_cost = cost
    return MappingResult(nodes=best, cost_before=before, cost_after=best_cost)
