"""Dependency-free ASCII charts for figure output.

The paper's figures are line/bar charts; this module renders their data
series directly in the terminal so `repro-sched experiment figureN`
shows an actual picture, not just a table. Three chart types cover all
of them:

* :func:`line_plot` — multi-series step/line chart (Figures 1, 7);
* :func:`bar_chart` — grouped horizontal bars (Figures 6, 8, 9);
* :func:`histogram` — distribution summaries for analysis workflows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["line_plot", "bar_chart", "histogram", "sparkline"]

_SPARK_BLOCKS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """One-line intensity strip of a series (used for quick glances)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return ""
    lo, hi = float(arr.min()), float(arr.max())
    span = (hi - lo) or 1.0
    stride = max(1, arr.size // width)
    sampled = arr[::stride][:width]
    return "".join(
        _SPARK_BLOCKS[int((v - lo) / span * (len(_SPARK_BLOCKS) - 1))] for v in sampled
    )


def line_plot(
    series: Dict[str, Sequence[float]],
    *,
    width: int = 70,
    height: int = 12,
    title: Optional[str] = None,
    y_label: str = "",
) -> str:
    """Multi-series character line plot; series share the x index.

    Each series gets a marker (``*+o x#@``); points are nearest-cell
    rasterized. Y axis is annotated with min/max.
    """
    if not series:
        raise ValueError("need at least one series")
    markers = "*+ox#@%&"
    arrays = {k: np.asarray(list(v), dtype=np.float64) for k, v in series.items()}
    n = max(a.size for a in arrays.values())
    if n == 0:
        raise ValueError("series must be non-empty")
    all_vals = np.concatenate([a for a in arrays.values() if a.size])
    lo, hi = float(all_vals.min()), float(all_vals.max())
    span = (hi - lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, arr), marker in zip(arrays.items(), markers):
        if arr.size == 0:
            continue
        for i, v in enumerate(arr):
            x = int(i / max(arr.size - 1, 1) * (width - 1))
            y = height - 1 - int((v - lo) / span * (height - 1))
            grid[y][x] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{hi:.4g}"
    bot_label = f"{lo:.4g}"
    label_w = max(len(top_label), len(bot_label), len(y_label))
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            prefix = top_label.rjust(label_w)
        elif row_idx == height - 1:
            prefix = bot_label.rjust(label_w)
        elif row_idx == height // 2 and y_label:
            prefix = y_label.rjust(label_w)
        else:
            prefix = " " * label_w
        lines.append(f"{prefix} |{''.join(row)}|")
    lines.append(" " * label_w + " +" + "-" * width + "+")
    legend = "   ".join(
        f"{marker} {name}" for (name, _), marker in zip(arrays.items(), markers)
    )
    lines.append(" " * label_w + "  " + legend)
    return "\n".join(lines)


def bar_chart(
    values: Dict[str, float],
    *,
    width: int = 50,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one bar per labelled value (>= 0)."""
    if not values:
        raise ValueError("need at least one bar")
    vmax = max(values.values())
    if vmax < 0:
        raise ValueError("bar values must include a non-negative maximum")
    scale = width / vmax if vmax > 0 else 0.0
    label_w = max(len(k) for k in values)
    lines: List[str] = [title] if title else []
    for name, value in values.items():
        bar = "#" * max(int(round(max(value, 0.0) * scale)), 0)
        lines.append(f"{name.rjust(label_w)} |{bar} {value:.4g}{unit}")
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    *,
    bins: int = 10,
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """Vertical-label histogram of a numeric series."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot histogram an empty series")
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    counts, edges = np.histogram(arr, bins=bins)
    peak = counts.max() or 1
    lines: List[str] = [title] if title else []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"[{lo:10.4g}, {hi:10.4g}) |{bar} {count}")
    return "\n".join(lines)
