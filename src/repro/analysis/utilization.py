"""Cluster utilization and queue timelines from simulation results.

The paper argues (§6.5) that lower node-hours and turnaround imply
better system throughput; these helpers make that claim inspectable by
reconstructing, from the per-job records, how many nodes were busy and
how many jobs were queued at every instant of the run.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..scheduler.metrics import JobRecord

__all__ = ["busy_nodes_timeline", "queue_length_timeline", "average_utilization"]


def _step_timeline(
    starts: np.ndarray, ends: np.ndarray, deltas_start: np.ndarray, deltas_end: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge +delta at ``starts`` and -delta at ``ends`` into a step series."""
    times = np.concatenate([starts, ends])
    deltas = np.concatenate([deltas_start, -deltas_end])
    order = np.argsort(times, kind="stable")
    times = times[order]
    deltas = deltas[order]
    # merge duplicate timestamps
    uniq, inverse = np.unique(times, return_inverse=True)
    merged = np.zeros(uniq.size, dtype=np.float64)
    np.add.at(merged, inverse, deltas)
    return uniq, np.cumsum(merged)


def busy_nodes_timeline(records: Sequence[JobRecord]) -> Tuple[np.ndarray, np.ndarray]:
    """(times, busy_node_count) step function over the whole run."""
    if not records:
        return np.array([0.0]), np.array([0.0])
    starts = np.array([r.start_time for r in records])
    ends = np.array([r.finish_time for r in records])
    sizes = np.array([float(r.job.nodes) for r in records])
    return _step_timeline(starts, ends, sizes, sizes)


def queue_length_timeline(records: Sequence[JobRecord]) -> Tuple[np.ndarray, np.ndarray]:
    """(times, queued_job_count) step function (submitted but not started)."""
    if not records:
        return np.array([0.0]), np.array([0.0])
    submits = np.array([r.job.submit_time for r in records])
    starts = np.array([r.start_time for r in records])
    ones = np.ones(len(records))
    return _step_timeline(submits, starts, ones, ones)


def average_utilization(records: Sequence[JobRecord], n_nodes: int) -> float:
    """Time-averaged fraction of busy nodes from first submit to last finish."""
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    if not records:
        return 0.0
    times, busy = busy_nodes_timeline(records)
    t0 = min(r.job.submit_time for r in records)
    t1 = max(r.finish_time for r in records)
    if t1 <= t0:
        return 0.0
    # integrate the step function over [t0, t1]
    grid = np.concatenate([[t0], times[(times > t0) & (times < t1)], [t1]])
    # busy level in effect at each grid segment start
    levels = np.zeros(grid.size - 1)
    for i, t in enumerate(grid[:-1]):
        idx = np.searchsorted(times, t, side="right") - 1
        levels[i] = busy[idx] if idx >= 0 else 0.0
    area = float(np.sum(levels * np.diff(grid)))
    return area / (n_nodes * (t1 - t0))
