"""Post-hoc analysis: statistics, utilization timelines, run comparison."""

from .ascii_plot import bar_chart, histogram, line_plot, sparkline
from .compare import MetricComparison, compare_results, per_job_improvements
from .stats import bootstrap_mean_ci, pearson_correlation, summarize
from .utilization import (
    average_utilization,
    busy_nodes_timeline,
    queue_length_timeline,
)

__all__ = [
    "bar_chart",
    "histogram",
    "line_plot",
    "sparkline",
    "MetricComparison",
    "compare_results",
    "per_job_improvements",
    "bootstrap_mean_ci",
    "pearson_correlation",
    "summarize",
    "average_utilization",
    "busy_nodes_timeline",
    "queue_length_timeline",
]
