"""Cross-allocator comparison of simulation results.

Collects the paper's five metrics (§5.4) for a set of runs over the
same job list and computes percent improvements against a baseline —
the arithmetic every results section of the paper performs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

import numpy as np

from ..scheduler.metrics import SimulationResult, percent_improvement
from ..experiments.report import render_table

__all__ = ["MetricComparison", "compare_results", "per_job_improvements"]

#: metric name -> SimulationResult aggregate attribute
METRICS = {
    "execution_hours": "total_execution_hours",
    "wait_hours": "total_wait_hours",
    "turnaround_hours": "avg_turnaround_hours",
    "node_hours": "avg_node_hours",
    "comm_cost": "mean_cost_jobaware",
}


@dataclass
class MetricComparison:
    """Aggregates + improvements for a set of runs sharing one job list."""

    baseline: str
    #: {allocator: {metric: value}}
    values: Dict[str, Dict[str, float]]
    #: {allocator: {metric: % improvement vs baseline}}
    improvements: Dict[str, Dict[str, float]]

    def render(self) -> str:
        """ASCII table: one row per allocator, one column per metric."""
        headers = ["allocator"] + [f"{m}" for m in METRICS] + ["exec impr %"]
        rows: List[List[object]] = []
        for name, vals in self.values.items():
            rows.append(
                [name]
                + [vals[m] for m in METRICS]
                + [self.improvements[name]["execution_hours"]]
            )
        return render_table(headers, rows, title=f"Comparison vs {self.baseline!r}")


def compare_results(
    results: Mapping[str, SimulationResult], baseline: str = "default"
) -> MetricComparison:
    """Build a :class:`MetricComparison` from named runs.

    Raises ``KeyError`` when the baseline run is missing and
    ``ValueError`` when the runs cover different job sets (comparing
    different workloads is always a bug).
    """
    if baseline not in results:
        raise KeyError(f"baseline {baseline!r} not among {sorted(results)}")
    ids = {
        name: tuple(r.job.job_id for r in res.records)
        for name, res in results.items()
    }
    reference = ids[baseline]
    for name, jid in ids.items():
        if jid != reference:
            raise ValueError(
                f"run {name!r} covers different jobs than {baseline!r}; "
                "comparisons must share one workload"
            )
    values: Dict[str, Dict[str, float]] = {}
    for name, res in results.items():
        values[name] = {m: float(getattr(res, attr)) for m, attr in METRICS.items()}
    base_vals = values[baseline]
    improvements = {
        name: {
            m: percent_improvement(base_vals[m], vals[m]) for m in METRICS
        }
        for name, vals in values.items()
    }
    return MetricComparison(baseline=baseline, values=values, improvements=improvements)


def per_job_improvements(
    results: Mapping[str, SimulationResult],
    allocator: str,
    baseline: str = "default",
) -> np.ndarray:
    """Per-job % execution-time improvement of ``allocator`` vs ``baseline``.

    The quantity plotted in the paper's Figure 7 and averaged in Table 4.
    """
    base = results[baseline]
    cand = results[allocator]
    base_by_id = {r.job.job_id: r.execution_time for r in base.records}
    out = []
    for record in cand.records:
        b = base_by_id.get(record.job.job_id)
        if b is None:
            raise ValueError(f"job {record.job.job_id} missing from baseline run")
        out.append(0.0 if b == 0 else 100.0 * (b - record.execution_time) / b)
    return np.array(out, dtype=np.float64)
