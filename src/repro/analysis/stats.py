"""Small statistics helpers used by experiments and reports.

Kept dependency-light (NumPy only) and defensive about degenerate
inputs: correlation of a constant series is 0, summaries of empty
arrays raise rather than returning NaNs that poison downstream tables.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["pearson_correlation", "summarize", "bootstrap_mean_ci"]


def pearson_correlation(x, y) -> float:
    """Pearson r with a 0 return for constant inputs (instead of NaN).

    The paper's §5.3 reports r = 0.83 between its contention estimate
    and measured execution times; this is the function the Figure 1
    reproduction uses for the same quantity.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if x.size < 2:
        raise ValueError("need at least 2 points for a correlation")
    if np.std(x) == 0.0 or np.std(y) == 0.0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def summarize(values) -> Dict[str, float]:
    """Mean / median / min / max / p95 / std of a non-empty series."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty series")
    return {
        "n": float(arr.size),
        "mean": float(arr.mean()),
        "median": float(np.median(arr)),
        "min": float(arr.min()),
        "max": float(arr.max()),
        "p95": float(np.percentile(arr, 95)),
        "std": float(arr.std()),
    }


def bootstrap_mean_ci(
    values, *, confidence: float = 0.95, n_resamples: int = 2000, seed: int = 0
) -> tuple:
    """Bootstrap confidence interval for the mean of a series.

    Used to decide whether an improvement between two allocators is
    larger than run-to-run noise when sweeping seeds.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty series")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = np.random.default_rng(seed)
    means = rng.choice(arr, size=(n_resamples, arr.size), replace=True).mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )
