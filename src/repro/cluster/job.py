"""Job model.

The paper's scheduler input is a job log record — submit time, node
count, runtime — plus two paper-specific annotations (§4): whether the
job is *communication-intensive* or *compute-intensive*, and which MPI
collective pattern(s) dominate its communication (with what fraction of
runtime, §6.2's experiment sets A-E).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

from ..patterns.base import CommunicationPattern
from .._validation import require_non_negative, require_positive_int

__all__ = ["JobKind", "Job", "CommComponent"]


class JobKind(enum.Enum):
    """Job nature labels.

    The paper (§4) uses COMPUTE and COMM; IO implements the §7
    future-work direction ("I/O-aware scheduling algorithms that
    consider I/O patterns"): I/O-intensive jobs are tracked per switch
    like communication-intensive ones so allocators can avoid stacking
    them on the same I/O paths.
    """

    COMPUTE = "compute"
    COMM = "comm"
    IO = "io"


@dataclass(frozen=True)
class CommComponent:
    """One collective pattern and the fraction of *total runtime* it takes.

    §6.2's experiment set D, for instance, gives every comm-intensive job
    two components: 15% RD and 35% binomial (the remaining 50% compute).
    """

    pattern: CommunicationPattern
    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"component fraction must be in (0, 1], got {self.fraction}")


@dataclass(frozen=True)
class Job:
    """A schedulable job.

    Attributes
    ----------
    job_id:
        Unique identifier (log line number or synthetic id).
    submit_time:
        Seconds since simulation start.
    nodes:
        Whole nodes requested (``select/linear`` semantics — the paper
        allocates entire nodes).
    runtime:
        Baseline runtime in seconds *under the default allocation* — the
        value logged by the original system. Communication-aware
        allocations rescale the communication share of it via Eq. 7.
    kind:
        Communication- or compute-intensive.
    comm:
        Communication components. Must be empty for COMPUTE jobs and
        non-empty for COMM jobs; fractions must sum to <= 1.
    """

    job_id: int
    submit_time: float
    nodes: int
    runtime: float
    kind: JobKind = JobKind.COMPUTE
    comm: Tuple[CommComponent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        require_positive_int(self.nodes, "nodes")
        require_non_negative(self.submit_time, "submit_time")
        require_non_negative(self.runtime, "runtime")
        total = sum(c.fraction for c in self.comm)
        if total > 1.0 + 1e-9:
            raise ValueError(f"communication fractions sum to {total} > 1")
        if self.kind is JobKind.COMM and not self.comm:
            raise ValueError("communication-intensive job needs at least one CommComponent")
        if self.kind is not JobKind.COMM and self.comm:
            raise ValueError(f"{self.kind.value} job must not carry CommComponents")
        names = [c.pattern.name for c in self.comm]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate communication pattern in job: {names}")

    @property
    def comm_fraction(self) -> float:
        """Fraction of runtime spent communicating (0 for compute jobs)."""
        return float(sum(c.fraction for c in self.comm))

    @property
    def compute_fraction(self) -> float:
        """Share of runtime not spent communicating (``1 - comm_fraction``)."""
        return 1.0 - self.comm_fraction

    @property
    def is_comm_intensive(self) -> bool:
        """True when the job is labelled communication-intensive."""
        return self.kind is JobKind.COMM

    def with_kind(
        self, kind: JobKind, comm: Tuple[CommComponent, ...] = ()
    ) -> "Job":
        """Return a relabelled copy (used when sweeping %comm-intensive)."""
        return Job(
            job_id=self.job_id,
            submit_time=self.submit_time,
            nodes=self.nodes,
            runtime=self.runtime,
            kind=kind,
            comm=tuple(comm),
        )
