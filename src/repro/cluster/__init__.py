"""Cluster occupancy substrate: jobs and per-switch free/busy/comm state."""

from .job import CommComponent, Job, JobKind
from .state import (
    AVAIL_DOWN,
    AVAIL_DRAINING,
    AVAIL_UP,
    NODE_COMM,
    NODE_COMPUTE,
    NODE_FREE,
    AllocationRecord,
    ClusterState,
    CommOverlay,
)

__all__ = [
    "CommComponent",
    "Job",
    "JobKind",
    "AllocationRecord",
    "ClusterState",
    "CommOverlay",
    "NODE_FREE",
    "NODE_COMPUTE",
    "NODE_COMM",
    "AVAIL_UP",
    "AVAIL_DOWN",
    "AVAIL_DRAINING",
]
