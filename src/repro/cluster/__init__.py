"""Cluster occupancy substrate: jobs and per-switch free/busy/comm state."""

from .job import CommComponent, Job, JobKind
from .state import (
    NODE_COMM,
    NODE_COMPUTE,
    NODE_FREE,
    AllocationRecord,
    ClusterState,
    CommOverlay,
)

__all__ = [
    "CommComponent",
    "Job",
    "JobKind",
    "AllocationRecord",
    "ClusterState",
    "CommOverlay",
    "NODE_FREE",
    "NODE_COMPUTE",
    "NODE_COMM",
]
