"""Mutable cluster occupancy state.

Tracks, per leaf switch, the three counters the paper's formulas use
(Table 1): ``L_nodes`` (capacity, static on the topology), ``L_busy``
(allocated nodes) and ``L_comm`` (nodes running communication-intensive
jobs). Node-granular state is an int8 array so "lowest free node ids on
leaf k" is a single vectorized scan.

Allocators never mutate this class directly — the scheduler engine
applies their returned node sets through :meth:`ClusterState.allocate`,
and hypothetical allocations are priced on :meth:`copy` snapshots or —
far cheaper — on :meth:`comm_overlay` views that only materialize the
per-leaf counters the cost model reads.

Every mutation bumps :attr:`ClusterState.version`; derived vectors
(the Eq. 2 contention-share vector) and Eq. 6 cost results are cached
against that counter, so the many repeated pricings of an unchanged
state (individual runs, adaptive arbitration, counterfactuals) skip
recomputation entirely.

Orthogonal to occupancy, every node carries a SLURM-style
*availability* state (UP / DOWN / DRAINING, see :mod:`repro.faults`).
``leaf_free`` always means *allocatable* — free **and** UP — so every
allocator's leaf ordering routes around failed switches without
knowing faults exist; ``leaf_offline`` counts the unoccupied non-UP
nodes so ``leaf_busy`` (and the Eq. 1 ratios built on it) stays exact
under failures. Availability transitions bump :attr:`version` like any
other mutation, keeping the Eq. 6 cost caches honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from .._perfflags import is_legacy
from ..topology.tree import SwitchInfo, TreeTopology
from .job import JobKind

__all__ = [
    "ClusterState",
    "CommOverlay",
    "AllocationRecord",
    "NODE_FREE",
    "NODE_COMPUTE",
    "NODE_COMM",
    "NODE_IO",
    "AVAIL_UP",
    "AVAIL_DOWN",
    "AVAIL_DRAINING",
]

#: entries kept in a state's Eq. 6 cost cache before it is wiped; keys
#: embed the priced node set, so the cap bounds memory, not correctness.
_COST_CACHE_MAX = 256

NODE_FREE = 0
NODE_COMPUTE = 1
NODE_COMM = 2
NODE_IO = 3

#: per-node availability states (orthogonal to the occupancy states above)
AVAIL_UP = 0
AVAIL_DOWN = 1
AVAIL_DRAINING = 2

_KIND_TO_NODE_STATE = {
    JobKind.COMPUTE: NODE_COMPUTE,
    JobKind.COMM: NODE_COMM,
    JobKind.IO: NODE_IO,
}


@dataclass(frozen=True)
class AllocationRecord:
    """Nodes held by one running job."""

    job_id: int
    nodes: np.ndarray  # int64 node ids
    kind: JobKind


class ClusterState:
    """Free/busy/comm bookkeeping over a :class:`TreeTopology`.

    Invariants (checked by :meth:`validate`):

    * ``leaf_free + leaf_busy + leaf_offline == topology.leaf_sizes``;
    * ``leaf_free`` counts exactly the free **and** UP nodes,
      ``leaf_offline`` the free-but-not-UP ones;
    * ``leaf_comm <= leaf_busy``;
    * per-leaf counters agree with the node-granular ``node_state``;
    * every allocated node belongs to exactly one running job;
    * no running job occupies a DOWN node (DRAINING is allowed: the
      node finishes its current job, then stops accepting new ones).
    """

    def __init__(self, topology: TreeTopology) -> None:
        self.topology = topology
        self.node_state = np.full(topology.n_nodes, NODE_FREE, dtype=np.int8)
        self.node_avail = np.full(topology.n_nodes, AVAIL_UP, dtype=np.int8)
        self.leaf_free = topology.leaf_sizes.copy()
        self.leaf_offline = np.zeros(topology.n_leaves, dtype=np.int64)
        self.leaf_comm = np.zeros(topology.n_leaves, dtype=np.int64)
        self.leaf_io = np.zeros(topology.n_leaves, dtype=np.int64)
        #: availability history: per-leaf count of node DOWN transitions
        #: since cluster start (monotonic, never decremented by repair);
        #: the fault-aware allocator reads it to bias placements away
        #: from failure-correlated leaves.
        self.leaf_faults = np.zeros(topology.n_leaves, dtype=np.int64)
        #: node id -> owning job id, -1 when unoccupied; the node->job
        #: index the fault path reads (jobs_on) instead of scanning all
        #: running records against an O(n_nodes) hit mask.
        self.node_job = np.full(topology.n_nodes, -1, dtype=np.int64)
        self.running: Dict[int, AllocationRecord] = {}
        #: bumped by every :meth:`allocate` / :meth:`release`; tags the caches
        self.version = 0
        self._derived_cache: Dict[str, object] = {}
        self._cost_cache: Dict[object, float] = {}

    def _invalidate(self) -> None:
        """Advance :attr:`version` and drop version-tagged caches."""
        self.version += 1
        if self._derived_cache:
            self._derived_cache.clear()
        if self._cost_cache:
            self._cost_cache.clear()

    # ------------------------------------------------------------------
    # derived counters
    # ------------------------------------------------------------------

    @property
    def leaf_busy(self) -> np.ndarray:
        """``L_busy`` per leaf (allocated nodes; offline nodes excluded)."""
        return self.topology.leaf_sizes - self.leaf_free - self.leaf_offline

    @property
    def total_free(self) -> int:
        """Allocatable nodes: free *and* UP."""
        return int(self.leaf_free.sum())

    @property
    def total_busy(self) -> int:
        """Number of occupied nodes (UP or not)."""
        return self.topology.n_nodes - self.total_free - int(self.leaf_offline.sum())

    @property
    def total_down(self) -> int:
        """Nodes currently marked DOWN."""
        return int(np.count_nonzero(self.node_avail == AVAIL_DOWN))

    @property
    def total_draining(self) -> int:
        """Nodes currently marked DRAINING."""
        return int(np.count_nonzero(self.node_avail == AVAIL_DRAINING))

    def subtree_free(self, switch: SwitchInfo) -> int:
        """Free nodes in ``switch``'s subtree."""
        return int(self.leaf_free[switch.leaf_lo : switch.leaf_hi].sum())

    def communication_ratio(self, leaf_index: Optional[np.ndarray] = None) -> np.ndarray:
        """Paper Eq. 1: ``L_comm / L_busy + L_busy / L_nodes`` per leaf.

        An idle leaf (``L_busy == 0``) has no contention: the first term
        is defined as 0 there, giving idle leaves the minimum ratio —
        exactly the switches a communication-intensive job should prefer.
        """
        busy = self.leaf_busy
        comm = self.leaf_comm
        sizes = self.topology.leaf_sizes
        if leaf_index is not None:
            idx = np.asarray(leaf_index, dtype=np.int64)
            busy, comm, sizes = busy[idx], comm[idx], sizes[idx]
        first = np.divide(
            comm, busy, out=np.zeros(len(busy), dtype=np.float64), where=busy > 0
        )
        return first + busy / sizes

    def io_ratio(self, leaf_index: Optional[np.ndarray] = None) -> np.ndarray:
        """Eq. 1 analogue for I/O load: ``L_io / L_busy + L_busy / L_nodes``.

        Used by the §7 I/O-aware allocator the same way the greedy
        algorithm uses the communication ratio.
        """
        busy = self.leaf_busy
        io = self.leaf_io
        sizes = self.topology.leaf_sizes
        if leaf_index is not None:
            idx = np.asarray(leaf_index, dtype=np.int64)
            busy, io, sizes = busy[idx], io[idx], sizes[idx]
        first = np.divide(
            io, busy, out=np.zeros(len(busy), dtype=np.float64), where=busy > 0
        )
        return first + busy / sizes

    def leaf_comm_share(self) -> np.ndarray:
        """``L_comm / L_nodes`` per leaf — the per-switch contention term.

        Cached against :attr:`version`: the Eq. 6 kernel reads this
        vector on every evaluation, and between mutations it cannot
        change. The returned array is read-only.
        """
        share = self._derived_cache.get("comm_share")
        if share is None:
            share = self.leaf_comm / self.topology.leaf_sizes
            share.setflags(write=False)
            self._derived_cache["comm_share"] = share
        return share

    def _derived(self, key: str, builder) -> np.ndarray:
        """Version-tagged read-only derived vector (see ``_derived_cache``)."""
        value = self._derived_cache.get(key)
        if value is None:
            value = builder()
            value.setflags(write=False)
            self._derived_cache[key] = value
        return value

    def leaf_free_cumsum(self) -> np.ndarray:
        """``[0, cumsum(leaf_free)]`` — subtree free counts in O(1) each.

        ``cs[hi] - cs[lo]`` is the free-node count under any switch with
        leaf range ``[lo, hi)``; the vectorized lowest-level-switch
        search evaluates a whole level at once from this. Cached against
        :attr:`version` like every derived vector.
        """
        return self._derived(
            "free_cumsum",
            lambda: np.concatenate(
                ([0], np.cumsum(self.leaf_free))
            ).astype(np.int64),
        )

    def leaf_busy_cached(self) -> np.ndarray:
        """Read-only :attr:`leaf_busy`, cached against :attr:`version`."""
        return self._derived("leaf_busy", lambda: np.asarray(self.leaf_busy))

    def allocatable_mask(self) -> np.ndarray:
        """Per-node boolean: unoccupied *and* UP, cached against :attr:`version`.

        One vector op shared by a whole node-gathering pass (see
        :func:`repro.allocation.base.gather_nodes`) instead of two
        comparisons per leaf inside :meth:`free_nodes_on_leaf`.
        """
        return self._derived(
            "allocatable",
            lambda: (self.node_state == NODE_FREE) & (self.node_avail == AVAIL_UP),
        )

    def communication_ratio_cached(self) -> np.ndarray:
        """Full Eq. 1 ratio vector, cached against :attr:`version`.

        The adaptive allocator prices a greedy and a balanced candidate
        from the same state: with the ranking version-tagged here, the
        second candidate (and any pass over an unmutated state) reuses
        the scan instead of recomputing ``L_comm/L_busy + L_busy/L_n``
        per call. Same numbers as :meth:`communication_ratio` — the
        vectorized allocators index into this vector, the legacy loop
        path recomputes per call, and the equivalence tests hold both
        to identical node sets.
        """
        return self._derived("comm_ratio", self.communication_ratio)

    def io_ratio_cached(self) -> np.ndarray:
        """Full I/O-analogue ratio vector, cached against :attr:`version`."""
        return self._derived("io_ratio", self.io_ratio)

    # ------------------------------------------------------------------
    # version-tagged cost cache (read by the Eq. 6 kernel)
    # ------------------------------------------------------------------

    def cost_cache_get(self, key: object) -> Optional[float]:
        """Cached Eq. 6 result for ``key``, valid for the current version."""
        return self._cost_cache.get(key)

    def cost_cache_put(self, key: object, value: float) -> None:
        """Memoize an Eq. 6 total for the current state version (capped FIFO)."""
        if len(self._cost_cache) >= _COST_CACHE_MAX:
            self._cost_cache.clear()
        self._cost_cache[key] = value

    def comm_overlay(
        self, nodes: Iterable[int], kind: JobKind, *, validate: bool = True
    ) -> "CommOverlay":
        """A pricing view of this state plus one hypothetical allocation.

        Captures only the per-leaf counters the Eq. 2-6 kernel reads —
        O(len(nodes) + n_leaves) instead of the O(n_nodes) of a full
        :meth:`copy`. Validates the nodes like :meth:`allocate` would
        (in range, free, no duplicates). The view's counters are copied
        at capture time, so it stays numerically valid even if this
        state mutates afterwards.

        ``validate=False`` skips the checks; only for node sets that
        just came out of an allocator against this same state (the
        adaptive pricing and counterfactual hot paths — the checks cost
        more than the capture itself there, and allocators already
        guarantee validity).
        """
        node_arr = np.asarray(list(nodes) if not isinstance(nodes, np.ndarray) else nodes,
                              dtype=np.int64)
        if node_arr.ndim != 1 or node_arr.size == 0:
            raise ValueError("overlay must contain at least one node")
        if validate:
            if is_legacy():
                if np.unique(node_arr).size != node_arr.size:
                    raise ValueError("duplicate node ids in overlay allocation")
                if node_arr.min() < 0 or node_arr.max() >= self.topology.n_nodes:
                    raise ValueError("node id out of range")
            else:
                # BENCH_PR1 measured this capture at ~1.9 ms against a 3 us
                # state copy — both np.unique calls (the duplicate check and
                # the leaf histogram below) sort the node set. A scatter
                # into a seen-mask and an unsorted bincount do the same jobs
                # in O(len(nodes) + n_leaves) without sorting.
                if node_arr.min() < 0 or node_arr.max() >= self.topology.n_nodes:
                    raise ValueError("node id out of range")
                seen = np.zeros(self.topology.n_nodes, dtype=bool)
                seen[node_arr] = True
                if int(np.count_nonzero(seen)) != node_arr.size:
                    raise ValueError("duplicate node ids in overlay allocation")
            if np.any(self.node_state[node_arr] != NODE_FREE):
                busy = node_arr[self.node_state[node_arr] != NODE_FREE]
                raise ValueError(f"nodes already busy: {busy[:8].tolist()}")
            if np.any(self.node_avail[node_arr] != AVAIL_UP):
                down = node_arr[self.node_avail[node_arr] != AVAIL_UP]
                raise ValueError(f"nodes unavailable (DOWN/DRAINING): {down[:8].tolist()}")
        leaf_comm = self.leaf_comm.copy()
        if kind is JobKind.COMM:
            if is_legacy():
                leaves, counts = np.unique(
                    self.topology.leaf_of_node[node_arr], return_counts=True
                )
                leaf_comm[leaves] += counts
            else:
                leaf_comm += np.bincount(
                    self.topology.leaf_of_node[node_arr],
                    minlength=self.topology.n_leaves,
                )
        return CommOverlay(self, leaf_comm, (kind.name, node_arr.tobytes()))

    # ------------------------------------------------------------------
    # node selection
    # ------------------------------------------------------------------

    def free_nodes_on_leaf(self, leaf_index: int, count: Optional[int] = None) -> np.ndarray:
        """Lowest-id allocatable node ids on ``leaf_index``.

        A node is allocatable when it is unoccupied *and* UP — DOWN and
        DRAINING nodes never appear here, which is how every allocator
        stays fault-safe without fault-specific logic.
        """
        lo = int(self.topology.leaf_node_offset[leaf_index])
        hi = int(self.topology.leaf_node_offset[leaf_index + 1])
        if is_legacy():
            free = np.flatnonzero(
                (self.node_state[lo:hi] == NODE_FREE)
                & (self.node_avail[lo:hi] == AVAIL_UP)
            ) + lo
        else:
            free = np.flatnonzero(self.allocatable_mask()[lo:hi]) + lo
        if count is not None:
            if count > free.size:
                raise ValueError(
                    f"leaf {leaf_index} has {free.size} free nodes, requested {count}"
                )
            free = free[:count]
        # flatnonzero yields a fresh intp array (int64 here), so this
        # normalizes dtype without copying on the common platform
        return free.astype(np.int64, copy=False)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def allocate(self, job_id: int, nodes: Iterable[int], kind: JobKind) -> AllocationRecord:
        """Mark ``nodes`` as held by ``job_id``.

        Raises ``ValueError`` if the job id is already running, any node
        is already busy, a node id is out of range, or the same node id
        appears more than once (a duplicate would silently shrink the
        allocation — always an allocator bug).
        """
        if job_id in self.running:
            raise ValueError(f"job {job_id} is already running")
        if isinstance(nodes, np.ndarray) and nodes.dtype == np.int64:
            raw = nodes
        else:
            raw = np.asarray([int(n) for n in nodes], dtype=np.int64)
        # np.sort + adjacent-equality replaces np.unique (same sorted
        # result, same error, half the per-call overhead on the ~10^5
        # allocations of a long trace)
        node_arr = np.sort(raw)
        if node_arr.size and np.any(node_arr[1:] == node_arr[:-1]):
            raise ValueError(
                f"duplicate node ids in allocation for job {job_id} "
                f"({raw.size - np.unique(raw).size} repeated)"
            )
        if node_arr.size == 0:
            raise ValueError("allocation must contain at least one node")
        if node_arr[0] < 0 or node_arr[-1] >= self.topology.n_nodes:
            raise ValueError("node id out of range")
        if np.any(self.node_state[node_arr] != NODE_FREE):
            busy = node_arr[self.node_state[node_arr] != NODE_FREE]
            raise ValueError(f"nodes already busy: {busy[:8].tolist()}")
        if np.any(self.node_avail[node_arr] != AVAIL_UP):
            down = node_arr[self.node_avail[node_arr] != AVAIL_UP]
            raise ValueError(f"nodes unavailable (DOWN/DRAINING): {down[:8].tolist()}")
        self.node_state[node_arr] = _KIND_TO_NODE_STATE[kind]
        self.node_job[node_arr] = job_id
        if is_legacy():
            leaves, counts = np.unique(
                self.topology.leaf_of_node[node_arr], return_counts=True
            )
            self.leaf_free[leaves] -= counts
            if kind is JobKind.COMM:
                self.leaf_comm[leaves] += counts
            elif kind is JobKind.IO:
                self.leaf_io[leaves] += counts
        else:
            counts = np.bincount(
                self.topology.leaf_of_node[node_arr], minlength=self.topology.n_leaves
            )
            self.leaf_free -= counts
            if kind is JobKind.COMM:
                self.leaf_comm += counts
            elif kind is JobKind.IO:
                self.leaf_io += counts
        record = AllocationRecord(job_id=job_id, nodes=node_arr, kind=kind)
        self.running[job_id] = record
        self._invalidate()
        return record

    def release(self, job_id: int) -> AllocationRecord:
        """Free the nodes of a finished job; raises ``KeyError`` if unknown.

        Nodes that went DRAINING while the job ran are freed into
        ``leaf_offline``, not ``leaf_free`` — they never become
        allocatable again until :meth:`mark_up`.
        """
        record = self.running.pop(job_id)
        self.node_state[record.nodes] = NODE_FREE
        self.node_job[record.nodes] = -1
        if is_legacy():
            up = record.nodes[self.node_avail[record.nodes] == AVAIL_UP]
            if up.size:
                leaves, counts = np.unique(
                    self.topology.leaf_of_node[up], return_counts=True
                )
                self.leaf_free[leaves] += counts
            if up.size != record.nodes.size:
                off = record.nodes[self.node_avail[record.nodes] != AVAIL_UP]
                leaves, counts = np.unique(
                    self.topology.leaf_of_node[off], return_counts=True
                )
                self.leaf_offline[leaves] += counts
            leaves, counts = np.unique(
                self.topology.leaf_of_node[record.nodes], return_counts=True
            )
            if record.kind is JobKind.COMM:
                self.leaf_comm[leaves] -= counts
            elif record.kind is JobKind.IO:
                self.leaf_io[leaves] -= counts
            self._invalidate()
            return record
        n_leaves = self.topology.n_leaves
        job_leaves = self.topology.leaf_of_node[record.nodes]
        counts = np.bincount(job_leaves, minlength=n_leaves)
        up_mask = self.node_avail[record.nodes] == AVAIL_UP
        if up_mask.all():
            self.leaf_free += counts
        else:
            self.leaf_free += np.bincount(
                job_leaves[up_mask], minlength=n_leaves
            )
            self.leaf_offline += np.bincount(
                job_leaves[~up_mask], minlength=n_leaves
            )
        if record.kind is JobKind.COMM:
            self.leaf_comm -= counts
        elif record.kind is JobKind.IO:
            self.leaf_io -= counts
        self._invalidate()
        return record

    def release_many(self, job_ids: Iterable[int]) -> List[AllocationRecord]:
        """Free several finished jobs with one set of counter updates.

        Same-timestamp event batches release every job finishing at one
        clock tick; doing it per job costs one bincount pass and one
        cache invalidation *each*. This concatenates all their node
        sets, applies one bincount per affected counter, and bumps
        :attr:`version` once. Release order cannot matter: every job's
        nodes are disjoint (allocation guarantees it) and the per-leaf
        updates are integer sums, so the resulting counters are
        bit-identical to sequential :meth:`release` calls — the
        batching equivalence suite holds the engine to that.

        Raises ``KeyError`` on the first unknown job id (nothing is
        mutated before the lookup loop completes).
        """
        ids = list(job_ids)
        recs = [self.running[job_id] for job_id in ids]  # KeyError before any mutation
        if not recs:
            return []
        if len(recs) == 1 or is_legacy():
            return [self.release(job_id) for job_id in ids]
        for job_id in ids:
            del self.running[job_id]
        nodes = np.concatenate([rec.nodes for rec in recs])
        self.node_state[nodes] = NODE_FREE
        self.node_job[nodes] = -1
        n_leaves = self.topology.n_leaves
        leaves = self.topology.leaf_of_node[nodes]
        up_mask = self.node_avail[nodes] == AVAIL_UP
        if up_mask.all():
            self.leaf_free += np.bincount(leaves, minlength=n_leaves)
        else:
            self.leaf_free += np.bincount(leaves[up_mask], minlength=n_leaves)
            self.leaf_offline += np.bincount(leaves[~up_mask], minlength=n_leaves)
        comm_nodes = [rec.nodes for rec in recs if rec.kind is JobKind.COMM]
        if comm_nodes:
            comm = np.concatenate(comm_nodes)
            self.leaf_comm -= np.bincount(
                self.topology.leaf_of_node[comm], minlength=n_leaves
            )
        io_nodes = [rec.nodes for rec in recs if rec.kind is JobKind.IO]
        if io_nodes:
            io = np.concatenate(io_nodes)
            self.leaf_io -= np.bincount(
                self.topology.leaf_of_node[io], minlength=n_leaves
            )
        self._invalidate()
        return recs

    # ------------------------------------------------------------------
    # availability (fault subsystem, see repro.faults)
    # ------------------------------------------------------------------

    def _avail_nodes_arg(self, nodes: Iterable[int]) -> np.ndarray:
        node_arr = np.unique(np.asarray([int(n) for n in nodes], dtype=np.int64))
        if node_arr.size == 0:
            return node_arr
        if node_arr[0] < 0 or node_arr[-1] >= self.topology.n_nodes:
            raise ValueError("node id out of range")
        return node_arr

    def jobs_on(self, nodes: Iterable[int]) -> List[int]:
        """Ids of running jobs holding any of ``nodes`` (ascending)."""
        node_arr = self._avail_nodes_arg(nodes)
        if is_legacy():
            hit = np.zeros(self.topology.n_nodes, dtype=bool)
            hit[node_arr] = True
            return sorted(
                job_id for job_id, rec in self.running.items() if hit[rec.nodes].any()
            )
        if node_arr.size == 0:
            return []
        ids = np.unique(self.node_job[node_arr])
        return ids[ids >= 0].tolist()

    def mark_down(self, nodes: Iterable[int]) -> np.ndarray:
        """Transition ``nodes`` to DOWN; returns the ids actually changed.

        Nodes already DOWN are left alone (overlapping faults are legal
        in user-supplied traces). Occupied nodes are rejected — the
        caller must interrupt/release their jobs first, which is what
        keeps the "no running job on a DOWN node" invariant airtight.
        """
        node_arr = self._avail_nodes_arg(nodes)
        occupied = node_arr[self.node_state[node_arr] != NODE_FREE]
        if occupied.size:
            raise ValueError(
                f"cannot mark occupied nodes DOWN: {occupied[:8].tolist()} "
                "(interrupt their jobs first)"
            )
        take = node_arr[self.node_avail[node_arr] != AVAIL_DOWN]
        if take.size == 0:
            return take
        was_up = take[self.node_avail[take] == AVAIL_UP]
        self.node_avail[take] = AVAIL_DOWN
        if was_up.size:
            leaves, counts = np.unique(
                self.topology.leaf_of_node[was_up], return_counts=True
            )
            self.leaf_free[leaves] -= counts
            self.leaf_offline[leaves] += counts
        # every DOWN transition (including DRAINING -> DOWN) goes into
        # the per-leaf availability history the fault-aware allocator reads
        fault_leaves, fault_counts = np.unique(
            self.topology.leaf_of_node[take], return_counts=True
        )
        self.leaf_faults[fault_leaves] += fault_counts
        self._invalidate()
        return take

    def mark_drain(self, nodes: Iterable[int]) -> np.ndarray:
        """Transition UP nodes to DRAINING; returns the ids changed.

        A draining node may still be occupied — it finishes its current
        job (``release`` then parks it in ``leaf_offline``) but is never
        handed out again until :meth:`mark_up`. DOWN nodes stay DOWN.
        """
        node_arr = self._avail_nodes_arg(nodes)
        take = node_arr[self.node_avail[node_arr] == AVAIL_UP]
        if take.size == 0:
            return take
        free = take[self.node_state[take] == NODE_FREE]
        self.node_avail[take] = AVAIL_DRAINING
        if free.size:
            leaves, counts = np.unique(
                self.topology.leaf_of_node[free], return_counts=True
            )
            self.leaf_free[leaves] -= counts
            self.leaf_offline[leaves] += counts
        self._invalidate()
        return take

    def mark_up(self, nodes: Iterable[int]) -> np.ndarray:
        """Transition DOWN/DRAINING nodes back to UP; returns ids changed."""
        node_arr = self._avail_nodes_arg(nodes)
        take = node_arr[self.node_avail[node_arr] != AVAIL_UP]
        if take.size == 0:
            return take
        free = take[self.node_state[take] == NODE_FREE]
        self.node_avail[take] = AVAIL_UP
        if free.size:
            leaves, counts = np.unique(
                self.topology.leaf_of_node[free], return_counts=True
            )
            self.leaf_offline[leaves] -= counts
            self.leaf_free[leaves] += counts
        self._invalidate()
        return take

    # ------------------------------------------------------------------
    # checkpoint support (engine snapshot/restore)
    # ------------------------------------------------------------------

    def snapshot_dict(self) -> Dict[str, object]:
        """Plain-JSON state for engine checkpoints.

        Only the node-granular arrays, the running set (in insertion
        order — scheduling iterates it), the version counter, and the
        :attr:`leaf_faults` availability history are stored; the other
        per-leaf counters are derived quantities and are rebuilt from
        the arrays on restore, so a checkpoint can never smuggle in a
        counter that violates the class invariants. ``leaf_faults`` is
        genuine history (not derivable from the current arrays), so it
        rides along verbatim; checkpoints written before it existed
        restore with an all-zero history.
        """
        return {
            "node_state": self.node_state.tolist(),
            "node_avail": self.node_avail.tolist(),
            "leaf_faults": self.leaf_faults.tolist(),
            "version": self.version,
            "running": [
                {
                    "job_id": rec.job_id,
                    "nodes": rec.nodes.tolist(),
                    "kind": rec.kind.value,
                }
                for rec in self.running.values()
            ],
        }

    @classmethod
    def from_snapshot_dict(
        cls, topology: TreeTopology, data: Dict[str, object]
    ) -> "ClusterState":
        """Inverse of :meth:`snapshot_dict`; validates every invariant."""
        state = cls(topology)
        node_state = np.asarray(data["node_state"], dtype=np.int8)
        node_avail = np.asarray(data["node_avail"], dtype=np.int8)
        if node_state.shape != (topology.n_nodes,) or node_avail.shape != (
            topology.n_nodes,
        ):
            raise ValueError(
                f"checkpoint state has {node_state.size} nodes; the "
                f"topology has {topology.n_nodes}"
            )
        state.node_state = node_state
        state.node_avail = node_avail
        free_mask = (node_state == NODE_FREE) & (node_avail == AVAIL_UP)
        offline_mask = (node_state == NODE_FREE) & (node_avail != AVAIL_UP)
        leaf_of = topology.leaf_of_node
        state.leaf_free = np.bincount(
            leaf_of[free_mask], minlength=topology.n_leaves
        ).astype(np.int64)
        state.leaf_offline = np.bincount(
            leaf_of[offline_mask], minlength=topology.n_leaves
        ).astype(np.int64)
        state.leaf_comm = np.bincount(
            leaf_of[node_state == NODE_COMM], minlength=topology.n_leaves
        ).astype(np.int64)
        state.leaf_io = np.bincount(
            leaf_of[node_state == NODE_IO], minlength=topology.n_leaves
        ).astype(np.int64)
        state.leaf_faults = np.asarray(
            data.get("leaf_faults", np.zeros(topology.n_leaves)), dtype=np.int64
        )
        if state.leaf_faults.shape != (topology.n_leaves,):
            raise ValueError(
                f"checkpoint leaf_faults has {state.leaf_faults.size} leaves; "
                f"the topology has {topology.n_leaves}"
            )
        for rec in data["running"]:
            record = AllocationRecord(
                job_id=int(rec["job_id"]),
                nodes=np.asarray(rec["nodes"], dtype=np.int64),
                kind=JobKind(rec["kind"]),
            )
            state.running[record.job_id] = record
            state.node_job[record.nodes] = record.job_id
        state.version = int(data["version"])
        state.validate()
        return state

    def copy(self) -> "ClusterState":
        """Independent snapshot sharing the (immutable) topology."""
        clone = ClusterState.__new__(ClusterState)
        clone.topology = self.topology
        clone.node_state = self.node_state.copy()
        clone.node_avail = self.node_avail.copy()
        clone.node_job = self.node_job.copy()
        clone.leaf_offline = self.leaf_offline.copy()
        clone.leaf_free = self.leaf_free.copy()
        clone.leaf_comm = self.leaf_comm.copy()
        clone.leaf_io = self.leaf_io.copy()
        clone.leaf_faults = self.leaf_faults.copy()
        clone.running = dict(self.running)  # records are frozen, share them
        # Caches are never shared: a snapshot starts cold so stale entries
        # cannot leak between a state and its copies (the counterfactual
        # pricing path depends on this).
        clone.version = self.version
        clone._derived_cache = {}
        clone._cost_cache = {}
        return clone

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Assert all counter invariants; raises ``AssertionError`` on drift."""
        topo = self.topology
        free_mask = (self.node_state == NODE_FREE) & (self.node_avail == AVAIL_UP)
        offline_mask = (self.node_state == NODE_FREE) & (self.node_avail != AVAIL_UP)
        free_from_nodes = np.bincount(
            topo.leaf_of_node[free_mask], minlength=topo.n_leaves
        )
        offline_from_nodes = np.bincount(
            topo.leaf_of_node[offline_mask], minlength=topo.n_leaves
        )
        comm_from_nodes = np.bincount(
            topo.leaf_of_node[self.node_state == NODE_COMM], minlength=topo.n_leaves
        )
        io_from_nodes = np.bincount(
            topo.leaf_of_node[self.node_state == NODE_IO], minlength=topo.n_leaves
        )
        assert np.array_equal(free_from_nodes, self.leaf_free), "leaf_free drifted"
        assert np.array_equal(
            offline_from_nodes, self.leaf_offline
        ), "leaf_offline drifted"
        assert np.array_equal(comm_from_nodes, self.leaf_comm), "leaf_comm drifted"
        assert np.array_equal(io_from_nodes, self.leaf_io), "leaf_io drifted"
        assert np.all(self.leaf_free >= 0) and np.all(self.leaf_free <= topo.leaf_sizes)
        assert np.all(self.leaf_offline >= 0)
        assert np.all(self.leaf_comm <= self.leaf_busy), "leaf_comm exceeds leaf_busy"
        assert np.all(self.leaf_io <= self.leaf_busy), "leaf_io exceeds leaf_busy"
        assert np.all(self.leaf_faults >= 0), "leaf_faults went negative"
        seen = np.zeros(topo.n_nodes, dtype=bool)
        for record in self.running.values():
            assert not seen[record.nodes].any(), "node held by two jobs"
            seen[record.nodes] = True
            assert np.all(
                self.node_job[record.nodes] == record.job_id
            ), f"node_job index drifted for job {record.job_id}"
            assert not np.any(
                self.node_avail[record.nodes] == AVAIL_DOWN
            ), f"running job {record.job_id} occupies a DOWN node"
        assert np.array_equal(seen, self.node_state != NODE_FREE), "running set drifted"
        assert np.array_equal(seen, self.node_job >= 0), "node_job index drifted"

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        down = self.total_down + self.total_draining
        offline = f", offline={down}" if down else ""
        return (
            f"ClusterState(free={self.total_free}/{self.topology.n_nodes}, "
            f"jobs={len(self.running)}{offline})"
        )


class CommOverlay:
    """Read-only pricing view: a base state plus one hypothetical job.

    Exposes exactly the surface the Eq. 2-6 kernel reads from a
    :class:`ClusterState` — ``topology``, ``leaf_comm``,
    :meth:`leaf_comm_share`, and the cost cache — without copying any
    node-granular state. Built via :meth:`ClusterState.comm_overlay`.

    Cost-cache entries are shared with the base state (keyed by the
    overlay's own allocation) while the base is unmutated, so e.g. the
    default-allocator counterfactual of one job is priced once and
    reused across every allocator of an individual run. If the base
    state has mutated since capture, the view falls back to a private
    cache — its copied counters stay correct, but nothing is written
    into the base's now-unrelated epoch.
    """

    __slots__ = (
        "topology",
        "leaf_comm",
        "_base",
        "_base_version",
        "_okey",
        "_share",
        "_local_cache",
    )

    def __init__(
        self, base: ClusterState, leaf_comm: np.ndarray, okey: object
    ) -> None:
        self.topology = base.topology
        self.leaf_comm = leaf_comm
        self.leaf_comm.setflags(write=False)
        self._base = base
        self._base_version = base.version
        self._okey = okey
        self._share: Optional[np.ndarray] = None
        self._local_cache: Dict[object, float] = {}

    def leaf_comm_share(self) -> np.ndarray:
        """Per-leaf communication share with the overlay job included (Eq. 1)."""
        if self._share is None:
            share = self.leaf_comm / self.topology.leaf_sizes
            share.setflags(write=False)
            self._share = share
        return self._share

    def cost_cache_get(self, key: object) -> Optional[float]:
        """Read through to the base state's Eq. 6 cache unless it went stale."""
        if self._base.version == self._base_version:
            return self._base.cost_cache_get((self._okey, key))
        return self._local_cache.get(key)

    def cost_cache_put(self, key: object, value: float) -> None:
        """Write to the base state's Eq. 6 cache unless it went stale."""
        if self._base.version == self._base_version:
            self._base.cost_cache_put((self._okey, key), value)
        else:
            self._local_cache[key] = value
