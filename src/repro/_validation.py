"""Shared argument-validation helpers.

Small, dependency-free checks used across the package so error messages
are consistent and call sites stay one line long.
"""

from __future__ import annotations

from typing import Any, Iterable


def require_positive_int(value: Any, name: str) -> int:
    """Return ``value`` as an int, raising ``ValueError`` unless it is >= 1."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return int(value)


def require_non_negative(value: float, name: str) -> float:
    """Return ``value`` as a float, raising ``ValueError`` if it is negative or NaN."""
    value = float(value)
    if not value >= 0.0:  # also rejects NaN
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def require_fraction(value: float, name: str) -> float:
    """Return ``value`` as a float in the closed interval [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def require_in(value: Any, options: Iterable[Any], name: str) -> Any:
    """Return ``value`` unchanged, raising ``ValueError`` unless it is in ``options``."""
    options = tuple(options)
    if value not in options:
        raise ValueError(f"{name} must be one of {options}, got {value!r}")
    return value


def is_power_of_two(n: int) -> bool:
    """Return True when ``n`` is a positive power of two."""
    return n >= 1 and (n & (n - 1)) == 0


def floor_power_of_two(n: int) -> int:
    """Return the largest power of two that is <= ``n`` (``n`` must be >= 1)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return 1 << (int(n).bit_length() - 1)


def ceil_power_of_two(n: int) -> int:
    """Return the smallest power of two that is >= ``n`` (``n`` must be >= 1)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return 1 if n == 1 else 1 << (int(n - 1).bit_length())
