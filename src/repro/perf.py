"""Lightweight opt-in performance tracing for whole-trace simulations.

The engine, the allocators, and the Eq. 6 cost kernel report counters
(events processed, schedule passes run / extended / skipped, cost-cache
hits) and wall-clock timers (time inside each allocator, inside the
cost kernel, inside the scheduling pass) to a process-global
:class:`PerfRecorder` — but only while one is *installed* via
:func:`collecting`. With no recorder installed every hook is a single
global read plus a falsy check, so the instrumentation costs nothing
measurable on the default path.

Activation paths:

* ``EngineConfig(collect_perf=True)`` — the engine installs a recorder
  around the run and attaches the report to ``SimulationResult.perf``;
* ``repro-sched simulate --perf`` — same, plus a rendered table;
* benchmarks construct a recorder directly around arbitrary code.

Timers are *nestable*: the same timer name may be entered re-entrantly
(e.g. the adaptive allocator pricing candidates inside the cost-kernel
timer that its own callees also enter) and only the outermost entry
accumulates, so a timer never double-counts its own nested spans.
Distinct names nest freely and report inclusive time.

Perf reports are diagnostics, not results: they are intentionally kept
out of ``dump_result`` serialization so saved results stay byte-stable
across machines (CI diffs them). See ``docs/performance.md``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

__all__ = [
    "PerfRecorder",
    "active",
    "collecting",
    "count",
    "timer",
    "render_perf",
]


class PerfRecorder:
    """Counter + timer accumulator for one measured span."""

    __slots__ = ("counters", "_timers", "_depth", "_t0")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self._timers: Dict[str, list] = {}  # name -> [seconds, outermost calls]
        self._depth: Dict[str, int] = {}
        self._t0 = time.perf_counter()

    def count(self, name: str, n: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def timer(self, name: str) -> "_Span":
        """Accumulate wall time under ``name`` (re-entrant safe)."""
        return _Span(self, name)

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict report: counters, timers, and derived rates."""
        elapsed = time.perf_counter() - self._t0
        timers = {
            name: {"seconds": cell[0], "calls": cell[1]}
            for name, cell in sorted(self._timers.items())
        }
        derived: Dict[str, float] = {"elapsed_seconds": elapsed}
        events = self.counters.get("engine.events")
        if events and elapsed > 0:
            derived["events_per_sec"] = events / elapsed
        jobs = self.counters.get("engine.jobs_started")
        if jobs and elapsed > 0:
            derived["jobs_per_sec"] = jobs / elapsed
        return {
            "counters": dict(sorted(self.counters.items())),
            "timers": timers,
            "derived": derived,
        }


class _Span:
    """One ``with``-entry of a named timer.

    A slotted object with hand-written ``__enter__``/``__exit__`` —
    timers sit on per-job hot paths, where the generator-based
    ``contextlib`` machinery costs several times more per entry. Each
    :meth:`PerfRecorder.timer` call makes a fresh span so re-entrant
    entries of the same name keep their own start times; only the
    outermost entry (depth 0) accumulates.
    """

    __slots__ = ("_rec", "_name", "_t0")

    def __init__(self, rec: PerfRecorder, name: str) -> None:
        self._rec = rec
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> None:
        rec = self._rec
        depth = rec._depth.get(self._name, 0)
        rec._depth[self._name] = depth + 1
        if depth == 0:
            self._t0 = time.perf_counter()
        return None

    def __exit__(self, *exc: object) -> bool:
        rec = self._rec
        name = self._name
        depth = rec._depth[name] - 1
        rec._depth[name] = depth
        if depth == 0:
            cell = rec._timers.setdefault(name, [0.0, 0])
            cell[0] += time.perf_counter() - self._t0
            cell[1] += 1
        return False


_active: Optional[PerfRecorder] = None


def active() -> Optional[PerfRecorder]:
    """The installed recorder, or ``None`` (tracing off)."""
    return _active


@contextmanager
def collecting(recorder: Optional[PerfRecorder] = None) -> Iterator[PerfRecorder]:
    """Install ``recorder`` (a fresh one by default) for the duration."""
    global _active
    previous = _active
    rec = recorder if recorder is not None else PerfRecorder()
    _active = rec
    try:
        yield rec
    finally:
        _active = previous


def count(name: str, n: float = 1) -> None:
    """Bump a counter on the installed recorder; no-op when tracing is off."""
    rec = _active
    if rec is not None:
        rec.count(name, n)


class _NullTimer:
    """Reusable do-nothing context manager for the tracing-off path.

    A plain object with empty ``__enter__``/``__exit__`` is several times
    cheaper than instantiating a generator-based context manager per
    call, and ``timer`` sits on per-job hot paths.
    """

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_TIMER = _NullTimer()


def timer(name: str):
    """Time a block on the installed recorder; no-op when tracing is off."""
    rec = _active
    if rec is None:
        return _NULL_TIMER
    return rec.timer(name)


def render_perf(perf: Dict[str, Any]) -> str:
    """Human-readable table of a :meth:`PerfRecorder.snapshot` report."""
    lines = ["perf report", "-----------"]
    derived = perf.get("derived", {})
    for key, value in derived.items():
        lines.append(f"{key:40s} {value:14.3f}")
    counters = perf.get("counters", {})
    if counters:
        lines.append("counters:")
        for key, value in counters.items():
            lines.append(f"  {key:38s} {value:14.0f}")
    timers = perf.get("timers", {})
    if timers:
        lines.append("timers (inclusive):")
        for key, cell in timers.items():
            seconds, calls = cell["seconds"], cell["calls"]
            per_call = seconds / calls * 1e6 if calls else 0.0
            lines.append(
                f"  {key:38s} {seconds:10.3f} s  {calls:10d} calls  "
                f"{per_call:10.1f} us/call"
            )
    return "\n".join(lines)
