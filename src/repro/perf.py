"""Compatibility shim: the perf layer now lives in :mod:`repro.obs`.

PR 4 introduced ``repro.perf`` (opt-in counters and re-entrant timers
on the engine/allocator/cost hot paths); the observability subsystem
absorbed it into :mod:`repro.obs.runtime` (hooks, recorder) and
:mod:`repro.obs.render` (report rendering), where the same hooks also
feed span tracing and progress reporting. This module re-exports the
original public surface so existing imports — and the engine/allocator
call sites that spell ``perf.count`` / ``perf.timer`` — keep working
unchanged. New code should import from :mod:`repro.obs`.
"""

from __future__ import annotations

from .obs.render import render_perf
from .obs.runtime import PerfRecorder, active, collecting, count, timer

__all__ = [
    "PerfRecorder",
    "active",
    "collecting",
    "count",
    "timer",
    "render_perf",
]
