"""Interactive SLURM-style controller (``sbatch`` / ``squeue`` / ``sinfo``).

The batch engine (:mod:`repro.scheduler.engine`) replays a fixed job
log; this facade offers the *online* operating mode a SLURM user
expects: submit jobs as virtual time advances, inspect the queue and
per-switch occupancy, cancel jobs. It drives the same substrate — one
:class:`~repro.cluster.state.ClusterState`, one allocator, one queue
policy, Eq. 7 runtime adjustment against the counterfactual default
allocation — so its scheduling decisions are bit-identical to the batch
engine given the same inputs.

Availability management mirrors ``scontrol update nodename=... state=``:
:meth:`SlurmCluster.scontrol_down` fails nodes immediately (interrupting
their jobs per the configured policy), :meth:`SlurmCluster.scontrol_drain`
stops new work without killing running jobs, and
:meth:`SlurmCluster.scontrol_resume` returns nodes to service. ``sinfo``
reports per-switch DOWN/DRAIN counts alongside occupancy.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..allocation.base import Allocator
from ..allocation.default_slurm import DefaultSlurmAllocator
from ..allocation.registry import get_allocator
from ..cluster.job import CommComponent, Job, JobKind
from ..cluster.state import AVAIL_DOWN, AVAIL_DRAINING, ClusterState
from ..cost.model import CostModel
from ..faults.policy import InterruptionBook, require_policy
from ..patterns.base import CommunicationPattern
from ..patterns.registry import get_pattern
from ..scheduler.metrics import JobRecord
from ..scheduler.queue_policy import QueuePolicy, RunningJobView, get_policy
from ..topology.tree import TreeTopology
from .._validation import require_fraction, require_non_negative, require_positive_int

__all__ = ["SlurmCluster", "QueueEntry", "SinfoRow", "JobState"]


@dataclass(frozen=True)
class QueueEntry:
    """One ``squeue`` line."""

    job_id: int
    state: str  # "RUNNING" or "PENDING"
    nodes: int
    submit_time: float
    start_time: Optional[float]
    expected_end: Optional[float]


@dataclass(frozen=True)
class SinfoRow:
    """One ``sinfo`` line: occupancy and availability of a leaf switch."""

    switch: str
    nodes: int
    free: int
    busy: int
    comm_busy: int
    io_busy: int = 0
    down: int = 0
    draining: int = 0


class JobState:
    """squeue-style job state labels."""
    RUNNING = "RUNNING"
    PENDING = "PENDING"
    COMPLETED = "COMPLETED"
    CANCELLED = "CANCELLED"
    FAILED = "FAILED"


@dataclass
class _Running:
    job: Job
    start_time: float
    finish_time: float
    nodes: np.ndarray
    cost_jobaware: Dict[str, float]
    cost_default: Dict[str, float]


class SlurmCluster:
    """An online mini-SLURM over the paper's allocation algorithms.

    Example::

        cluster = SlurmCluster(theta_like(), allocator="balanced")
        jid = cluster.sbatch(nodes=64, runtime=3600.0, kind="comm",
                             pattern="rhvd")
        cluster.advance(600.0)
        print(cluster.squeue())
    """

    def __init__(
        self,
        topology: TreeTopology,
        allocator: Union[str, Allocator] = "default",
        *,
        policy: str = "backfill",
        cost_model: Optional[CostModel] = None,
        interrupt_policy: str = "requeue",
        checkpoint_interval: float = 3600.0,
    ) -> None:
        self.topology = topology
        self.allocator = get_allocator(allocator) if isinstance(allocator, str) else allocator
        self.state = ClusterState(topology)
        self.cost_model = cost_model or CostModel()
        self._policy: QueuePolicy = get_policy(policy)
        self._default = DefaultSlurmAllocator()
        self.interrupt_policy = require_policy(interrupt_policy)
        if checkpoint_interval <= 0:
            raise ValueError(
                f"checkpoint_interval must be > 0, got {checkpoint_interval}"
            )
        self.checkpoint_interval = checkpoint_interval
        self._now = 0.0
        self._ids = itertools.count(1)
        self._pending: List[Job] = []
        self._running: Dict[int, _Running] = {}
        self._finish_heap: List[Tuple[float, int]] = []
        self._history: List[JobRecord] = []
        self._states: Dict[int, str] = {}
        self._books: Dict[int, InterruptionBook] = {}

    # ------------------------------------------------------------------
    # commands
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def sbatch(
        self,
        *,
        nodes: int,
        runtime: float,
        kind: str = "compute",
        pattern: Union[str, CommunicationPattern, None] = None,
        comm_fraction: float = 0.7,
    ) -> int:
        """Submit a job at the current virtual time; returns its job id.

        ``kind`` is ``"compute"``, ``"comm"``, or ``"io"``;
        communication-intensive jobs need a ``pattern`` (registry name
        or instance) and use ``comm_fraction`` of their runtime for it.
        """
        require_positive_int(nodes, "nodes")
        require_non_negative(runtime, "runtime")
        if nodes > self.topology.n_nodes:
            raise ValueError(
                f"job wants {nodes} nodes, the cluster has {self.topology.n_nodes}"
            )
        job_id = next(self._ids)
        if kind == "comm":
            require_fraction(comm_fraction, "comm_fraction")
            if pattern is None:
                raise ValueError("communication-intensive jobs need a pattern")
            if isinstance(pattern, str):
                pattern = get_pattern(pattern)
            job = Job(job_id, self._now, nodes, runtime, JobKind.COMM,
                      (CommComponent(pattern, comm_fraction),))
        elif kind == "compute":
            job = Job(job_id, self._now, nodes, runtime)
        elif kind == "io":
            job = Job(job_id, self._now, nodes, runtime, JobKind.IO)
        else:
            raise ValueError(
                f"kind must be 'compute', 'comm', or 'io', got {kind!r}"
            )
        self._pending.append(job)
        self._states[job_id] = JobState.PENDING
        self._schedule_pass()
        return job_id

    def scancel(self, job_id: int) -> str:
        """Cancel a pending or running job; returns its previous state.

        A job id that was never submitted raises ``KeyError``; one that
        already reached a terminal state (COMPLETED / CANCELLED /
        FAILED) raises ``ValueError`` naming that state, matching real
        ``scancel``'s distinct "invalid job id" vs "job already done"
        diagnostics.
        """
        for i, job in enumerate(self._pending):
            if job.job_id == job_id:
                del self._pending[i]
                self._states[job_id] = JobState.CANCELLED
                return JobState.PENDING
        entry = self._running.pop(job_id, None)
        if entry is not None:
            self.state.release(job_id)
            self._states[job_id] = JobState.CANCELLED
            self._schedule_pass()
            return JobState.RUNNING
        finished = self._states.get(job_id)
        if finished is not None:
            raise ValueError(f"job {job_id} is already {finished}")
        raise KeyError(f"unknown job {job_id}")

    def squeue(self) -> List[QueueEntry]:
        """Running jobs (by expected end) then pending jobs (FIFO)."""
        rows = [
            QueueEntry(
                job_id=r.job.job_id,
                state=JobState.RUNNING,
                nodes=r.job.nodes,
                submit_time=r.job.submit_time,
                start_time=r.start_time,
                expected_end=r.finish_time,
            )
            for r in sorted(self._running.values(), key=lambda r: r.finish_time)
        ]
        rows.extend(
            QueueEntry(
                job_id=j.job_id,
                state=JobState.PENDING,
                nodes=j.nodes,
                submit_time=j.submit_time,
                start_time=None,
                expected_end=None,
            )
            for j in self._pending
        )
        return rows

    def sinfo(self) -> List[SinfoRow]:
        """Per-leaf-switch occupancy and availability."""
        n_leaves = self.topology.n_leaves
        down = np.bincount(
            self.topology.leaf_of_node[self.state.node_avail == AVAIL_DOWN],
            minlength=n_leaves,
        )
        draining = np.bincount(
            self.topology.leaf_of_node[self.state.node_avail == AVAIL_DRAINING],
            minlength=n_leaves,
        )
        rows = []
        for k in range(n_leaves):
            info = self.topology.leaf(k)
            rows.append(
                SinfoRow(
                    switch=info.name,
                    nodes=int(self.topology.leaf_sizes[k]),
                    free=int(self.state.leaf_free[k]),
                    busy=int(self.state.leaf_busy[k]),
                    comm_busy=int(self.state.leaf_comm[k]),
                    io_busy=int(self.state.leaf_io[k]),
                    down=int(down[k]),
                    draining=int(draining[k]),
                )
            )
        return rows

    def job_state(self, job_id: int) -> str:
        """PENDING / RUNNING / COMPLETED / CANCELLED."""
        try:
            return self._states[job_id]
        except KeyError:
            raise KeyError(f"unknown job {job_id}") from None

    @property
    def history(self) -> List[JobRecord]:
        """Records of completed jobs, completion order."""
        return list(self._history)

    # ------------------------------------------------------------------
    # node availability (scontrol update state=DOWN / DRAIN / RESUME)
    # ------------------------------------------------------------------

    def _resolve_nodes(self, nodes) -> np.ndarray:
        """Node ids from an int, node name, leaf-switch name, or sequence."""
        if isinstance(nodes, (int, np.integer)):
            return np.asarray([int(nodes)], dtype=np.int64)
        if isinstance(nodes, str):
            try:
                return np.asarray([self.topology.node_id(nodes)], dtype=np.int64)
            except KeyError:
                pass
            info = self.topology.switch(nodes)  # raises KeyError if unknown
            if not info.is_leaf:
                raise ValueError(
                    f"switch {nodes!r} is not a leaf; name a leaf switch or nodes"
                )
            return self.topology.leaf_nodes(info.leaf_lo)
        out: List[int] = []
        for n in nodes:
            out.extend(int(x) for x in self._resolve_nodes(n))
        return np.asarray(sorted(set(out)), dtype=np.int64)

    def scontrol_down(self, nodes) -> np.ndarray:
        """Fail nodes now (``scontrol update state=DOWN reason=...``).

        ``nodes`` may be a node id, a node name, a leaf-switch name
        (failing the whole switch), or a sequence of those. Running jobs
        touching the nodes are interrupted per ``interrupt_policy``
        (requeued at the current time, checkpoint-resumed, or FAILED).
        Returns the node ids newly marked DOWN.
        """
        arr = self._resolve_nodes(nodes)
        for job_id in self.state.jobs_on(arr):
            entry = self._running.pop(job_id)
            self.state.release(job_id)
            book = self._books.setdefault(job_id, InterruptionBook())
            requeued = book.interrupt(
                self.interrupt_policy,
                start_time=entry.start_time,
                now=self._now,
                duration=entry.finish_time - entry.start_time,
                nodes=entry.job.nodes,
                checkpoint_interval=self.checkpoint_interval,
            )
            if requeued:
                self._pending.append(entry.job)
                self._states[job_id] = JobState.PENDING
            else:
                self._states[job_id] = JobState.FAILED
                self._history.append(
                    JobRecord(
                        job=entry.job,
                        start_time=entry.start_time,
                        finish_time=self._now,
                        nodes=entry.nodes,
                        cost_jobaware=entry.cost_jobaware,
                        cost_default=entry.cost_default,
                        requeues=book.requeues,
                        wasted_node_seconds=book.wasted_node_seconds,
                        failed=True,
                    )
                )
        transitioned = self.state.mark_down(arr)
        self._schedule_pass()
        return transitioned

    def scontrol_drain(self, nodes) -> np.ndarray:
        """Drain nodes: running jobs finish, nothing new lands on them."""
        return self.state.mark_drain(self._resolve_nodes(nodes))

    def scontrol_resume(self, nodes) -> np.ndarray:
        """Return DOWN/DRAINING nodes to service and reschedule."""
        transitioned = self.state.mark_up(self._resolve_nodes(nodes))
        self._schedule_pass()
        return transitioned

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------

    def advance(self, seconds: float) -> None:
        """Advance virtual time, processing completions along the way."""
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds} seconds")
        deadline = self._now + seconds
        while self._finish_heap and self._finish_heap[0][0] <= deadline:
            finish_time, job_id = heapq.heappop(self._finish_heap)
            entry = self._running.get(job_id)
            if entry is None or entry.finish_time != finish_time:
                continue  # cancelled or stale heap entry
            self._now = finish_time
            self._complete(entry)
            self._schedule_pass()
        self._now = deadline

    def drain(self, max_seconds: float = float("inf")) -> None:
        """Advance until queue and cluster are empty (or the cap is hit)."""
        t0 = self._now
        while (self._running or self._pending) and self._finish_heap:
            next_finish = self._finish_heap[0][0]
            if next_finish - t0 > max_seconds:
                break
            self.advance(next_finish - self._now)
        if self._pending and not self._running:
            raise RuntimeError(
                f"{len(self._pending)} pending jobs can never start "
                "(no running job will free nodes)"
            )

    # ------------------------------------------------------------------
    # internals (mirrors SchedulerEngine.start_job)
    # ------------------------------------------------------------------

    def _complete(self, entry: _Running) -> None:
        self.state.release(entry.job.job_id)
        del self._running[entry.job.job_id]
        self._states[entry.job.job_id] = JobState.COMPLETED
        book = self._books.get(entry.job.job_id)
        self._history.append(
            JobRecord(
                job=entry.job,
                start_time=entry.start_time,
                finish_time=entry.finish_time,
                nodes=entry.nodes,
                cost_jobaware=entry.cost_jobaware,
                cost_default=entry.cost_default,
                requeues=book.requeues if book else 0,
                wasted_node_seconds=book.wasted_node_seconds if book else 0.0,
            )
        )

    def _schedule_pass(self) -> None:
        if not self._pending:
            return
        views = [
            RunningJobView(finish_estimate=r.finish_time, nodes=len(r.nodes))
            for r in self._running.values()
        ]
        picks = self._policy.select_startable(
            self._now, self._pending, self.state.total_free, views
        )
        started = [self._pending[i] for i in picks]
        for i in sorted(picks, reverse=True):
            del self._pending[i]
        for job in started:
            self._start(job)

    def _start(self, job: Job) -> None:
        needs_counterfactual = (
            job.is_comm_intensive and self.allocator.name != self._default.name
        )
        dnodes = (
            self._default.allocate(self.state, job) if needs_counterfactual else None
        )
        nodes = self.allocator.allocate(self.state, job)
        default_view = (
            self.state.comm_overlay(dnodes, job.kind) if needs_counterfactual else None
        )
        self.state.allocate(job.job_id, nodes, job.kind)

        cost_jobaware: Dict[str, float] = {}
        cost_default: Dict[str, float] = {}
        runtime = job.runtime
        if job.is_comm_intensive:
            aware = {
                c.pattern: self.cost_model.allocation_cost(self.state, nodes, c.pattern)
                for c in job.comm
            }
            if needs_counterfactual:
                assert default_view is not None and dnodes is not None
                default = {
                    c.pattern: self.cost_model.allocation_cost(default_view, dnodes, c.pattern)
                    for c in job.comm
                }
            else:
                default = dict(aware)
            runtime = self.cost_model.adjusted_runtime(job, aware, default)
            cost_jobaware = {p.name: v for p, v in aware.items()}
            cost_default = {p.name: v for p, v in default.items()}

        book = self._books.get(job.job_id)
        remaining = book.remaining if book else 1.0
        entry = _Running(
            job=job,
            start_time=self._now,
            finish_time=self._now + runtime * remaining,
            nodes=nodes,
            cost_jobaware=cost_jobaware,
            cost_default=cost_default,
        )
        self._running[job.job_id] = entry
        self._states[job.job_id] = JobState.RUNNING
        heapq.heappush(self._finish_heap, (entry.finish_time, job.job_id))
