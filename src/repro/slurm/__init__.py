"""Online, SLURM-command-style facade over the scheduling substrate."""

from .controller import JobState, QueueEntry, SinfoRow, SlurmCluster
from .render import format_sinfo, format_squeue, format_time, transcript

__all__ = [
    "JobState",
    "QueueEntry",
    "SinfoRow",
    "SlurmCluster",
    "format_sinfo",
    "format_squeue",
    "format_time",
    "transcript",
]
