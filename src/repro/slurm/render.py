"""SLURM-look-alike text rendering for the interactive controller.

``squeue``/``sinfo`` users expect fixed-width columns with the classic
headers; these helpers format :class:`~repro.slurm.controller.QueueEntry`
and :class:`~repro.slurm.controller.SinfoRow` lists accordingly, so an
interactive session reads like a real terminal transcript.
"""

from __future__ import annotations

from typing import List, Sequence

from .controller import QueueEntry, SinfoRow, SlurmCluster

__all__ = ["format_squeue", "format_sinfo", "format_time"]


def format_time(seconds) -> str:
    """SLURM elapsed-time style: ``D-HH:MM:SS`` (days only when > 0)."""
    if seconds is None:
        return "N/A"
    total = int(round(float(seconds)))
    if total < 0:
        raise ValueError(f"time must be >= 0, got {seconds}")
    days, rem = divmod(total, 86400)
    hours, rem = divmod(rem, 3600)
    minutes, secs = divmod(rem, 60)
    base = f"{hours:02d}:{minutes:02d}:{secs:02d}"
    return f"{days}-{base}" if days else base


def format_squeue(entries: Sequence[QueueEntry], *, now: float = 0.0) -> str:
    """Render queue entries with squeue-style columns.

    The TIME column shows elapsed runtime for running jobs and queued
    time for pending ones, like real squeue.
    """
    header = f"{'JOBID':>8} {'ST':>3} {'NODES':>6} {'TIME':>12} {'START':>12} {'END':>12}"
    lines: List[str] = [header]
    for e in entries:
        if e.state == "RUNNING":
            elapsed = format_time(max(now - (e.start_time or 0.0), 0.0))
            start = format_time(e.start_time)
            end = format_time(e.expected_end)
            st = "R"
        else:
            elapsed = format_time(max(now - e.submit_time, 0.0))
            start, end = "N/A", "N/A"
            st = "PD"
        lines.append(
            f"{e.job_id:>8} {st:>3} {e.nodes:>6} {elapsed:>12} {start:>12} {end:>12}"
        )
    return "\n".join(lines)


def format_sinfo(rows: Sequence[SinfoRow]) -> str:
    """Render per-switch occupancy with sinfo-style A/I/O/T columns.

    SLURM's ``sinfo -o %C`` reports allocated/idle/other/total; here the
    "other" column is split into the comm/io interference counters the
    paper's algorithms care about.
    """
    header = (
        f"{'SWITCH':>12} {'ALLOC':>6} {'IDLE':>6} {'COMM':>6} {'IO':>6} "
        f"{'TOTAL':>6} {'DOWN':>6} {'DRAIN':>6}"
    )
    lines: List[str] = [header]
    for r in rows:
        lines.append(
            f"{r.switch:>12} {r.busy:>6} {r.free:>6} {r.comm_busy:>6} "
            f"{r.io_busy:>6} {r.nodes:>6} {r.down:>6} {r.draining:>6}"
        )
    return "\n".join(lines)


def transcript(cluster: SlurmCluster, *, max_switches: int = 12) -> str:
    """One-shot ``squeue`` + ``sinfo`` snapshot of a live cluster."""
    out = [
        f"$ squeue   (t = {cluster.now:.0f}s)",
        format_squeue(cluster.squeue(), now=cluster.now),
        "",
        "$ sinfo",
        format_sinfo(cluster.sinfo()[:max_switches]),
    ]
    skipped = cluster.topology.n_leaves - max_switches
    if skipped > 0:
        out.append(f"... {skipped} more switches")
    return "\n".join(out)
