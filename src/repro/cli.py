"""Command-line interface: ``repro-sched`` / ``python -m repro``.

Subcommands:

* ``experiment <name>`` — regenerate a paper table/figure
  (figure1, table2, table3, figure6, table4, figure7, figure8, figure9).
* ``simulate`` — run one synthetic log through one allocator and print
  the aggregate metrics.
* ``topology <machine>`` — emit the ``topology.conf`` of a builtin
  machine shape.
* ``validate-conf <file>`` — lint a ``topology.conf`` file.
* ``trace`` — generate a synthetic machine log (SWF) or print the
  statistics of an existing one.
* ``verify-run`` — replay journaled tasks of a finished run and diff
  their digests against the journal (determinism check).
* ``obs render`` — summarize observability artifacts written by
  ``simulate --metrics-out`` / ``--trace-out`` (see
  ``docs/observability.md``).

``simulate`` is crash-safe: ``--checkpoint-path``/``--checkpoint-every``
periodically write an atomic engine checkpoint, ``--resume-from``
continues one bit-identically, and SIGINT/SIGTERM write a final
checkpoint (when enabled) and exit 130 with a one-line message instead
of a traceback. See ``docs/resilience.md``.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from dataclasses import replace
from typing import List, Optional

from .experiments import EXPERIMENT_RUNNERS, ExperimentConfig, continuous_runs
from .experiments.report import render_kv, write_report
from .scheduler.serialize import dump_result
from .topology.builders import TOPOLOGY_BUILDERS
from .topology.config import load_topology_conf, write_topology_conf
from .topology.tree import TopologyError
from .workloads.classify import single_pattern_mix
from .workloads.logs import LOG_SPECS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro-sched`` argument parser (all subcommands)."""
    parser = argparse.ArgumentParser(
        prog="repro-sched",
        description="Reproduction of 'Communication-aware Job Scheduling using SLURM' (ICPP-W 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("name", choices=sorted(EXPERIMENT_RUNNERS))
    exp.add_argument(
        "--jobs", type=int, default=None,
        help="jobs per log (default: the experiment's paper-scale default)",
    )
    exp.add_argument("--seed", type=int, default=0)
    exp.add_argument(
        "--output", default=None, metavar="FILE",
        help="also write the rendered report to FILE (atomic write)",
    )

    sim = sub.add_parser("simulate", help="run one log through one allocator")
    sim.add_argument("--log", choices=sorted(LOG_SPECS), default="theta")
    sim.add_argument(
        "--allocator",
        choices=("default", "greedy", "balanced", "adaptive", "linear"),
        default="balanced",
    )
    sim.add_argument("--jobs", type=int, default=1000)
    sim.add_argument("--percent-comm", type=float, default=90.0)
    sim.add_argument(
        "--pattern",
        choices=("rd", "rhvd", "binomial", "alltoall", "ring", "stencil2d"),
        default="rhvd",
    )
    sim.add_argument("--comm-fraction", type=float, default=0.70)
    sim.add_argument(
        "--policy", choices=("backfill", "fifo", "conservative"), default="backfill"
    )
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="run allocators in N parallel processes (results are "
        "bit-identical to the serial path)",
    )
    sim.add_argument(
        "--save", default=None, metavar="DIR",
        help="write each run's records as JSON into this directory",
    )
    sim.add_argument(
        "--fault-trace", default=None, metavar="FILE",
        help="replay node/switch failures from a fault trace file "
        "(takes precedence over --fault-rate)",
    )
    sim.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="PER_HOUR",
        help="generate random failures at this rate per hour "
        "(0 = no faults, the default; bit-identical to the fault-free path)",
    )
    sim.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the random fault generator (same seed = same faults)",
    )
    sim.add_argument(
        "--mttr", type=float, default=1800.0, metavar="SECONDS",
        help="mean downtime of a generated failure (default 1800s)",
    )
    sim.add_argument(
        "--switch-fault-fraction", type=float, default=0.1, metavar="FRAC",
        help="fraction of generated failures that take a whole leaf "
        "switch down (default 0.1)",
    )
    sim.add_argument(
        "--interrupt-policy",
        choices=("requeue", "checkpoint", "abandon"),
        default="requeue",
        help="what happens to a running job killed by a failure",
    )
    sim.add_argument(
        "--checkpoint-interval", type=float, default=3600.0, metavar="SECONDS",
        help="checkpoint period for --interrupt-policy checkpoint",
    )
    sim.add_argument(
        "--checkpoint-path", default=None, metavar="FILE",
        help="write engine checkpoints to FILE (atomic; single-allocator "
        "runs only). SIGINT/SIGTERM write a final checkpoint here.",
    )
    sim.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="checkpoint every N event batches (requires --checkpoint-path)",
    )
    sim.add_argument(
        "--resume-from", default=None, metavar="FILE",
        help="resume a checkpointed run; the completed result is "
        "bit-identical to an uninterrupted one",
    )
    sim.add_argument(
        "--stop-after-events", type=int, default=None, metavar="N",
        help="pause the run after N event batches (writes a checkpoint "
        "when --checkpoint-path is set) — mainly for crash/resume tests",
    )
    sim.add_argument(
        "--journal", default=None, metavar="FILE",
        help="append task specs, attempts, and result digests to this "
        "JSONL run journal (enables 'repro-sched verify-run' later)",
    )
    sim.add_argument(
        "--max-retries", type=int, default=0, metavar="N",
        help="retry a failed allocator run up to N times with backoff",
    )
    sim.add_argument(
        "--on-task-error", choices=("retry", "skip", "raise"), default="retry",
        help="what to do when an allocator run exhausts its retries: "
        "skip reports partial results naming the missing cells",
    )
    sim.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-task timeout for parallel runs (hung workers are "
        "terminated and the task retried)",
    )
    sim.add_argument(
        "--perf", action="store_true",
        help="trace scheduler hot paths (passes run/skipped, allocator "
        "and cost-kernel time, events/sec) and print the report after "
        "the summary; forces the single-engine path",
    )
    sim.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write run metrics (paper aggregates, distributions, perf "
        "counters) as Prometheus text exposition to FILE; forces the "
        "single-engine path and implies perf collection",
    )
    sim.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="record nested wall-clock spans of the hot paths and write "
        "them as JSONL to FILE; forces the single-engine path",
    )
    sim.add_argument(
        "--progress", action="store_true",
        help="print a throttled progress heartbeat (events, jobs, "
        "sim-clock, ETA) to stderr while the simulation runs",
    )

    topo = sub.add_parser("topology", help="print a builtin machine's topology.conf")
    topo.add_argument("machine", choices=sorted(TOPOLOGY_BUILDERS))
    topo.add_argument(
        "--describe", action="store_true",
        help="render the switch tree instead of topology.conf syntax",
    )

    lint = sub.add_parser("validate-conf", help="lint a topology.conf file")
    lint.add_argument("path")

    trace = sub.add_parser("trace", help="generate or inspect a job trace")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    gen = trace_sub.add_parser("generate", help="write a synthetic log as SWF")
    gen.add_argument("--log", choices=sorted(LOG_SPECS), default="theta")
    gen.add_argument("--jobs", type=int, default=1000)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--output", default="-", help="file path or - for stdout")
    stats = trace_sub.add_parser("stats", help="print statistics of an SWF file")
    stats.add_argument("path")
    stats.add_argument("--processors-per-node", type=int, default=1)

    verify = sub.add_parser(
        "verify-run",
        help="replay journaled tasks and diff digests (determinism check)",
    )
    verify.add_argument("path", help="run journal written with --journal")
    verify.add_argument(
        "--sample", type=int, default=None, metavar="N",
        help="replay a seeded sample of N completed tasks (default: all)",
    )
    verify.add_argument("--seed", type=int, default=0, help="sampling seed")

    obs_cmd = sub.add_parser(
        "obs", help="inspect observability artifacts (metrics, span traces)"
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    render = obs_sub.add_parser(
        "render",
        help="summarize a metrics dump and/or span trace as a table",
    )
    render.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="Prometheus text file written by 'simulate --metrics-out'",
    )
    render.add_argument(
        "--trace", default=None, metavar="FILE",
        help="span-trace JSONL written by 'simulate --trace-out'",
    )

    return parser


def _cmd_experiment(args: argparse.Namespace) -> int:
    runner = EXPERIMENT_RUNNERS[args.name]
    kwargs = {}
    if args.name not in ("table2", "figure1", "validation"):
        kwargs["seed"] = args.seed
        if args.jobs is not None:
            kwargs["n_jobs"] = args.jobs
    if args.name == "validation":
        kwargs["seed"] = args.seed
    if args.name == "all" and args.jobs is None:
        kwargs["n_jobs"] = 200  # keep the run-everything command snappy
    result = runner(**kwargs)
    text = result.render()
    print(text)
    if args.output:
        write_report(text, args.output)
        print(f"wrote {args.output}")
    return 0


def _simulate_faults(args: argparse.Namespace, cfg, jobs):
    """Fault schedule for ``simulate``: replayed trace or seeded generator."""
    from .faults import FaultGeneratorConfig, generate_faults, load_fault_trace

    if args.fault_trace is not None:
        return tuple(load_fault_trace(args.fault_trace, cfg.topology()))
    if args.fault_rate < 0:
        raise ValueError(f"--fault-rate must be >= 0, got {args.fault_rate}")
    if args.fault_rate > 0:
        # Horizon upper-bounds the busy period; later faults hit an idle
        # cluster and are skipped by the engine's early exit.
        horizon = max(j.submit_time for j in jobs) + sum(j.runtime for j in jobs)
        fault_cfg = FaultGeneratorConfig(
            rate=args.fault_rate,
            horizon=horizon,
            seed=args.fault_seed,
            mean_downtime=args.mttr,
            switch_fraction=args.switch_fault_fraction,
        )
        return tuple(generate_faults(cfg.topology(), fault_cfg))
    return ()


class _StopRequested:
    """Signal-set flag the engine polls between event batches."""

    def __init__(self) -> None:
        self.tripped = False

    def __call__(self) -> bool:
        return self.tripped


def _save_results(args: argparse.Namespace, results) -> None:
    import pathlib

    out_dir = pathlib.Path(args.save)
    out_dir.mkdir(parents=True, exist_ok=True)
    for name, res in results.items():
        path = out_dir / f"{args.log}_{name}.json"
        dump_result(res, path)
        print(f"wrote {path}")


def _simulate_engine_path(args: argparse.Namespace) -> int:
    """Single-engine simulate with checkpoint/resume and signal safety."""
    from contextlib import ExitStack

    from .experiments.runner import prepare_jobs
    from .obs import ProgressReporter, SpanTracer, tracing
    from .scheduler.engine import SchedulerEngine, SimulationInterrupted
    from .scheduler.serialize import load_snapshot

    collect = bool(args.perf or args.metrics_out)
    flag = _StopRequested()

    def _handler(signum, frame):  # pragma: no cover - exercised via SIGINT test
        flag.tripped = True

    previous = {
        sig: signal.signal(sig, _handler) for sig in (signal.SIGINT, signal.SIGTERM)
    }
    tracer = SpanTracer() if args.trace_out is not None else None
    try:
        with ExitStack() as stack:
            if tracer is not None:
                stack.enter_context(tracing(tracer))
                stack.enter_context(tracer.span("engine.run"))
            if args.resume_from is not None:
                data = load_snapshot(args.resume_from)
                engine = SchedulerEngine.from_snapshot(data)
                if collect:
                    engine.config = replace(engine.config, collect_perf=True)
                reporter = (
                    ProgressReporter(total_jobs=None) if args.progress else None
                )
                result = engine.run(
                    resume_from=data,
                    checkpoint_every=args.checkpoint_every,
                    checkpoint_path=args.checkpoint_path,
                    stop_after=args.stop_after_events,
                    interrupt=flag,
                    progress=reporter,
                )
            else:
                cfg = ExperimentConfig(
                    log=args.log,
                    n_jobs=args.jobs,
                    percent_comm=args.percent_comm,
                    mix=single_pattern_mix(args.pattern, args.comm_fraction),
                    allocators=(args.allocator,),
                    seed=args.seed,
                    policy=args.policy,
                    interrupt_policy=args.interrupt_policy,
                    checkpoint_interval=args.checkpoint_interval,
                )
                jobs = prepare_jobs(cfg)
                faults = _simulate_faults(args, cfg, jobs)
                engine_cfg = cfg.engine_config()
                if collect:
                    engine_cfg = replace(engine_cfg, collect_perf=True)
                engine = SchedulerEngine(cfg.topology(), args.allocator, engine_cfg)
                reporter = (
                    ProgressReporter(total_jobs=len(jobs)) if args.progress else None
                )
                result = engine.run(
                    jobs,
                    faults=faults,
                    checkpoint_every=args.checkpoint_every,
                    checkpoint_path=args.checkpoint_path,
                    stop_after=args.stop_after_events,
                    interrupt=flag,
                    progress=reporter,
                )
    except SimulationInterrupted as exc:
        print(exc, file=sys.stderr)
        return 130
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)
    if tracer is not None:
        tracer.write_jsonl(args.trace_out)
        print(
            f"wrote {len(tracer.spans)} spans to {args.trace_out}"
            + (f" ({tracer.dropped} dropped)" if tracer.dropped else "")
        )
    if result is None:
        where = (
            f"; checkpoint written to {args.checkpoint_path}"
            if args.checkpoint_path
            else " (no checkpoint path — state discarded)"
        )
        print(f"paused after {args.stop_after_events} event batches{where}")
        if args.metrics_out:
            print(
                "note: --metrics-out skipped (run paused before completion)",
                file=sys.stderr,
            )
        return 0
    print(
        render_kv(
            sorted(result.summary().items()),
            title=f"--- {engine.allocator.name} ---",
        )
    )
    if args.perf and result.perf is not None:
        from .perf import render_perf

        print(render_perf(result.perf))
    if args.metrics_out:
        from .obs import metrics_from_result
        from .runs.atomic import atomic_write_text

        # --metrics-out implies perf collection, so result.perf carries
        # engine.events / engine.batches alongside the paper aggregates.
        registry = metrics_from_result(result)
        atomic_write_text(args.metrics_out, registry.render_prometheus())
        print(f"wrote metrics to {args.metrics_out}")
    if args.save:
        _save_results(args, {engine.allocator.name: result})
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .experiments.runner import prepare_jobs
    from .faults.trace import FaultTraceError

    engine_path = (
        args.resume_from is not None
        or args.checkpoint_path is not None
        or args.stop_after_events is not None
        or args.perf
        or args.metrics_out is not None
        or args.trace_out is not None
    )
    if args.checkpoint_every is not None and args.checkpoint_path is None:
        print("error: --checkpoint-every requires --checkpoint-path", file=sys.stderr)
        return 2
    try:
        if engine_path:
            return _simulate_engine_path(args)
        cfg = ExperimentConfig(
            log=args.log,
            n_jobs=args.jobs,
            percent_comm=args.percent_comm,
            mix=single_pattern_mix(args.pattern, args.comm_fraction),
            allocators=(args.allocator,) if args.allocator == "default" else ("default", args.allocator),
            seed=args.seed,
            policy=args.policy,
            interrupt_policy=args.interrupt_policy,
            checkpoint_interval=args.checkpoint_interval,
        )
        jobs = prepare_jobs(cfg)
        cfg = cfg.with_(faults=_simulate_faults(args, cfg, jobs))
        reporter = None
        if args.progress:
            from .obs import ProgressReporter

            reporter = ProgressReporter()
        results = continuous_runs(
            cfg,
            jobs,
            workers=args.workers,
            max_retries=args.max_retries,
            on_task_error=args.on_task_error,
            journal=args.journal,
            task_timeout=args.task_timeout,
            progress=reporter,
        )
        if reporter is not None:
            reporter.finish()
    except KeyboardInterrupt:
        print("simulation interrupted (no checkpoint configured)", file=sys.stderr)
        return 130
    except (OSError, FaultTraceError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for name, res in results.items():
        print(render_kv(sorted(res.summary().items()), title=f"--- {name} ---"))
    if args.save:
        _save_results(args, results)
    missing = getattr(results, "missing", None)
    if missing:
        for name, error in missing.items():
            print(f"missing cell {name!r}: {error}", file=sys.stderr)
        return 1
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    topology = TOPOLOGY_BUILDERS[args.machine]()
    if args.describe:
        from .topology.describe import describe_topology

        print(describe_topology(topology))
    else:
        sys.stdout.write(write_topology_conf(topology))
    return 0


def _cmd_validate_conf(args: argparse.Namespace) -> int:
    try:
        topology = load_topology_conf(args.path)
    except (TopologyError, OSError) as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    print(
        render_kv(
            [
                ("nodes", topology.n_nodes),
                ("leaf switches", topology.n_leaves),
                ("total switches", topology.n_switches),
                ("tree height", topology.height),
                ("largest leaf", int(topology.leaf_sizes.max())),
                ("smallest leaf", int(topology.leaf_sizes.min())),
            ],
            title=f"OK: {args.path}",
        )
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .workloads import generate_log
    from .workloads.logs import LOG_SPECS as SPECS

    if args.trace_command == "generate":
        from .workloads.swf import STATUS_COMPLETED, SwfRecord, write_swf

        trace = generate_log(SPECS[args.log], args.jobs, seed=args.seed)
        records = [
            SwfRecord(
                job_number=t.job_id, submit_time=int(t.submit_time), wait_time=-1,
                run_time=max(int(t.runtime), 1), allocated_processors=t.nodes,
                average_cpu_time=-1, used_memory=-1, requested_processors=t.nodes,
                requested_time=max(int(t.runtime), 1), requested_memory=-1,
                status=STATUS_COMPLETED, user_id=-1, group_id=-1, executable=-1,
                queue_number=1, partition_number=1, preceding_job=-1, think_time=-1,
            )
            for t in trace
        ]
        text = write_swf(records, header=f"synthetic {args.log} log, seed {args.seed}")
        if args.output == "-":
            sys.stdout.write(text)
        else:
            from .runs.atomic import atomic_write_text

            atomic_write_text(args.output, text)
            print(f"wrote {len(records)} jobs to {args.output}")
        return 0

    # stats
    import numpy as np

    from .workloads import load_swf, swf_to_trace

    trace = swf_to_trace(
        load_swf(args.path), processors_per_node=args.processors_per_node
    )
    if not trace:
        print("no schedulable jobs in trace", file=sys.stderr)
        return 1
    sizes = np.array([t.nodes for t in trace])
    runtimes = np.array([t.runtime for t in trace])
    submits = np.array([t.submit_time for t in trace])
    pow2 = np.mean([(n & (n - 1)) == 0 for n in sizes])
    print(
        render_kv(
            [
                ("jobs", len(trace)),
                ("span (hours)", float(submits.max() - submits.min()) / 3600.0),
                ("mean interarrival (s)", float(np.diff(np.sort(submits)).mean())),
                ("median nodes", float(np.median(sizes))),
                ("max nodes", int(sizes.max())),
                ("power-of-two share", float(pow2)),
                ("median runtime (s)", float(np.median(runtimes))),
                ("max runtime (s)", float(runtimes.max())),
            ],
            title=f"trace statistics: {args.path}",
        )
    )
    return 0


def _cmd_verify_run(args: argparse.Namespace) -> int:
    from .runs import verify_journal

    try:
        report = verify_journal(args.path, sample=args.sample, seed=args.seed)
    except (OSError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    return 0 if report.ok else 1


def _cmd_obs(args: argparse.Namespace) -> int:
    from .obs import PromParseError, load_spans, parse_prometheus, render_obs_summary

    if args.obs_command != "render":  # pragma: no cover - argparse enforces
        raise AssertionError(f"unhandled obs command {args.obs_command!r}")
    if args.metrics is None and args.trace is None:
        print("error: obs render needs --metrics and/or --trace", file=sys.stderr)
        return 2
    samples = types = spans = None
    try:
        if args.metrics is not None:
            with open(args.metrics, "r", encoding="utf-8") as handle:
                samples, types = parse_prometheus(handle.read())
        if args.trace is not None:
            spans = load_spans(args.trace)
            from .obs import validate_spans

            validate_spans(spans)
    except (OSError, PromParseError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_obs_summary(samples=samples, types=types, spans=spans))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    try:
        return _dispatch(build_parser().parse_args(argv))
    except BrokenPipeError:
        # stdout was closed early (e.g. piped into `head`); the output
        # already produced is all the consumer wanted. Detach stdout so
        # the interpreter's exit-time flush does not raise again.
        devnull = open(os.devnull, "w")
        os.dup2(devnull.fileno(), sys.stdout.fileno())
        return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "topology":
        return _cmd_topology(args)
    if args.command == "validate-conf":
        return _cmd_validate_conf(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "verify-run":
        return _cmd_verify_run(args)
    if args.command == "obs":
        return _cmd_obs(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
