"""Command-line interface: ``repro-sched`` / ``python -m repro``.

Subcommands:

* ``experiment <name>`` — regenerate a paper table/figure
  (figure1, table2, table3, figure6, table4, figure7, figure8, figure9).
* ``simulate`` — run one synthetic log through one allocator and print
  the aggregate metrics.
* ``topology <machine>`` — emit the ``topology.conf`` of a builtin
  machine shape.
* ``validate-conf <file>`` — lint a ``topology.conf`` file.
* ``trace`` — generate a synthetic machine log (SWF) or print the
  statistics of an existing one.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments import EXPERIMENT_RUNNERS, ExperimentConfig, continuous_runs
from .experiments.report import render_kv
from .scheduler.serialize import dump_result
from .topology.builders import TOPOLOGY_BUILDERS
from .topology.config import load_topology_conf, write_topology_conf
from .topology.tree import TopologyError
from .workloads.classify import single_pattern_mix
from .workloads.logs import LOG_SPECS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sched",
        description="Reproduction of 'Communication-aware Job Scheduling using SLURM' (ICPP-W 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("name", choices=sorted(EXPERIMENT_RUNNERS))
    exp.add_argument(
        "--jobs", type=int, default=None,
        help="jobs per log (default: the experiment's paper-scale default)",
    )
    exp.add_argument("--seed", type=int, default=0)

    sim = sub.add_parser("simulate", help="run one log through one allocator")
    sim.add_argument("--log", choices=sorted(LOG_SPECS), default="theta")
    sim.add_argument(
        "--allocator",
        choices=("default", "greedy", "balanced", "adaptive", "linear"),
        default="balanced",
    )
    sim.add_argument("--jobs", type=int, default=1000)
    sim.add_argument("--percent-comm", type=float, default=90.0)
    sim.add_argument(
        "--pattern",
        choices=("rd", "rhvd", "binomial", "alltoall", "ring", "stencil2d"),
        default="rhvd",
    )
    sim.add_argument("--comm-fraction", type=float, default=0.70)
    sim.add_argument(
        "--policy", choices=("backfill", "fifo", "conservative"), default="backfill"
    )
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="run allocators in N parallel processes (results are "
        "bit-identical to the serial path)",
    )
    sim.add_argument(
        "--save", default=None, metavar="DIR",
        help="write each run's records as JSON into this directory",
    )
    sim.add_argument(
        "--fault-trace", default=None, metavar="FILE",
        help="replay node/switch failures from a fault trace file "
        "(takes precedence over --fault-rate)",
    )
    sim.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="PER_HOUR",
        help="generate random failures at this rate per hour "
        "(0 = no faults, the default; bit-identical to the fault-free path)",
    )
    sim.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the random fault generator (same seed = same faults)",
    )
    sim.add_argument(
        "--mttr", type=float, default=1800.0, metavar="SECONDS",
        help="mean downtime of a generated failure (default 1800s)",
    )
    sim.add_argument(
        "--switch-fault-fraction", type=float, default=0.1, metavar="FRAC",
        help="fraction of generated failures that take a whole leaf "
        "switch down (default 0.1)",
    )
    sim.add_argument(
        "--interrupt-policy",
        choices=("requeue", "checkpoint", "abandon"),
        default="requeue",
        help="what happens to a running job killed by a failure",
    )
    sim.add_argument(
        "--checkpoint-interval", type=float, default=3600.0, metavar="SECONDS",
        help="checkpoint period for --interrupt-policy checkpoint",
    )

    topo = sub.add_parser("topology", help="print a builtin machine's topology.conf")
    topo.add_argument("machine", choices=sorted(TOPOLOGY_BUILDERS))
    topo.add_argument(
        "--describe", action="store_true",
        help="render the switch tree instead of topology.conf syntax",
    )

    lint = sub.add_parser("validate-conf", help="lint a topology.conf file")
    lint.add_argument("path")

    trace = sub.add_parser("trace", help="generate or inspect a job trace")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    gen = trace_sub.add_parser("generate", help="write a synthetic log as SWF")
    gen.add_argument("--log", choices=sorted(LOG_SPECS), default="theta")
    gen.add_argument("--jobs", type=int, default=1000)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--output", default="-", help="file path or - for stdout")
    stats = trace_sub.add_parser("stats", help="print statistics of an SWF file")
    stats.add_argument("path")
    stats.add_argument("--processors-per-node", type=int, default=1)

    return parser


def _cmd_experiment(args: argparse.Namespace) -> int:
    runner = EXPERIMENT_RUNNERS[args.name]
    kwargs = {}
    if args.name not in ("table2", "figure1", "validation"):
        kwargs["seed"] = args.seed
        if args.jobs is not None:
            kwargs["n_jobs"] = args.jobs
    if args.name == "validation":
        kwargs["seed"] = args.seed
    if args.name == "all" and args.jobs is None:
        kwargs["n_jobs"] = 200  # keep the run-everything command snappy
    result = runner(**kwargs)
    print(result.render())
    return 0


def _simulate_faults(args: argparse.Namespace, cfg, jobs):
    """Fault schedule for ``simulate``: replayed trace or seeded generator."""
    from .faults import FaultGeneratorConfig, generate_faults, load_fault_trace

    if args.fault_trace is not None:
        return tuple(load_fault_trace(args.fault_trace, cfg.topology()))
    if args.fault_rate < 0:
        raise ValueError(f"--fault-rate must be >= 0, got {args.fault_rate}")
    if args.fault_rate > 0:
        # Horizon upper-bounds the busy period; later faults hit an idle
        # cluster and are skipped by the engine's early exit.
        horizon = max(j.submit_time for j in jobs) + sum(j.runtime for j in jobs)
        fault_cfg = FaultGeneratorConfig(
            rate=args.fault_rate,
            horizon=horizon,
            seed=args.fault_seed,
            mean_downtime=args.mttr,
            switch_fraction=args.switch_fault_fraction,
        )
        return tuple(generate_faults(cfg.topology(), fault_cfg))
    return ()


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .experiments.runner import prepare_jobs
    from .faults.trace import FaultTraceError

    try:
        cfg = ExperimentConfig(
            log=args.log,
            n_jobs=args.jobs,
            percent_comm=args.percent_comm,
            mix=single_pattern_mix(args.pattern, args.comm_fraction),
            allocators=(args.allocator,) if args.allocator == "default" else ("default", args.allocator),
            seed=args.seed,
            policy=args.policy,
            interrupt_policy=args.interrupt_policy,
            checkpoint_interval=args.checkpoint_interval,
        )
        jobs = prepare_jobs(cfg)
        cfg = cfg.with_(faults=_simulate_faults(args, cfg, jobs))
        results = continuous_runs(cfg, jobs, workers=args.workers)
    except (OSError, FaultTraceError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for name, res in results.items():
        print(render_kv(sorted(res.summary().items()), title=f"--- {name} ---"))
    if args.save:
        import pathlib

        out_dir = pathlib.Path(args.save)
        out_dir.mkdir(parents=True, exist_ok=True)
        for name, res in results.items():
            path = out_dir / f"{args.log}_{name}.json"
            dump_result(res, path)
            print(f"wrote {path}")
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    topology = TOPOLOGY_BUILDERS[args.machine]()
    if args.describe:
        from .topology.describe import describe_topology

        print(describe_topology(topology))
    else:
        sys.stdout.write(write_topology_conf(topology))
    return 0


def _cmd_validate_conf(args: argparse.Namespace) -> int:
    try:
        topology = load_topology_conf(args.path)
    except (TopologyError, OSError) as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    print(
        render_kv(
            [
                ("nodes", topology.n_nodes),
                ("leaf switches", topology.n_leaves),
                ("total switches", topology.n_switches),
                ("tree height", topology.height),
                ("largest leaf", int(topology.leaf_sizes.max())),
                ("smallest leaf", int(topology.leaf_sizes.min())),
            ],
            title=f"OK: {args.path}",
        )
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .workloads import generate_log
    from .workloads.logs import LOG_SPECS as SPECS

    if args.trace_command == "generate":
        from .workloads.swf import STATUS_COMPLETED, SwfRecord, write_swf

        trace = generate_log(SPECS[args.log], args.jobs, seed=args.seed)
        records = [
            SwfRecord(
                job_number=t.job_id, submit_time=int(t.submit_time), wait_time=-1,
                run_time=max(int(t.runtime), 1), allocated_processors=t.nodes,
                average_cpu_time=-1, used_memory=-1, requested_processors=t.nodes,
                requested_time=max(int(t.runtime), 1), requested_memory=-1,
                status=STATUS_COMPLETED, user_id=-1, group_id=-1, executable=-1,
                queue_number=1, partition_number=1, preceding_job=-1, think_time=-1,
            )
            for t in trace
        ]
        text = write_swf(records, header=f"synthetic {args.log} log, seed {args.seed}")
        if args.output == "-":
            sys.stdout.write(text)
        else:
            with open(args.output, "w") as fh:
                fh.write(text)
            print(f"wrote {len(records)} jobs to {args.output}")
        return 0

    # stats
    import numpy as np

    from .workloads import load_swf, swf_to_trace

    trace = swf_to_trace(
        load_swf(args.path), processors_per_node=args.processors_per_node
    )
    if not trace:
        print("no schedulable jobs in trace", file=sys.stderr)
        return 1
    sizes = np.array([t.nodes for t in trace])
    runtimes = np.array([t.runtime for t in trace])
    submits = np.array([t.submit_time for t in trace])
    pow2 = np.mean([(n & (n - 1)) == 0 for n in sizes])
    print(
        render_kv(
            [
                ("jobs", len(trace)),
                ("span (hours)", float(submits.max() - submits.min()) / 3600.0),
                ("mean interarrival (s)", float(np.diff(np.sort(submits)).mean())),
                ("median nodes", float(np.median(sizes))),
                ("max nodes", int(sizes.max())),
                ("power-of-two share", float(pow2)),
                ("median runtime (s)", float(np.median(runtimes))),
                ("max runtime (s)", float(runtimes.max())),
            ],
            title=f"trace statistics: {args.path}",
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "topology":
        return _cmd_topology(args)
    if args.command == "validate-conf":
        return _cmd_validate_conf(args)
    if args.command == "trace":
        return _cmd_trace(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
