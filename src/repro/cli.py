"""Command-line interface: ``repro-sched`` / ``python -m repro``.

Subcommands:

* ``experiment <name>`` — regenerate a paper table/figure
  (figure1, table2, table3, figure6, table4, figure7, figure8, figure9).
* ``simulate`` — run one synthetic log through one allocator and print
  the aggregate metrics.
* ``topology <machine>`` — emit the ``topology.conf`` of a builtin
  machine shape.
* ``validate-conf <file>`` — lint a ``topology.conf`` file.
* ``trace`` — generate a synthetic machine log (SWF) or print the
  statistics of an existing one.
* ``verify-run`` — replay journaled tasks of a finished run and diff
  their digests against the journal (determinism check). Exit codes:
  0 ok, 1 digest mismatch, 2 other error, 3 artifact integrity failure.
* ``obs render`` — summarize observability artifacts written by
  ``simulate --metrics-out`` / ``--trace-out`` (see
  ``docs/observability.md``).
* ``chaos plan`` / ``chaos run`` — generate and execute seeded chaos
  plans that kill workers and corrupt artifacts mid-run, verifying the
  harness recovers bit-identically (see ``docs/resilience.md``).
* ``chaos fabric`` — the distributed-sweep chaos battery: kill workers
  and the coordinator mid-sweep, verify the merged report is
  bit-identical to the serial path.
* ``sweep`` — run a parameter sweep (``--param name=v1,v2`` repeated)
  and emit tidy CSV rows; ``--fabric`` executes it through the
  coordinator/worker fabric instead of in-process.
* ``tournament`` — rank every registered allocator across a workload
  suite and fault regimes; emits the ranked markdown report (and
  optionally JSON + Prometheus timing counters). See
  ``docs/allocators.md``.
* ``fabric start|worker|status`` — operate a sweep fabric directory by
  hand: start (or resume, after a crash) the coordinator, attach a
  worker from any shell sharing the directory, or inspect progress.

Exit codes follow one convention everywhere: 0 success, 1 the run
finished but degraded (partial rows, digest mismatch, chaos failure),
2 usage or I/O error, 3 artifact integrity failure, 130 interrupted.

``simulate`` is crash-safe: ``--checkpoint-path``/``--checkpoint-dir``
with ``--checkpoint-every`` periodically write atomic engine
checkpoints, ``--resume-from`` continues one bit-identically (falling
back past corrupt generations when given a checkpoint directory), and
SIGINT/SIGTERM write a final checkpoint (when enabled) and exit 130
with a one-line message instead of a traceback.
``--validate-invariants`` audits cluster/engine state invariants as
the simulation runs. See ``docs/resilience.md``.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from dataclasses import replace
from typing import List, Optional

from .experiments import EXPERIMENT_RUNNERS, ExperimentConfig, continuous_runs
from .experiments.report import render_kv, write_report
from .scheduler.serialize import dump_result
from .topology.builders import TOPOLOGY_BUILDERS
from .topology.config import load_topology_conf, write_topology_conf
from .topology.tree import TopologyError
from .workloads.classify import single_pattern_mix
from .workloads.logs import LOG_SPECS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro-sched`` argument parser (all subcommands)."""
    parser = argparse.ArgumentParser(
        prog="repro-sched",
        description="Reproduction of 'Communication-aware Job Scheduling using SLURM' (ICPP-W 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("name", choices=sorted(EXPERIMENT_RUNNERS))
    exp.add_argument(
        "--jobs", type=int, default=None,
        help="jobs per log (default: the experiment's paper-scale default)",
    )
    exp.add_argument("--seed", type=int, default=0)
    exp.add_argument(
        "--output", default=None, metavar="FILE",
        help="also write the rendered report to FILE (atomic write)",
    )

    sim = sub.add_parser("simulate", help="run one log through one allocator")
    sim.add_argument("--log", choices=sorted(LOG_SPECS), default="theta")
    sim.add_argument(
        "--allocator", default="balanced", metavar="SPEC",
        help="any registered allocator, optionally parameterized, e.g. "
        "'balanced' or 'sa:iters=500' (catalogue: docs/allocators.md)",
    )
    sim.add_argument("--jobs", type=int, default=1000)
    sim.add_argument("--percent-comm", type=float, default=90.0)
    sim.add_argument(
        "--pattern",
        choices=("rd", "rhvd", "binomial", "alltoall", "ring", "stencil2d"),
        default="rhvd",
    )
    sim.add_argument("--comm-fraction", type=float, default=0.70)
    sim.add_argument(
        "--policy", choices=("backfill", "fifo", "conservative"), default="backfill"
    )
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="run allocators in N parallel processes (results are "
        "bit-identical to the serial path)",
    )
    sim.add_argument(
        "--save", default=None, metavar="DIR",
        help="write each run's records as JSON into this directory",
    )
    sim.add_argument(
        "--fault-trace", default=None, metavar="FILE",
        help="replay node/switch failures from a fault trace file "
        "(takes precedence over --fault-rate)",
    )
    sim.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="PER_HOUR",
        help="generate random failures at this rate per hour "
        "(0 = no faults, the default; bit-identical to the fault-free path)",
    )
    sim.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the random fault generator (same seed = same faults)",
    )
    sim.add_argument(
        "--mttr", type=float, default=1800.0, metavar="SECONDS",
        help="mean downtime of a generated failure (default 1800s)",
    )
    sim.add_argument(
        "--switch-fault-fraction", type=float, default=0.1, metavar="FRAC",
        help="fraction of generated failures that take a whole leaf "
        "switch down (default 0.1)",
    )
    sim.add_argument(
        "--interrupt-policy",
        choices=("requeue", "checkpoint", "abandon"),
        default="requeue",
        help="what happens to a running job killed by a failure",
    )
    sim.add_argument(
        "--checkpoint-interval", type=float, default=3600.0, metavar="SECONDS",
        help="checkpoint period for --interrupt-policy checkpoint",
    )
    sim.add_argument(
        "--checkpoint-path", default=None, metavar="FILE",
        help="write engine checkpoints to FILE (atomic; single-allocator "
        "runs only). SIGINT/SIGTERM write a final checkpoint here.",
    )
    sim.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="keep the last few checkpoints as generations in DIR "
        "(ckpt-<batches>.json) instead of one file; resume falls back "
        "past corrupt generations to the last good one",
    )
    sim.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="checkpoint every N event batches (requires "
        "--checkpoint-path or --checkpoint-dir)",
    )
    sim.add_argument(
        "--resume-from", default=None, metavar="PATH",
        help="resume a checkpointed run from a checkpoint file or a "
        "--checkpoint-dir directory (the newest intact generation is "
        "used); the completed result is bit-identical to an "
        "uninterrupted one",
    )
    sim.add_argument(
        "--stop-after-events", type=int, default=None, metavar="N",
        help="pause the run after N event batches (writes a checkpoint "
        "when --checkpoint-path is set) — mainly for crash/resume tests",
    )
    sim.add_argument(
        "--journal", default=None, metavar="FILE",
        help="append task specs, attempts, and result digests to this "
        "JSONL run journal (enables 'repro-sched verify-run' later)",
    )
    sim.add_argument(
        "--max-retries", type=int, default=0, metavar="N",
        help="retry a failed allocator run up to N times with backoff",
    )
    sim.add_argument(
        "--on-task-error",
        choices=("retry", "skip", "raise", "quarantine"),
        default="retry",
        help="what to do when an allocator run exhausts its retries: "
        "skip reports partial results naming the missing cells; "
        "quarantine records the failed cells (with their last error) "
        "and completes the rest",
    )
    sim.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-task timeout for parallel runs (hung workers are "
        "terminated and the task retried)",
    )
    sim.add_argument(
        "--perf", action="store_true",
        help="trace scheduler hot paths (passes run/skipped, allocator "
        "and cost-kernel time, events/sec) and print the report after "
        "the summary; forces the single-engine path",
    )
    sim.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write run metrics (paper aggregates, distributions, perf "
        "counters) as Prometheus text exposition to FILE; forces the "
        "single-engine path and implies perf collection",
    )
    sim.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="record nested wall-clock spans of the hot paths and write "
        "them as JSONL to FILE; forces the single-engine path",
    )
    sim.add_argument(
        "--progress", action="store_true",
        help="print a throttled progress heartbeat (events, jobs, "
        "sim-clock, ETA) to stderr while the simulation runs",
    )
    sim.add_argument(
        "--validate-invariants", type=int, nargs="?", const=1, default=None,
        metavar="N",
        help="audit cluster/engine state invariants every N event "
        "batches (default 1 when given without a value); a violation "
        "aborts the run with a named report; forces the single-engine "
        "path",
    )

    topo = sub.add_parser("topology", help="print a builtin machine's topology.conf")
    topo.add_argument("machine", choices=sorted(TOPOLOGY_BUILDERS))
    topo.add_argument(
        "--describe", action="store_true",
        help="render the switch tree instead of topology.conf syntax",
    )

    lint = sub.add_parser("validate-conf", help="lint a topology.conf file")
    lint.add_argument("path")

    trace = sub.add_parser("trace", help="generate or inspect a job trace")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    gen = trace_sub.add_parser("generate", help="write a synthetic log as SWF")
    gen.add_argument("--log", choices=sorted(LOG_SPECS), default="theta")
    gen.add_argument("--jobs", type=int, default=1000)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--output", default="-", help="file path or - for stdout")
    stats = trace_sub.add_parser("stats", help="print statistics of an SWF file")
    stats.add_argument("path")
    stats.add_argument("--processors-per-node", type=int, default=1)

    verify = sub.add_parser(
        "verify-run",
        help="replay journaled tasks and diff digests (determinism check)",
    )
    verify.add_argument("path", help="run journal written with --journal")
    verify.add_argument(
        "--sample", type=int, default=None, metavar="N",
        help="replay a seeded sample of N completed tasks (default: all)",
    )
    verify.add_argument("--seed", type=int, default=0, help="sampling seed")

    obs_cmd = sub.add_parser(
        "obs", help="inspect observability artifacts (metrics, span traces)"
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    render = obs_sub.add_parser(
        "render",
        help="summarize a metrics dump and/or span trace as a table",
    )
    render.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="Prometheus text file written by 'simulate --metrics-out'",
    )
    render.add_argument(
        "--trace", default=None, metavar="FILE",
        help="span-trace JSONL written by 'simulate --trace-out'",
    )

    chaos = sub.add_parser(
        "chaos",
        help="seeded chaos harness: inject worker/artifact/io faults "
        "and verify bit-identical recovery",
    )
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)
    cplan = chaos_sub.add_parser(
        "plan", help="generate a replayable chaos plan as JSON"
    )
    cplan.add_argument("--seed", type=int, default=0)
    cplan.add_argument(
        "--allocators", nargs="+", default=["default", "balanced"],
        metavar="NAME",
        help="allocator cells the worker faults target (default: "
        "default balanced)",
    )
    cplan.add_argument(
        "--output", default="-", metavar="FILE",
        help="file path or - for stdout",
    )
    crun = chaos_sub.add_parser(
        "run",
        help="execute a chaos plan over a small experiment and verify "
        "full recovery",
    )
    crun.add_argument(
        "--plan", default=None, metavar="FILE",
        help="plan file written by 'chaos plan' (default: generate one "
        "from --seed)",
    )
    crun.add_argument(
        "--seed", type=int, default=0,
        help="seed for the generated plan (ignored with --plan)",
    )
    crun.add_argument(
        "--workdir", default=None, metavar="DIR",
        help="scratch directory for journals/checkpoints/corrupted "
        "copies (default: a temporary directory, removed on success)",
    )
    crun.add_argument(
        "--jobs", type=int, default=30,
        help="jobs in the chaos experiment (default 30)",
    )
    crun.add_argument(
        "--workers", type=int, default=2,
        help="pool size for the executor-chaos phase (min 2)",
    )
    cfab = chaos_sub.add_parser(
        "fabric",
        help="distributed-sweep chaos battery: kill workers and the "
        "coordinator mid-sweep, verify bit-identical recovery",
    )
    cfab.add_argument("--seed", type=int, default=0, help="scenario seed")
    cfab.add_argument(
        "--workdir", default=None, metavar="DIR",
        help="fabric directory to use (default: a temporary one; an "
        "explicit one is kept for autopsy)",
    )

    swp = sub.add_parser(
        "sweep",
        help="run a parameter sweep and emit tidy CSV rows",
    )
    _add_grid_arguments(swp)
    swp.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="run grid points in N parallel processes (in-process path)",
    )
    swp.add_argument(
        "--output", default="-", metavar="FILE",
        help="CSV destination, - for stdout (default)",
    )
    swp.add_argument(
        "--fabric", action="store_true",
        help="execute through the coordinator/worker fabric "
        "(crash-safe, lease-based; see docs/resilience.md)",
    )
    swp.add_argument(
        "--fabric-dir", default=None, metavar="DIR",
        help="fabric directory (default: temporary); keep one to make "
        "the sweep resumable with 'fabric start'",
    )
    swp.add_argument(
        "--fabric-workers", type=int, default=2, metavar="N",
        help="local worker processes to spawn with --fabric (default 2)",
    )

    tour = sub.add_parser(
        "tournament",
        help="rank every registered allocator across workloads and "
        "fault regimes (docs/allocators.md)",
    )
    tour.add_argument(
        "--allocators", nargs="+", default=None, metavar="SPEC",
        help="allocator specs to enter (default: every registered "
        "allocator); parameterized specs like 'sa:iters=60' are "
        "accepted and ranked under their spec string",
    )
    tour.add_argument(
        "--workloads", nargs="+", default=["theta", "stream"],
        metavar="NAME",
        help="workload suite: paper logs (theta, intrepid, mira) and "
        "the 'stream' synthetic (default: theta stream)",
    )
    tour.add_argument(
        "--regimes", nargs="+",
        default=["none", "node-faults", "switch-faults"], metavar="NAME",
        help="fault regimes (none, node-faults, switch-faults; "
        "default: all three)",
    )
    tour.add_argument(
        "--jobs", type=int, default=300, metavar="N",
        help="jobs per cell (default 300)",
    )
    tour.add_argument("--seed", type=int, default=0)
    tour.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="run cells in N parallel processes",
    )
    tour.add_argument(
        "--max-retries", type=int, default=0, metavar="N",
        help="retry a failed cell up to N times with backoff",
    )
    tour.add_argument(
        "--on-task-error",
        choices=("retry", "skip", "raise", "quarantine"),
        default="retry",
        help="what to do when a cell exhausts its retries (skip "
        "reports the bracket with the cell listed as missing)",
    )
    tour.add_argument(
        "--journal", default=None, metavar="FILE",
        help="append-only run journal for verify-run replays",
    )
    tour.add_argument(
        "--output-md", default=None, metavar="FILE",
        help="write the ranked markdown report to FILE (atomic)",
    )
    tour.add_argument(
        "--output-json", default=None, metavar="FILE",
        help="write the full report as JSON to FILE (atomic)",
    )
    tour.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write per-allocator timing counters in Prometheus text "
        "format to FILE",
    )
    tour.add_argument(
        "--no-timing", action="store_true",
        help="omit wall-clock timings from every output (renders "
        "byte-identical across runs with equal arguments)",
    )
    tour.add_argument(
        "--progress", action="store_true",
        help="print a heartbeat line per finished cell to stderr",
    )

    fab = sub.add_parser(
        "fabric",
        help="operate a distributed-sweep fabric directory",
    )
    fab_sub = fab.add_subparsers(dest="fabric_command", required=True)
    fstart = fab_sub.add_parser(
        "start",
        help="start (or resume after a crash) the coordinator; "
        "initializes the fabric from a grid when the directory is new",
    )
    fstart.add_argument("dir", help="fabric directory")
    _add_grid_arguments(fstart)
    fstart.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="also spawn N local worker processes (default 0: workers "
        "attach separately via 'fabric worker')",
    )
    fworker = fab_sub.add_parser(
        "worker", help="attach one worker process to a fabric directory"
    )
    fworker.add_argument("dir", help="fabric directory")
    fworker.add_argument(
        "--id", required=True, metavar="NAME",
        help="worker name (its directory under workers/)",
    )
    fstatus = fab_sub.add_parser(
        "status", help="inspect a fabric's journal and worker heartbeats"
    )
    fstatus.add_argument("dir", help="fabric directory")
    fstatus.add_argument(
        "--prometheus", action="store_true",
        help="emit Prometheus gauges instead of the human summary",
    )

    return parser


def _add_grid_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared sweep-grid flags (``sweep``, ``fabric start``)."""
    parser.add_argument(
        "--param", action="append", default=[], metavar="NAME=V1,V2",
        help="one swept parameter and its values (repeatable); values "
        "are parsed as int, then float, then string",
    )
    parser.add_argument(
        "--default", action="append", default=[], metavar="NAME=VALUE",
        help="override one unswept parameter (repeatable)",
    )
    parser.add_argument(
        "--allocators", nargs="+", default=["default", "balanced"],
        metavar="NAME", help="allocators per grid point",
    )


def _cmd_experiment(args: argparse.Namespace) -> int:
    runner = EXPERIMENT_RUNNERS[args.name]
    kwargs = {}
    if args.name not in ("table2", "figure1", "validation"):
        kwargs["seed"] = args.seed
        if args.jobs is not None:
            kwargs["n_jobs"] = args.jobs
    if args.name == "validation":
        kwargs["seed"] = args.seed
    if args.name == "all" and args.jobs is None:
        kwargs["n_jobs"] = 200  # keep the run-everything command snappy
    result = runner(**kwargs)
    text = result.render()
    print(text)
    if args.output:
        write_report(text, args.output)
        print(f"wrote {args.output}")
    return 0


def _simulate_faults(args: argparse.Namespace, cfg, jobs):
    """Fault schedule for ``simulate``: replayed trace or seeded generator."""
    from .faults import FaultGeneratorConfig, generate_faults, load_fault_trace

    if args.fault_trace is not None:
        return tuple(load_fault_trace(args.fault_trace, cfg.topology()))
    if args.fault_rate < 0:
        raise ValueError(f"--fault-rate must be >= 0, got {args.fault_rate}")
    if args.fault_rate > 0:
        # Horizon upper-bounds the busy period; later faults hit an idle
        # cluster and are skipped by the engine's early exit.
        horizon = max(j.submit_time for j in jobs) + sum(j.runtime for j in jobs)
        fault_cfg = FaultGeneratorConfig(
            rate=args.fault_rate,
            horizon=horizon,
            seed=args.fault_seed,
            mean_downtime=args.mttr,
            switch_fraction=args.switch_fault_fraction,
        )
        return tuple(generate_faults(cfg.topology(), fault_cfg))
    return ()


class _StopRequested:
    """Signal-set flag the engine polls between event batches."""

    def __init__(self) -> None:
        self.tripped = False

    def __call__(self) -> bool:
        return self.tripped


def _save_results(args: argparse.Namespace, results) -> None:
    import pathlib

    out_dir = pathlib.Path(args.save)
    out_dir.mkdir(parents=True, exist_ok=True)
    for name, res in results.items():
        path = out_dir / f"{args.log}_{name}.json"
        dump_result(res, path)
        print(f"wrote {path}")


def _simulate_engine_path(args: argparse.Namespace) -> int:
    """Single-engine simulate with checkpoint/resume and signal safety."""
    from contextlib import ExitStack

    from .experiments.runner import prepare_jobs
    from .obs import ProgressReporter, SpanTracer, tracing
    from .runs.checkpoints import CheckpointStore, resolve_resume
    from .scheduler.engine import SchedulerEngine, SimulationInterrupted

    collect = bool(args.perf or args.metrics_out)
    checkpoint_target = (
        CheckpointStore(args.checkpoint_dir)
        if args.checkpoint_dir is not None
        else args.checkpoint_path
    )
    flag = _StopRequested()

    def _handler(signum, frame):  # pragma: no cover - exercised via SIGINT test
        flag.tripped = True

    previous = {
        sig: signal.signal(sig, _handler) for sig in (signal.SIGINT, signal.SIGTERM)
    }
    tracer = SpanTracer() if args.trace_out is not None else None
    try:
        with ExitStack() as stack:
            if tracer is not None:
                stack.enter_context(tracing(tracer))
                stack.enter_context(tracer.span("engine.run"))
            if args.resume_from is not None:
                resolved = resolve_resume(args.resume_from)
                for skipped_path, why in resolved.skipped:
                    print(
                        f"skipping corrupt checkpoint {skipped_path}: {why}",
                        file=sys.stderr,
                    )
                if resolved.skipped:
                    print(
                        f"falling back to last good checkpoint {resolved.path}",
                        file=sys.stderr,
                    )
                data = resolved.snapshot
                engine = SchedulerEngine.from_snapshot(data)
                if collect:
                    engine.config = replace(engine.config, collect_perf=True)
                if args.validate_invariants is not None:
                    engine.config = replace(
                        engine.config, validate_invariants=args.validate_invariants
                    )
                reporter = (
                    ProgressReporter(total_jobs=None) if args.progress else None
                )
                result = engine.run(
                    resume_from=data,
                    checkpoint_every=args.checkpoint_every,
                    checkpoint_path=checkpoint_target,
                    stop_after=args.stop_after_events,
                    interrupt=flag,
                    progress=reporter,
                )
            else:
                cfg = ExperimentConfig(
                    log=args.log,
                    n_jobs=args.jobs,
                    percent_comm=args.percent_comm,
                    mix=single_pattern_mix(args.pattern, args.comm_fraction),
                    allocators=(args.allocator,),
                    seed=args.seed,
                    policy=args.policy,
                    interrupt_policy=args.interrupt_policy,
                    checkpoint_interval=args.checkpoint_interval,
                )
                jobs = prepare_jobs(cfg)
                faults = _simulate_faults(args, cfg, jobs)
                engine_cfg = cfg.engine_config()
                if collect:
                    engine_cfg = replace(engine_cfg, collect_perf=True)
                if args.validate_invariants is not None:
                    engine_cfg = replace(
                        engine_cfg, validate_invariants=args.validate_invariants
                    )
                engine = SchedulerEngine(cfg.topology(), args.allocator, engine_cfg)
                reporter = (
                    ProgressReporter(total_jobs=len(jobs)) if args.progress else None
                )
                result = engine.run(
                    jobs,
                    faults=faults,
                    checkpoint_every=args.checkpoint_every,
                    checkpoint_path=checkpoint_target,
                    stop_after=args.stop_after_events,
                    interrupt=flag,
                    progress=reporter,
                )
    except SimulationInterrupted as exc:
        print(exc, file=sys.stderr)
        return 130
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)
    if tracer is not None:
        tracer.write_jsonl(args.trace_out)
        print(
            f"wrote {len(tracer.spans)} spans to {args.trace_out}"
            + (f" ({tracer.dropped} dropped)" if tracer.dropped else "")
        )
    if result is None:
        where = (
            f"; checkpoint written to {checkpoint_target}"
            if checkpoint_target is not None
            else " (no checkpoint path — state discarded)"
        )
        print(f"paused after {args.stop_after_events} event batches{where}")
        if args.metrics_out:
            print(
                "note: --metrics-out skipped (run paused before completion)",
                file=sys.stderr,
            )
        return 0
    print(
        render_kv(
            sorted(result.summary().items()),
            title=f"--- {engine.allocator.name} ---",
        )
    )
    if args.perf and result.perf is not None:
        from .perf import render_perf

        print(render_perf(result.perf))
    if args.metrics_out:
        from .obs import metrics_from_result
        from .runs.atomic import atomic_write_text

        # --metrics-out implies perf collection, so result.perf carries
        # engine.events / engine.batches alongside the paper aggregates.
        registry = metrics_from_result(result)
        atomic_write_text(args.metrics_out, registry.render_prometheus())
        print(f"wrote metrics to {args.metrics_out}")
    if args.save:
        _save_results(args, {engine.allocator.name: result})
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .experiments.runner import prepare_jobs
    from .faults.trace import FaultTraceError
    from .runs.integrity import IntegrityError
    from .validate import InvariantViolation

    engine_path = (
        args.resume_from is not None
        or args.checkpoint_path is not None
        or args.checkpoint_dir is not None
        or args.stop_after_events is not None
        or args.perf
        or args.metrics_out is not None
        or args.trace_out is not None
        or args.validate_invariants is not None
    )
    if args.checkpoint_path is not None and args.checkpoint_dir is not None:
        print(
            "error: --checkpoint-path and --checkpoint-dir are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if args.checkpoint_every is not None and (
        args.checkpoint_path is None and args.checkpoint_dir is None
    ):
        print(
            "error: --checkpoint-every requires --checkpoint-path or "
            "--checkpoint-dir",
            file=sys.stderr,
        )
        return 2
    try:
        if engine_path:
            return _simulate_engine_path(args)
        cfg = ExperimentConfig(
            log=args.log,
            n_jobs=args.jobs,
            percent_comm=args.percent_comm,
            mix=single_pattern_mix(args.pattern, args.comm_fraction),
            allocators=(args.allocator,) if args.allocator == "default" else ("default", args.allocator),
            seed=args.seed,
            policy=args.policy,
            interrupt_policy=args.interrupt_policy,
            checkpoint_interval=args.checkpoint_interval,
        )
        jobs = prepare_jobs(cfg)
        cfg = cfg.with_(faults=_simulate_faults(args, cfg, jobs))
        reporter = None
        if args.progress:
            from .obs import ProgressReporter

            reporter = ProgressReporter()
        results = continuous_runs(
            cfg,
            jobs,
            workers=args.workers,
            max_retries=args.max_retries,
            on_task_error=args.on_task_error,
            journal=args.journal,
            task_timeout=args.task_timeout,
            progress=reporter,
        )
        if reporter is not None:
            reporter.finish()
    except KeyboardInterrupt:
        print("simulation interrupted (no checkpoint configured)", file=sys.stderr)
        return 130
    except InvariantViolation as exc:
        print(f"invariant violation: {exc}", file=sys.stderr)
        return 1
    except IntegrityError as exc:
        print(f"integrity error: {exc}", file=sys.stderr)
        return 3
    except (OSError, FaultTraceError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for name, res in results.items():
        print(render_kv(sorted(res.summary().items()), title=f"--- {name} ---"))
    if args.save:
        _save_results(args, results)
    dropped = False
    for label, cells in (
        ("missing", getattr(results, "missing", None)),
        ("quarantined", getattr(results, "quarantined", None)),
    ):
        for name, error in (cells or {}).items():
            print(f"{label} cell {name!r}: {error}", file=sys.stderr)
            dropped = True
    if dropped:
        return 1
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    topology = TOPOLOGY_BUILDERS[args.machine]()
    if args.describe:
        from .topology.describe import describe_topology

        print(describe_topology(topology))
    else:
        sys.stdout.write(write_topology_conf(topology))
    return 0


def _cmd_validate_conf(args: argparse.Namespace) -> int:
    try:
        topology = load_topology_conf(args.path)
    except (TopologyError, OSError) as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    print(
        render_kv(
            [
                ("nodes", topology.n_nodes),
                ("leaf switches", topology.n_leaves),
                ("total switches", topology.n_switches),
                ("tree height", topology.height),
                ("largest leaf", int(topology.leaf_sizes.max())),
                ("smallest leaf", int(topology.leaf_sizes.min())),
            ],
            title=f"OK: {args.path}",
        )
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .workloads import generate_log
    from .workloads.logs import LOG_SPECS as SPECS

    if args.trace_command == "generate":
        from .workloads.swf import STATUS_COMPLETED, SwfRecord, write_swf

        trace = generate_log(SPECS[args.log], args.jobs, seed=args.seed)
        records = [
            SwfRecord(
                job_number=t.job_id, submit_time=int(t.submit_time), wait_time=-1,
                run_time=max(int(t.runtime), 1), allocated_processors=t.nodes,
                average_cpu_time=-1, used_memory=-1, requested_processors=t.nodes,
                requested_time=max(int(t.runtime), 1), requested_memory=-1,
                status=STATUS_COMPLETED, user_id=-1, group_id=-1, executable=-1,
                queue_number=1, partition_number=1, preceding_job=-1, think_time=-1,
            )
            for t in trace
        ]
        text = write_swf(records, header=f"synthetic {args.log} log, seed {args.seed}")
        if args.output == "-":
            sys.stdout.write(text)
        else:
            from .runs.atomic import atomic_write_text

            atomic_write_text(args.output, text)
            print(f"wrote {len(records)} jobs to {args.output}")
        return 0

    # stats
    import numpy as np

    from .workloads import load_swf, swf_to_trace

    trace = swf_to_trace(
        load_swf(args.path), processors_per_node=args.processors_per_node
    )
    if not trace:
        print("no schedulable jobs in trace", file=sys.stderr)
        return 1
    sizes = np.array([t.nodes for t in trace])
    runtimes = np.array([t.runtime for t in trace])
    submits = np.array([t.submit_time for t in trace])
    pow2 = np.mean([(n & (n - 1)) == 0 for n in sizes])
    print(
        render_kv(
            [
                ("jobs", len(trace)),
                ("span (hours)", float(submits.max() - submits.min()) / 3600.0),
                ("mean interarrival (s)", float(np.diff(np.sort(submits)).mean())),
                ("median nodes", float(np.median(sizes))),
                ("max nodes", int(sizes.max())),
                ("power-of-two share", float(pow2)),
                ("median runtime (s)", float(np.median(runtimes))),
                ("max runtime (s)", float(runtimes.max())),
            ],
            title=f"trace statistics: {args.path}",
        )
    )
    return 0


def _cmd_verify_run(args: argparse.Namespace) -> int:
    from .runs import IntegrityError, verify_journal

    try:
        report = verify_journal(args.path, sample=args.sample, seed=args.seed)
    except IntegrityError as exc:
        # Distinct from exit 1 (digest mismatch = nondeterminism) and
        # exit 2 (usage/IO error): the journal itself is damaged.
        print(f"integrity error: {exc}", file=sys.stderr)
        return 3
    except (OSError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    return 0 if report.ok else 1


def _cmd_obs(args: argparse.Namespace) -> int:
    from .obs import PromParseError, load_spans, parse_prometheus, render_obs_summary

    if args.obs_command != "render":  # pragma: no cover - argparse enforces
        raise AssertionError(f"unhandled obs command {args.obs_command!r}")
    if args.metrics is None and args.trace is None:
        print("error: obs render needs --metrics and/or --trace", file=sys.stderr)
        return 2
    samples = types = spans = None
    try:
        if args.metrics is not None:
            with open(args.metrics, "r", encoding="utf-8") as handle:
                samples, types = parse_prometheus(handle.read())
        if args.trace is not None:
            spans = load_spans(args.trace)
            from .obs import validate_spans

            validate_spans(spans)
    except (OSError, PromParseError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_obs_summary(samples=samples, types=types, spans=spans))
    return 0


def _parse_grid_value(text: str):
    """Parse one sweep value: int, then float, then bare string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_grid(args: argparse.Namespace):
    """Parse ``--param``/``--default`` flags into (grid, defaults).

    Raises ``ValueError`` on malformed flags; parameter-name validation
    happens downstream in ``expand_grid``.
    """
    grid = {}
    for item in args.param:
        name, sep, values = item.partition("=")
        if not sep or not name or not values:
            raise ValueError(f"--param needs NAME=V1,V2,... got {item!r}")
        grid[name] = [_parse_grid_value(v) for v in values.split(",")]
    defaults = {}
    for item in args.default:
        name, sep, value = item.partition("=")
        if not sep or not name:
            raise ValueError(f"--default needs NAME=VALUE, got {item!r}")
        defaults[name] = _parse_grid_value(value)
    return grid, defaults


def _emit_rows(rows, output: str) -> None:
    """Write sweep rows as CSV to ``output`` (``-`` = stdout)."""
    from .experiments.sweeps import rows_to_csv

    text = rows_to_csv(rows)
    if output == "-":
        sys.stdout.write(text)
    else:
        from .runs import atomic_write_text

        atomic_write_text(output, text)
        print(f"wrote {len(rows)} rows to {output}")


def _report_partial(rows) -> int:
    """Print partial-report diagnostics; return the exit code."""
    from .runs import PartialRows

    if isinstance(rows, PartialRows) and not rows.complete:
        for key, why in sorted(rows.missing.items()):
            print(f"missing cell {key}: {why}", file=sys.stderr)
        for key, why in sorted(rows.quarantined.items()):
            print(f"quarantined cell {key}: {why}", file=sys.stderr)
        return 1
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments.sweeps import sweep

    try:
        grid, defaults = _parse_grid(args)
        if args.fabric:
            from .fabric import fabric_sweep

            rows = fabric_sweep(
                grid,
                allocators=tuple(args.allocators),
                defaults=defaults or None,
                workers=args.fabric_workers,
                fabric_dir=args.fabric_dir,
            )
        else:
            rows = sweep(
                grid,
                allocators=tuple(args.allocators),
                defaults=defaults or None,
                workers=args.workers,
            )
    except (OSError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not rows:
        print("error: sweep produced no rows", file=sys.stderr)
        return 1
    _emit_rows(rows, args.output)
    return _report_partial(rows)


def _cmd_tournament(args: argparse.Namespace) -> int:
    from .experiments.tournament import run_tournament
    from .runs.integrity import IntegrityError

    reporter = None
    if args.progress:
        from .obs import ProgressReporter

        reporter = ProgressReporter()
    metrics = None
    if args.metrics_out is not None:
        from .obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
    try:
        report = run_tournament(
            args.allocators,
            workloads=tuple(args.workloads),
            regimes=tuple(args.regimes),
            n_jobs=args.jobs,
            seed=args.seed,
            workers=args.workers,
            max_retries=args.max_retries,
            on_task_error=args.on_task_error,
            journal=args.journal,
            progress=reporter,
            metrics=metrics,
        )
        include_timing = not args.no_timing
        markdown = report.render_markdown(include_timing=include_timing)
        print(markdown, end="")
        if args.output_md is not None:
            write_report(markdown, args.output_md)
        if args.output_json is not None:
            write_report(report.to_json(include_timing=include_timing), args.output_json)
        if metrics is not None:
            write_report(metrics.render_prometheus(), args.metrics_out)
    except KeyboardInterrupt:
        print("tournament interrupted", file=sys.stderr)
        return 130
    except IntegrityError as exc:
        print(f"integrity error: {exc}", file=sys.stderr)
        return 3
    except (OSError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if reporter is not None:
            reporter.finish()
    if not report.complete:
        for key, error in sorted(report.missing.items()):
            print(f"missing cell {key!r}: {error}", file=sys.stderr)
        return 1
    return 0


def _cmd_fabric(args: argparse.Namespace) -> int:
    import json as _json

    from .runs import IntegrityError

    try:
        if args.fabric_command == "start":
            return _fabric_start(args)
        if args.fabric_command == "worker":
            from .fabric import run_worker

            done = run_worker(args.dir, args.id)
            print(f"worker {args.id}: completed {done} cells")
            return 0
        # fabric status
        from .fabric import fabric_status, status_metrics

        status = fabric_status(args.dir)
        if args.prometheus:
            sys.stdout.write(status_metrics(status).render_prometheus())
        else:
            print(_json.dumps(status, indent=1))
        return 0
    except IntegrityError as exc:
        print(f"integrity error: {exc}", file=sys.stderr)
        return 3
    except RuntimeError as exc:
        # e.g. a second coordinator refusing to start over a live one
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        raise  # handled in main(): the consumer closed stdout early
    except (OSError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _fabric_start(args: argparse.Namespace) -> int:
    """``fabric start``: init-if-new, then run the coordinator here."""
    from .fabric import (
        Coordinator,
        FabricPaths,
        collect_report,
        init_fabric,
        sweep_cells,
    )

    paths = FabricPaths(args.dir)
    fresh = not paths.journal.exists() or paths.journal.stat().st_size == 0
    grid, defaults = _parse_grid(args)
    if fresh:
        if not grid:
            print(
                "error: new fabric needs at least one --param to define its grid",
                file=sys.stderr,
            )
            return 2
        cells = sweep_cells(
            grid, allocators=tuple(args.allocators), defaults=defaults or None
        )
        init_fabric(
            args.dir,
            cells,
            context={
                "grid": {k: list(v) for k, v in grid.items()},
                "defaults": dict(defaults),
                "allocators": list(args.allocators),
            },
        )
        print(f"initialized fabric with {len(cells)} cells in {args.dir}")
    elif grid:
        print(
            "note: fabric already initialized; ignoring --param/--default",
            file=sys.stderr,
        )
    procs = []
    if args.workers > 0:
        from .fabric import spawn_local_workers

        procs = spawn_local_workers(args.dir, args.workers)
    try:
        stats = Coordinator(args.dir).run()
    finally:
        if procs:
            paths.stop.touch()
            for proc in procs:
                proc.join(timeout=30)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()
    print(f"coordinator generation {stats.generation}: {stats.to_dict()}")
    if stats.stopped_externally:
        print("stopped externally before completion", file=sys.stderr)
        return 1
    return _report_partial(collect_report(args.dir))


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json as _json

    from .chaos import ChaosPlanConfig, generate_chaos_plan, load_plan, run_chaos
    from .chaos.plan import plan_to_dict, save_plan

    if args.chaos_command == "fabric":
        from .chaos.fabric import run_fabric_chaos

        try:
            report = run_fabric_chaos(args.seed, fabric_dir=args.workdir)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(report.summary())
        return 0 if report.ok else 1

    if args.chaos_command == "plan":
        plan = generate_chaos_plan(
            ChaosPlanConfig(seed=args.seed, task_keys=tuple(args.allocators))
        )
        if args.output == "-":
            print(_json.dumps(plan_to_dict(plan), indent=1))
        else:
            save_plan(plan, args.output)
            print(f"wrote {len(plan.actions)} actions to {args.output}")
        return 0

    # chaos run
    try:
        plan = (
            load_plan(args.plan)
            if args.plan is not None
            else generate_chaos_plan(ChaosPlanConfig(seed=args.seed))
        )
    except (OSError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    import shutil
    import tempfile

    from .chaos.runner import _plan_task_keys
    from .experiments import ExperimentConfig as _Config

    temporary = args.workdir is None
    workdir = tempfile.mkdtemp(prefix="repro-chaos-") if temporary else args.workdir
    task_keys = _plan_task_keys(plan) or ["default", "balanced"]
    config = _Config(n_jobs=args.jobs, seed=plan.seed, allocators=tuple(task_keys))
    try:
        report = run_chaos(plan, workdir, config=config, workers=args.workers)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    if temporary:
        if report.ok:
            shutil.rmtree(workdir, ignore_errors=True)
        else:
            # Keep the evidence around for a failed run.
            print(f"artifacts kept in {workdir}", file=sys.stderr)
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    try:
        return _dispatch(build_parser().parse_args(argv))
    except BrokenPipeError:
        # stdout was closed early (e.g. piped into `head`); the output
        # already produced is all the consumer wanted. Detach stdout so
        # the interpreter's exit-time flush does not raise again.
        devnull = open(os.devnull, "w")
        os.dup2(devnull.fileno(), sys.stdout.fileno())
        return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "topology":
        return _cmd_topology(args)
    if args.command == "validate-conf":
        return _cmd_validate_conf(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "verify-run":
        return _cmd_verify_run(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "tournament":
        return _cmd_tournament(args)
    if args.command == "fabric":
        return _cmd_fabric(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
