"""Execute a chaos plan end-to-end and verify full recovery.

:func:`run_chaos` is the acceptance harness for the whole robustness
stack. It runs one small experiment five ways:

A. **baseline** — serial, undisturbed; its per-allocator digests are
   the ground truth every later phase must reproduce bit-identically.
B. **executor chaos** — the same cells through
   :func:`repro.runs.run_tasks` with the plan's worker faults injected
   (kill / hang / injected error), proving pool rebuild + retry.
C. **engine chaos** — a checkpointed engine run paused mid-flight, its
   newest checkpoints torn/byte-flipped per the plan, then resumed via
   last-good fallback (:class:`~repro.runs.checkpoints.CheckpointStore`)
   with runtime invariant checking on.
D. **artifact corruption** — byte-flipped journal and result files must
   surface as typed :class:`~repro.runs.integrity.IntegrityError`
   (or a flagged torn tail), never an uncaught traceback.
E. **I/O faults** — the plan's ENOSPC / slow-I/O failpoints fire inside
   ``atomic_write``; one retry must recover.

Everything runs under one :mod:`repro.obs` recorder, so the report
carries the recovery counters (``runs.task_retries``,
``runs.pool_rebuilds``, ``runs.fallback_resumes``,
``chaos.artifact_corruptions``, ``engine.invariant_checks``) that make
the recovery activity externally visible.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from .. import _failpoints
from ..experiments.runner import ExperimentConfig, _continuous_worker, prepare_jobs
from ..obs import runtime as obs_runtime
from ..runs import (
    CheckpointStore,
    IntegrityError,
    RetryPolicy,
    RunJournal,
    TaskSpec,
    atomic_write_json,
    load_journal,
    resolve_resume,
    result_digest,
    run_tasks,
)
from ..runs.retry import ON_ERROR_QUARANTINE
from .inject import arm_io_actions, flip_byte, tear_file, _chaos_cell
from .plan import ChaosPlan

__all__ = ["ChaosReport", "run_chaos"]

#: engine-chaos phase geometry: pause after 15 event batches with a
#: checkpoint every 5, keeping 3 generations — the plan corrupts the two
#: newest, so fallback must reach back to the oldest kept one.
_CHECKPOINT_EVERY = 5
_STOP_AFTER = 15
_KEEP = 3
_INVARIANT_EVERY = 5


@dataclass
class ChaosReport:
    """What a chaos run did and whether recovery was bit-perfect.

    ``ok`` is the single verdict; ``failures`` explains every broken
    guarantee in plain text (empty on success). ``detections`` maps
    each corruption probe to how it was caught; ``counters`` is the
    :mod:`repro.obs` counter snapshot covering the whole run.
    """

    plan_seed: int
    allocators: List[str] = field(default_factory=list)
    baseline_digests: Dict[str, str] = field(default_factory=dict)
    executor_match: bool = False
    engine_resume_match: bool = False
    fallback_skipped: List[str] = field(default_factory=list)
    detections: Dict[str, str] = field(default_factory=dict)
    io_faults_recovered: bool = False
    counters: Dict[str, float] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every phase recovered to bit-identical results."""
        return not self.failures

    def summary(self) -> str:
        """Multi-line human-readable report (what the CLI prints)."""
        lines = [
            f"chaos plan seed={self.plan_seed} over {', '.join(self.allocators)}",
            f"  executor recovery: {'bit-identical' if self.executor_match else 'MISMATCH'}",
            f"  engine fallback resume: "
            f"{'bit-identical' if self.engine_resume_match else 'MISMATCH'} "
            f"(skipped {len(self.fallback_skipped)} corrupt checkpoint(s))",
        ]
        for probe, how in sorted(self.detections.items()):
            lines.append(f"  {probe}: {how}")
        lines.append(
            f"  io faults: {'recovered' if self.io_faults_recovered else 'FAILED'}"
        )
        interesting = (
            "runs.task_retries",
            "runs.pool_rebuilds",
            "runs.quarantined_cells",
            "runs.fallback_resumes",
            "chaos.artifact_corruptions",
            "engine.invariant_checks",
            "engine.invariant_violations",
        )
        shown = {k: self.counters.get(k, 0) for k in interesting}
        lines.append("  counters: " + json.dumps(shown))
        lines.append("RECOVERED" if self.ok else "FAILED: " + "; ".join(self.failures))
        return "\n".join(lines)


def _plan_task_keys(plan: ChaosPlan) -> List[str]:
    """Cells the plan's worker faults target, in first-appearance order."""
    keys: List[str] = []
    for action in plan.actions:
        scope, _, name = action.target.partition(":")
        if scope == "task" and name not in keys:
            keys.append(name)
    return keys


def _fraction(plan: ChaosPlan, artifact: str, op: str, default: float = 0.5) -> float:
    """The plan's corruption parameter for ``op`` on ``artifact``."""
    for action in plan.for_artifact(artifact):
        if action.op == op:
            return action.arg
    return default


def run_chaos(
    plan: ChaosPlan,
    workdir: Union[str, Path],
    *,
    config: Optional[ExperimentConfig] = None,
    workers: int = 2,
) -> ChaosReport:
    """Execute ``plan`` against a small experiment and verify recovery.

    ``workdir`` receives all scratch artifacts (journal, checkpoint
    store, corrupted copies); inspect it after a failure. ``config``
    defaults to a 30-job run whose allocators are the plan's worker
    targets. ``workers`` must be at least 2: a ``kill-worker`` action
    calls ``os._exit`` in the executing process, which in a serial run
    would be *this* process.
    """
    if workers < 2:
        raise ValueError(
            "chaos runs need workers >= 2 (kill-worker would kill the "
            "main process in a serial run)"
        )
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    task_keys = _plan_task_keys(plan)
    if config is None:
        config = ExperimentConfig(
            n_jobs=30,
            seed=plan.seed,
            allocators=tuple(task_keys) or ("default", "balanced"),
        )
    missing = set(task_keys) - set(config.allocators)
    if missing:
        raise ValueError(
            f"plan targets allocators the config does not run: {sorted(missing)}"
        )

    report = ChaosReport(plan_seed=plan.seed, allocators=list(config.allocators))
    recorder = obs_runtime.PerfRecorder()
    with obs_runtime.collecting(recorder):
        try:
            jobs = prepare_jobs(config)

            # -- phase A: undisturbed baseline --------------------------------
            baseline = {
                name: _continuous_worker(config, name, jobs)
                for name in config.allocators
            }
            report.baseline_digests = {
                name: result_digest(res) for name, res in baseline.items()
            }

            # -- phase B: executor chaos --------------------------------------
            _executor_chaos(plan, config, jobs, workdir, workers, report)

            # -- phase C: engine chaos + last-good fallback resume ------------
            _engine_chaos(plan, config, jobs, workdir, report)

            # -- phase D: corrupt journal / result must fail *typed* ----------
            _corruption_probes(plan, baseline, workdir, report)

            # -- phase E: I/O failpoints --------------------------------------
            _io_chaos(plan, workdir, report)
        finally:
            _failpoints.disarm_all()
    report.counters = dict(recorder.counters)
    return report


def _executor_chaos(plan, config, jobs, workdir, workers, report) -> None:
    """Phase B: worker kill/hang/error through ``run_tasks``."""
    scratch = workdir / "attempts"
    tasks = [
        TaskSpec(
            key=name,
            fn=_chaos_cell,
            args=(config, name, jobs, tuple(plan.for_task(name)), str(scratch)),
            spec={"allocator": name, "chaos": True},
        )
        for name in config.allocators
    ]
    journal = RunJournal(
        workdir / "chaos-journal.jsonl",
        run_type="chaos",
        context={"seed": plan.seed},
    )
    try:
        batch = run_tasks(
            tasks,
            workers=workers,
            policy=RetryPolicy(max_retries=3),
            on_task_error=ON_ERROR_QUARANTINE,
            journal=journal,
            digest=result_digest,
        )
    finally:
        journal.close()
    if batch.quarantined:
        report.failures.append(
            f"executor chaos quarantined cells instead of recovering: "
            f"{sorted(batch.quarantined)}"
        )
    mismatched = [
        name
        for name in config.allocators
        if name not in batch.results
        or result_digest(batch.results[name]) != report.baseline_digests[name]
    ]
    report.executor_match = not mismatched and not batch.quarantined
    if mismatched:
        report.failures.append(
            f"executor chaos results diverged from baseline: {mismatched}"
        )


def _engine_chaos(plan, config, jobs, workdir, report) -> None:
    """Phase C: pause a checkpointed run, corrupt checkpoints, resume."""
    from ..scheduler.engine import SchedulerEngine

    name = config.allocators[0]
    engine_cfg = dataclasses.replace(
        config.engine_config(), validate_invariants=_INVARIANT_EVERY
    )
    store = CheckpointStore(workdir / "checkpoints", keep=_KEEP)
    engine = SchedulerEngine(config.topology(), name, engine_cfg)
    paused = engine.run(
        jobs,
        faults=config.faults,
        checkpoint_path=store,
        checkpoint_every=_CHECKPOINT_EVERY,
        stop_after=_STOP_AFTER,
    )
    generations = store.paths()
    if paused is not None or len(generations) < 2:
        # A 30-job run always spans > _STOP_AFTER event batches; anything
        # else means the scenario no longer exercises mid-run corruption.
        report.failures.append(
            f"engine chaos scenario degenerate: completed={paused is not None}, "
            f"{len(generations)} checkpoint generation(s)"
        )
        return
    tear_file(generations[-1], _fraction(plan, "checkpoint", "tear-file"))
    flip_byte(generations[-2], _fraction(plan, "checkpoint", "flip-byte"))

    resolved = resolve_resume(store)
    report.fallback_skipped = [str(p) for p, _ in resolved.skipped]
    if len(resolved.skipped) != 2:
        report.failures.append(
            f"expected fallback past 2 corrupt checkpoints, "
            f"skipped {len(resolved.skipped)}"
        )
    resumed = SchedulerEngine.from_snapshot(resolved.snapshot).run(
        resume_from=resolved.snapshot
    )
    digest = result_digest(resumed)
    report.engine_resume_match = digest == report.baseline_digests[name]
    if not report.engine_resume_match:
        report.failures.append(
            "fallback resume diverged from baseline "
            f"({digest[:12]} != {report.baseline_digests[name][:12]})"
        )


def _corruption_probes(plan, baseline, workdir, report) -> None:
    """Phase D: every byte-flipped artifact fails typed, never raw."""
    from ..scheduler.serialize import dump_result, load_result

    # result file
    name = next(iter(baseline))
    result_path = workdir / "result.json"
    dump_result(baseline[name], result_path)
    flip_byte(result_path, _fraction(plan, "result", "flip-byte"))
    try:
        load_result(result_path)
        report.failures.append("byte-flipped result loaded without error")
    except IntegrityError as exc:
        report.detections["result flip"] = f"IntegrityError: {exc}"

    # journal (phase B wrote one)
    source = workdir / "chaos-journal.jsonl"
    flipped = workdir / "journal-flipped.jsonl"
    flipped.write_bytes(source.read_bytes())
    flip_byte(flipped, _fraction(plan, "journal", "flip-byte"))
    try:
        data = load_journal(flipped)
    except IntegrityError as exc:
        report.detections["journal flip"] = f"IntegrityError: {exc}"
    else:
        # A flip landing in the final record parses as a torn tail —
        # detected and flagged, just not fatal.
        if data.truncated:
            report.detections["journal flip"] = "flagged truncated tail"
        else:
            report.failures.append("byte-flipped journal loaded clean")


def _io_chaos(plan, workdir, report) -> None:
    """Phase E: ENOSPC fails the first write; one retry recovers."""
    io_actions = plan.io_actions()
    if not io_actions:
        report.io_faults_recovered = True
        return
    arm_io_actions(io_actions)
    target = workdir / "io-probe.json"
    payload = {"probe": "io-chaos", "seed": plan.seed}
    recovered = False
    try:
        # One write per armed fault, plus one clean: ENOSPC consumes the
        # first (raises), slow-io the second (stalls), the last succeeds.
        for _ in range(len(io_actions) + 1):
            try:
                atomic_write_json(target, payload)
                recovered = True
            except OSError as exc:
                report.detections["io fault"] = f"OSError: {exc}"
    finally:
        _failpoints.disarm("atomic_write")
    if recovered and json.loads(target.read_text()) == payload:
        report.io_faults_recovered = True
    else:
        report.failures.append("atomic_write never recovered from I/O faults")
