"""Primitive chaos injectors.

Three layers of fault, matching the three kinds of
:class:`~repro.chaos.plan.ChaosAction` target:

* artifact corruption — :func:`flip_byte` and :func:`tear_file` mutate
  files on disk the way bit rot and torn writes do;
* I/O faults — :func:`arm_io_actions` arms the
  :mod:`repro._failpoints` registry so the *next* ``atomic_write``
  raises ``ENOSPC`` or stalls;
* worker chaos — :func:`_chaos_cell` is a picklable task body that
  kills/hangs/errors the pool worker on the planned attempt before
  delegating to the real experiment cell, letting
  :func:`repro.runs.run_tasks` prove its retry/rebuild machinery on a
  genuine dead process rather than a mocked one.

Worker chaos must know which attempt it is on *across process
boundaries* (the killed worker's memory is gone), so attempts are
counted in marker files under a scratch directory — one ``touch`` per
attempt, immune to worker death.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import List, Sequence, Union

from .. import _failpoints
from ..obs import runtime as obs_runtime
from .plan import ChaosAction

__all__ = ["ChaosTaskError", "flip_byte", "tear_file", "arm_io_actions"]


class ChaosTaskError(RuntimeError):
    """The error a ``task-error`` action makes the target task raise."""


def _corruption_offset(size: int, fraction: float) -> int:
    """Byte offset for a corruption at ``fraction`` of a ``size``-byte file."""
    if size <= 0:
        raise ValueError("cannot corrupt an empty file")
    return min(size - 1, max(0, int(size * fraction)))


def flip_byte(path: Union[str, Path], fraction: float = 0.5) -> int:
    """XOR one byte of ``path`` (at ``fraction`` of its length) with 0xFF.

    Returns the offset that was flipped. Simulates single-bit/byte rot;
    every artifact reader must turn this into a typed
    :class:`~repro.runs.integrity.IntegrityError`, never an uncaught
    traceback.
    """
    path = Path(path)
    size = path.stat().st_size
    offset = _corruption_offset(size, fraction)
    with open(path, "r+b") as fh:
        fh.seek(offset)
        original = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([original[0] ^ 0xFF]))
    obs_runtime.count("chaos.artifact_corruptions")
    return offset


def tear_file(path: Union[str, Path], keep_fraction: float = 0.5) -> int:
    """Truncate ``path`` to ``keep_fraction`` of its length (a torn write).

    Returns the new size. At least one byte is dropped and at least one
    kept, so the result is always a *partial* artifact rather than an
    intact or empty one.
    """
    path = Path(path)
    size = path.stat().st_size
    if size <= 1:
        raise ValueError(f"{path}: too small to tear ({size} bytes)")
    keep = min(size - 1, max(1, int(size * keep_fraction)))
    with open(path, "r+b") as fh:
        fh.truncate(keep)
    obs_runtime.count("chaos.artifact_corruptions")
    return keep


def arm_io_actions(actions: Sequence[ChaosAction]) -> None:
    """Arm :mod:`repro._failpoints` for the plan's I/O actions.

    Each ``enospc`` action makes one ``atomic_write`` raise
    ``OSError(ENOSPC)``; each ``slow-io`` action makes one stall for
    the action's ``arg`` seconds. Callers pair this with
    :func:`repro._failpoints.disarm_all` (or the ``armed`` context
    manager) so faults never leak past the chaos run.
    """
    for action in actions:
        if action.op == "enospc":
            _failpoints.arm("atomic_write", "raise-enospc", count=1)
        elif action.op == "slow-io":
            _failpoints.arm("atomic_write", "sleep", count=1, arg=action.arg)
        else:
            raise ValueError(f"not an io action: {action.op}")


# ----------------------------------------------------------------------
# worker chaos
# ----------------------------------------------------------------------


def _attempt_number(scratch_dir: Union[str, Path], key: str) -> int:
    """Record this invocation of cell ``key`` and return its 1-based attempt.

    Uses one marker file per attempt under ``scratch_dir`` because the
    counter must survive ``os._exit`` in the worker — in-memory state
    dies with the process, files do not.
    """
    scratch = Path(scratch_dir)
    scratch.mkdir(parents=True, exist_ok=True)
    attempt = 1
    while (scratch / f"{key}.attempt-{attempt}").exists():
        attempt += 1
    (scratch / f"{key}.attempt-{attempt}").touch()
    return attempt


def _chaos_cell(cfg, name, jobs, directives, scratch_dir):
    """Experiment cell wrapper that executes worker chaos, then the real work.

    Module-level (not a closure) so it pickles into pool workers.
    ``directives`` is the plan's worker-op action list for this cell;
    each fires on its ``attempt`` number, tracked via marker files in
    ``scratch_dir`` (see :func:`_attempt_number`). After any surviving
    directives, delegates to the real
    :func:`repro.experiments.runner._continuous_worker`, so the result
    is bit-identical to an undisturbed run.
    """
    from ..experiments.runner import _continuous_worker

    attempt = _attempt_number(scratch_dir, name)
    for action in directives:
        if action.attempt != attempt:
            continue
        if action.op == "kill-worker":
            # Emulate a hard worker death (OOM-killer style): no Python
            # teardown, no exception — the pool just loses the process.
            os._exit(137)
        elif action.op == "hang-worker":
            time.sleep(action.arg)
        elif action.op == "task-error":
            raise ChaosTaskError(
                f"injected failure in cell {name!r} (attempt {attempt})"
            )
    return _continuous_worker(cfg, name, jobs)
