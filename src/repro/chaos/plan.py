"""Seeded, serializable chaos plans.

A :class:`ChaosPlan` is to harness failures what a fault trace is to
cluster failures (:mod:`repro.faults`): a frozen, replayable schedule.
:func:`generate_chaos_plan` follows the same determinism discipline as
``generate_faults`` — a frozen config dataclass, one
``np.random.default_rng(seed)``, and nothing else feeding the draw —
so a plan is reproduced exactly by its config, and a plan file replays
a scenario on any machine.

The generated plan always contains one of every failure class the
acceptance harness must prove recovery from (a worker kill, a checkpoint
tear, checkpoint/journal/result byte flips, a task error, ENOSPC, slow
I/O); the seed varies only the *parameters* — which byte flips, where
files tear, how long hangs last. Coverage is structural, randomness is
parametric: CI smoke runs can never lose a failure class to an unlucky
seed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

import numpy as np

from ..runs.atomic import atomic_write_json

__all__ = [
    "CHAOS_OPS",
    "CHAOS_PLAN_VERSION",
    "ChaosAction",
    "ChaosPlan",
    "ChaosPlanConfig",
    "generate_chaos_plan",
    "load_plan",
    "save_plan",
]

CHAOS_PLAN_VERSION = 1

#: every failure the harness can inject:
#: ``kill-worker``  — the worker process running the target task calls
#:                    ``os._exit`` mid-cell (attempt ``attempt``).
#: ``hang-worker``  — the worker sleeps ``arg`` seconds before working.
#: ``task-error``   — the task raises :class:`ChaosTaskError`.
#: ``flip-byte``    — XOR one byte of the target artifact (at the
#:                    ``arg`` fraction of the file).
#: ``tear-file``    — truncate the target artifact to the ``arg``
#:                    fraction of its length (a torn write).
#: ``enospc``       — the next ``atomic_write`` raises ``ENOSPC``.
#: ``slow-io``      — ``atomic_write`` sleeps ``arg`` seconds.
CHAOS_OPS = (
    "kill-worker",
    "hang-worker",
    "task-error",
    "flip-byte",
    "tear-file",
    "enospc",
    "slow-io",
)

_WORKER_OPS = ("kill-worker", "hang-worker", "task-error")
_ARTIFACT_OPS = ("flip-byte", "tear-file")
_IO_OPS = ("enospc", "slow-io")
_ARTIFACTS = ("checkpoint", "journal", "result")


@dataclass(frozen=True)
class ChaosAction:
    """One injected failure.

    ``target`` scopes the action: ``task:<key>`` for worker ops (the
    executor cell to hit), ``artifact:<checkpoint|journal|result>`` for
    file-corruption ops, ``io:atomic_write`` for failpoint ops.
    ``attempt`` is which attempt of the task the failure hits (worker
    ops only); ``arg`` is the op's parameter — flip offset fraction,
    tear keep-fraction, or sleep seconds.
    """

    op: str
    target: str
    attempt: int = 1
    arg: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in CHAOS_OPS:
            raise ValueError(f"unknown chaos op {self.op!r}; known: {list(CHAOS_OPS)}")
        scope = self.target.split(":", 1)[0]
        expected = (
            "task"
            if self.op in _WORKER_OPS
            else "artifact" if self.op in _ARTIFACT_OPS else "io"
        )
        if scope != expected or ":" not in self.target:
            raise ValueError(
                f"op {self.op!r} needs a {expected}:<name> target, "
                f"got {self.target!r}"
            )
        if self.op in _ARTIFACT_OPS and self.target.split(":", 1)[1] not in _ARTIFACTS:
            raise ValueError(
                f"artifact target must be one of {list(_ARTIFACTS)}, "
                f"got {self.target!r}"
            )
        if self.attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {self.attempt}")
        if not 0.0 <= self.arg <= 60.0:
            raise ValueError(f"arg must be in [0, 60], got {self.arg}")


@dataclass(frozen=True)
class ChaosPlanConfig:
    """Knobs for :func:`generate_chaos_plan`.

    ``task_keys`` are the executor cells worker chaos is aimed at (the
    first gets the kill, the second the injected error, the last the
    hang); artifact and I/O chaos are target-independent.
    """

    seed: int = 0
    task_keys: Tuple[str, ...] = ("default", "balanced")
    hang_seconds: float = 0.2
    slow_io_seconds: float = 0.05

    def __post_init__(self) -> None:
        if not self.task_keys:
            raise ValueError("task_keys must name at least one executor cell")
        if self.hang_seconds < 0:
            raise ValueError(f"hang_seconds must be >= 0, got {self.hang_seconds}")
        if self.slow_io_seconds < 0:
            raise ValueError(
                f"slow_io_seconds must be >= 0, got {self.slow_io_seconds}"
            )


@dataclass(frozen=True)
class ChaosPlan:
    """A replayable schedule of harness failures."""

    seed: int
    actions: Tuple[ChaosAction, ...] = ()

    def for_task(self, key: str) -> List[ChaosAction]:
        """Worker-op actions aimed at executor cell ``key``."""
        return [a for a in self.actions if a.target == f"task:{key}"]

    def for_artifact(self, name: str) -> List[ChaosAction]:
        """File-corruption actions aimed at artifact ``name``."""
        return [a for a in self.actions if a.target == f"artifact:{name}"]

    def io_actions(self) -> List[ChaosAction]:
        """Failpoint actions (ENOSPC / slow I/O)."""
        return [a for a in self.actions if a.op in _IO_OPS]


def generate_chaos_plan(config: ChaosPlanConfig) -> ChaosPlan:
    """Generate the canonical failure battery with seeded parameters.

    The action *set* is fixed (see module docstring); the rng draws
    only each action's parameters, so every seed covers every failure
    class and two calls with the same config are identical.
    """
    rng = np.random.default_rng(config.seed)

    def fraction() -> float:
        # Flip/tear positions stay inside (0.05, 0.95): the extreme
        # edges of a file can coincide with trailing newlines whose
        # corruption is still *detected* but makes poorer test signal.
        return float(rng.uniform(0.05, 0.95))

    keys = config.task_keys
    actions: List[ChaosAction] = [
        ChaosAction("kill-worker", f"task:{keys[0]}", attempt=1),
        ChaosAction(
            "task-error", f"task:{keys[min(1, len(keys) - 1)]}", attempt=1
        ),
        ChaosAction(
            "hang-worker", f"task:{keys[-1]}", attempt=2, arg=config.hang_seconds
        ),
        ChaosAction("tear-file", "artifact:checkpoint", arg=fraction()),
        ChaosAction("flip-byte", "artifact:checkpoint", arg=fraction()),
        ChaosAction("flip-byte", "artifact:journal", arg=fraction()),
        ChaosAction("flip-byte", "artifact:result", arg=fraction()),
        ChaosAction("enospc", "io:atomic_write"),
        ChaosAction("slow-io", "io:atomic_write", arg=config.slow_io_seconds),
    ]
    return ChaosPlan(seed=config.seed, actions=tuple(actions))


# ----------------------------------------------------------------------
# (de)serialization
# ----------------------------------------------------------------------


def plan_to_dict(plan: ChaosPlan) -> Dict[str, Any]:
    """Plain-JSON representation of a plan."""
    return {
        "kind": "chaos-plan",
        "chaos_version": CHAOS_PLAN_VERSION,
        "seed": plan.seed,
        "actions": [
            {
                "op": a.op,
                "target": a.target,
                "attempt": a.attempt,
                "arg": a.arg,
            }
            for a in plan.actions
        ],
    }


def plan_from_dict(data: Dict[str, Any]) -> ChaosPlan:
    """Inverse of :func:`plan_to_dict`; validates kind and version."""
    if not isinstance(data, dict) or data.get("kind") != "chaos-plan":
        raise ValueError(f"not a chaos plan: kind={data.get('kind')!r}")
    version = data.get("chaos_version")
    if version != CHAOS_PLAN_VERSION:
        raise ValueError(
            f"unsupported chaos plan version {version!r} "
            f"(this build reads {CHAOS_PLAN_VERSION})"
        )
    return ChaosPlan(
        seed=int(data["seed"]),
        actions=tuple(
            ChaosAction(
                op=str(a["op"]),
                target=str(a["target"]),
                attempt=int(a.get("attempt", 1)),
                arg=float(a.get("arg", 0.0)),
            )
            for a in data["actions"]
        ),
    )


def save_plan(plan: ChaosPlan, path: Union[str, Path]) -> None:
    """Atomically write a plan as JSON."""
    atomic_write_json(path, plan_to_dict(plan))


def load_plan(path: Union[str, Path]) -> ChaosPlan:
    """Read a plan written by :func:`save_plan`."""
    with open(path) as fh:
        return plan_from_dict(json.load(fh))
