"""Deterministic chaos harness for the run pipeline.

Where :mod:`repro.faults` injects failures into the *simulated*
cluster, this package injects failures into the harness itself — the
worker pools, checkpoints, journals, and result files that PR 3-5
built — and proves the robustness machinery actually recovers:

* :mod:`~repro.chaos.plan` — :class:`ChaosPlan`: a seeded, serializable
  list of :class:`ChaosAction`\\ s (kill/hang a worker on attempt N,
  flip a byte in a checkpoint, tear a journal, inject ENOSPC), in the
  :mod:`repro.faults` determinism style so every failure scenario is
  replayable from ``(seed,)`` alone.
* :mod:`~repro.chaos.inject` — the primitive injectors: byte flips and
  truncation for artifacts, failpoint arming for I/O faults, and the
  picklable chaos worker wrapper that executes kill/hang/error
  directives inside pool workers.
* :mod:`~repro.chaos.runner` — :func:`run_chaos`: executes a plan
  end-to-end over a small experiment (worker chaos through
  :func:`repro.runs.run_tasks`, artifact chaos against engine
  checkpoints/journals/results, I/O chaos through failpoints) and
  verifies that every result is **bit-identical** to the undisturbed
  baseline, with all recovery activity visible in :mod:`repro.obs`
  counters.
* :mod:`~repro.chaos.fabric` — :func:`run_fabric_chaos`: the same
  discipline aimed at the PR 8 distributed sweep fabric — worker
  kills, a heartbeat partition, a deliberate duplicate lease, and a
  SIGKILLed coordinator mid-sweep, with the takeover coordinator's
  merged report required to be bit-identical to serial ``sweep()``.

Exposed on the CLI as ``repro-sched chaos plan`` / ``repro-sched chaos
run``; the CI smoke step runs a seeded plan on every push. See
``docs/resilience.md``.
"""

from .fabric import (
    FabricChaosPlan,
    FabricChaosReport,
    generate_fabric_chaos_plan,
    run_fabric_chaos,
)
from .inject import ChaosTaskError, flip_byte, tear_file
from .plan import (
    CHAOS_OPS,
    ChaosAction,
    ChaosPlan,
    ChaosPlanConfig,
    generate_chaos_plan,
    load_plan,
    save_plan,
)
from .runner import ChaosReport, run_chaos

__all__ = [
    "CHAOS_OPS",
    "ChaosAction",
    "ChaosPlan",
    "ChaosPlanConfig",
    "ChaosReport",
    "ChaosTaskError",
    "FabricChaosPlan",
    "FabricChaosReport",
    "flip_byte",
    "generate_chaos_plan",
    "generate_fabric_chaos_plan",
    "load_plan",
    "run_chaos",
    "run_fabric_chaos",
    "save_plan",
    "tear_file",
]
