"""Chaos battery for the sweep fabric.

Where :mod:`repro.chaos.runner` attacks the single-process harness
(worker pools, checkpoints, journals), this module attacks the
*distributed* layer: it runs one sweep through :mod:`repro.fabric`
while killing workers mid-cell, partitioning a worker's heartbeats
away while it keeps computing, double-leasing a cell on purpose, and
SIGKILL-ing the coordinator itself mid-run — then verifies the merged
report is **bit-identical** to the undisturbed serial ``sweep()`` and
that every recovery path left its fingerprint in the
:mod:`repro.obs` counters.

The scenario is seeded and structural in the PR 6 style: every run
contains one of each failure class (two worker kills, one heartbeat
partition, one duplicate lease, one coordinator kill); the seed varies
only parameters (which cell is double-leased, how long the partition
lasts). CI smoke runs can never lose a failure class to an unlucky
seed.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from ..experiments.sweeps import sweep
from ..fabric.coordinator import Coordinator, collect_report, sweep_cells
from ..fabric.protocol import FabricConfig, FabricPaths, init_fabric, replay_fabric
from ..fabric.worker import WorkerChaos, spawn_local_workers
from ..obs import runtime as obs_runtime
from ..runs.executor import PartialRows
from ..runs.retry import RetryPolicy

__all__ = [
    "FabricChaosPlan",
    "FabricChaosReport",
    "generate_fabric_chaos_plan",
    "run_fabric_chaos",
]

#: the battery's fixed sweep: 6 cells x 2 allocators = 12 report rows,
#: small enough for CI smoke, wide enough that the coordinator dies
#: with most of the grid still in flight.
_CHAOS_GRID = {"seed": [0, 1, 2], "n_jobs": [30, 40]}
_CHAOS_ALLOCATORS = ("default", "balanced")
_CHAOS_WORKERS = 4


@dataclass(frozen=True)
class FabricChaosPlan:
    """One seeded fabric-chaos scenario (structural coverage, fixed).

    ``kill_workers`` die on their first assignment; ``hang_worker``
    goes heartbeat-silent for ``hang_seconds`` while still holding its
    first cell (silence exceeds the fabric TTL, so the lease is revoked
    and the late result must be deduplicated); ``duplicate_cell`` is
    double-leased by the coordinator on purpose;
    ``kill_coordinator=True`` SIGKILLs the coordinator once the first
    result lands, forcing a journal-replay takeover.
    """

    seed: int
    kill_workers: tuple = ("w0", "w1")
    hang_worker: str = "w2"
    hang_seconds: float = 1.6
    duplicate_cell: str = ""
    kill_coordinator: bool = True

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (CLI output, plan files)."""
        return {
            "kind": "fabric-chaos-plan",
            "seed": self.seed,
            "kill_workers": list(self.kill_workers),
            "hang_worker": self.hang_worker,
            "hang_seconds": self.hang_seconds,
            "duplicate_cell": self.duplicate_cell,
            "kill_coordinator": self.kill_coordinator,
        }


def generate_fabric_chaos_plan(seed: int = 0) -> FabricChaosPlan:
    """Derive one scenario from ``seed`` alone (replayable anywhere).

    Structure is constant; the seed picks which cell gets the duplicate
    lease and how long the heartbeat partition lasts.
    """
    rng = np.random.default_rng(seed)
    cells = sweep_cells(_CHAOS_GRID, allocators=_CHAOS_ALLOCATORS)
    # Never the first two cells: those are the kill victims' first
    # assignments, and the duplicate lease should land on workers that
    # live long enough to race each other.
    dup = cells[2 + int(rng.integers(0, len(cells) - 2))].key
    hang = 1.4 + float(rng.uniform(0.0, 0.6))
    return FabricChaosPlan(seed=seed, duplicate_cell=dup, hang_seconds=hang)


@dataclass
class FabricChaosReport:
    """What a fabric chaos run did and whether recovery was exact.

    ``ok`` is the verdict; ``failures`` lists every broken guarantee in
    plain text. ``counters`` is the parent-process :mod:`repro.obs`
    snapshot covering the takeover coordinator — the one that performs
    (and must make visible) the recovery work.
    """

    plan: Optional[FabricChaosPlan] = None
    rows: int = 0
    baseline_rows: int = 0
    bit_identical: bool = False
    coordinator_killed: bool = False
    generation: int = 0
    counters: Dict[str, float] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the sweep recovered to a bit-identical full report."""
        return not self.failures

    def summary(self) -> str:
        """Multi-line human-readable report (what the CLI prints)."""
        plan = self.plan.to_dict() if self.plan is not None else {}
        lines = [
            f"fabric chaos seed={plan.get('seed')} "
            f"(kill {len(plan.get('kill_workers', []))} workers, "
            f"partition {plan.get('hang_worker')}, "
            f"dup-lease 1 cell, kill coordinator: "
            f"{plan.get('kill_coordinator')})",
            f"  coordinator killed + replaced: {self.coordinator_killed} "
            f"(generation {self.generation})",
            f"  merged report: {self.rows}/{self.baseline_rows} rows, "
            f"{'bit-identical' if self.bit_identical else 'MISMATCH'}",
        ]
        interesting = (
            "fabric.worker_deaths",
            "fabric.lease_reassignments",
            "fabric.leases_adopted",
            "fabric.duplicate_results",
            "fabric.late_results",
            "fabric.cells_completed",
            "runs.quarantined_cells",
        )
        shown = {k: self.counters.get(k, 0) for k in interesting}
        lines.append("  counters: " + json.dumps(shown))
        lines.append("RECOVERED" if self.ok else "FAILED: " + "; ".join(self.failures))
        return "\n".join(lines)


def _coordinator_child(root: str) -> None:
    """Process entry point for the sacrificial first coordinator."""
    Coordinator(root).run()


def run_fabric_chaos(
    seed: int = 0,
    *,
    fabric_dir: Optional[Union[str, Path]] = None,
    kill_timeout: float = 60.0,
) -> FabricChaosReport:
    """Run the fabric chaos battery end-to-end.

    Phases:

    A. **baseline** — the battery grid through serial ``sweep()``; its
       rows are the ground truth.
    B. **mayhem** — the same grid through a fabric with four workers
       (two die on first assignment, one heartbeat-partitions) and a
       deliberately double-leased cell; coordinator #1 runs in a child
       process and is SIGKILLed as soon as the first result file lands.
    C. **takeover** — coordinator #2 runs in *this* process under an
       :mod:`repro.obs` recorder: it repairs the journal tail, replays,
       adopts the in-flight leases, revokes the dead workers' leases,
       and finishes the sweep.

    The report fails if any cell is missing, duplicated, or different
    from the serial baseline, if the coordinator was never actually
    killed mid-run, or if the recovery counters do not show at least
    two worker deaths and one lease reassignment.

    ``fabric_dir`` (default: a throwaway under the CWD's tempdir) is
    left on disk when supplied explicitly, so a failed run can be
    autopsied via ``repro-sched fabric status``.
    """
    import tempfile

    plan = generate_fabric_chaos_plan(seed)
    report = FabricChaosReport(plan=plan)

    # Phase A: serial ground truth.
    baseline = sweep(_CHAOS_GRID, allocators=_CHAOS_ALLOCATORS)
    baseline_text = json.dumps(baseline, sort_keys=True)
    report.baseline_rows = len(baseline)

    tmp: Optional[tempfile.TemporaryDirectory] = None
    if fabric_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-fabric-chaos-")
        fabric_dir = tmp.name
    try:
        # Phase B: initialize, unleash the faulty fleet, kill the brain.
        cells = sweep_cells(_CHAOS_GRID, allocators=_CHAOS_ALLOCATORS)
        config = FabricConfig(
            heartbeat_interval=0.1,
            heartbeat_ttl=1.0,
            poll_interval=0.03,
            max_reassignments=4,
            # Degraded mode has its own tests; the battery must finish
            # the full grid, so churn may not trip shedding here.
            churn_threshold=99,
            duplicate_cells=(plan.duplicate_cell,),
            retry=RetryPolicy(backoff_base=0.05, backoff_max=1.0, jitter=0.5),
        )
        init_fabric(
            fabric_dir,
            cells,
            context={"chaos_seed": seed, "grid": {k: list(v) for k, v in _CHAOS_GRID.items()}},
            config=config,
        )
        chaos = {w: WorkerChaos(kill_on_cell="*") for w in plan.kill_workers}
        chaos[plan.hang_worker] = WorkerChaos(
            hang_heartbeat_on_cell="*", hang_heartbeat_seconds=plan.hang_seconds
        )
        procs = spawn_local_workers(fabric_dir, _CHAOS_WORKERS, chaos=chaos)
        paths = FabricPaths(fabric_dir)
        coord1 = mp.Process(target=_coordinator_child, args=(str(fabric_dir),))
        coord1.start()
        try:
            deadline = time.monotonic() + kill_timeout
            while time.monotonic() < deadline and coord1.is_alive():
                if any(paths.results.glob("*.json")):
                    break
                time.sleep(0.005)
            if coord1.is_alive() and plan.kill_coordinator:
                os.kill(coord1.pid, signal.SIGKILL)
                report.coordinator_killed = True
            coord1.join(timeout=10)
        finally:
            if coord1.is_alive():  # pragma: no cover - defensive
                coord1.kill()
                coord1.join(timeout=5)

        # Phase C: takeover in this process, under the obs recorder.
        recorder = obs_runtime.PerfRecorder()
        try:
            with obs_runtime.collecting(recorder):
                Coordinator(fabric_dir).run()
        finally:
            paths.stop.touch()
            for proc in procs:
                proc.join(timeout=30)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()
                    proc.join(timeout=5)
        report.counters = dict(recorder.counters)
        report.generation = replay_fabric(paths.journal).generation

        # Verdicts.
        rows = collect_report(fabric_dir)
        report.rows = len(rows)
        if isinstance(rows, PartialRows):
            report.failures.append(
                f"partial report: missing={sorted(rows.missing)} "
                f"quarantined={sorted(rows.quarantined)}"
            )
        report.bit_identical = (
            json.dumps(list(rows), sort_keys=True) == baseline_text
        )
        if not report.bit_identical:
            report.failures.append("merged report differs from serial baseline")
        if plan.kill_coordinator and not report.coordinator_killed:
            report.failures.append(
                "coordinator finished before it could be killed "
                "(scenario did not exercise takeover)"
            )
        if plan.kill_coordinator and report.generation < 2:
            report.failures.append(
                f"expected a takeover generation >= 2, got {report.generation}"
            )
        deaths = report.counters.get("fabric.worker_deaths", 0)
        if deaths < 2:
            report.failures.append(
                f"takeover coordinator observed {deaths} worker deaths, need >= 2"
            )
        if report.counters.get("fabric.lease_reassignments", 0) < 1:
            report.failures.append("no lease reassignments were recorded")
        if report.counters.get("fabric.cells_completed", 0) < 1:
            report.failures.append("takeover coordinator completed no cells")
        return report
    finally:
        if tmp is not None:
            tmp.cleanup()
