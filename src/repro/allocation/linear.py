"""Topology-blind ``select/linear`` baseline (ablation).

Plain SLURM without the ``topology/tree`` plugin: take the lowest-id
free nodes regardless of switch boundaries. Not part of the paper's
comparison (their default already includes the topology plugin) and
therefore excluded from ``PAPER_ALLOCATORS``, but a useful ablation
showing how much the tree-aware baseline itself buys. Catalogued in
``docs/allocators.md`` under the *baseline* family.
"""

from __future__ import annotations

import numpy as np

from ..cluster.job import Job
from ..cluster.state import AVAIL_UP, NODE_FREE, ClusterState
from .base import Allocator

__all__ = ["LinearAllocator"]


class LinearAllocator(Allocator):
    """First-fit by node id, ignoring the topology."""

    name = "linear"

    def select(self, state: ClusterState, job: Job) -> np.ndarray:
        """Take the first ``job.nodes`` free node ids, topology-blind."""
        free = np.flatnonzero(
            (state.node_state == NODE_FREE) & (state.node_avail == AVAIL_UP)
        )
        return free[: job.nodes].astype(np.int64)
