"""Node allocation algorithms (paper §4, SLURM baselines, literature zoo).

The full catalogue — families, citations, tunable parameters — lives in
``docs/allocators.md`` and is generated from :data:`ALLOCATOR_REGISTRY`;
see that guide for the allocator contract and a worked registration
example.
"""

from .base import (
    AllocationError,
    Allocator,
    find_lowest_level_switch,
    gather_nodes,
    leaves_below,
)
from .adaptive import AdaptiveAllocator, AdaptiveDecision
from .annealing import SimulatedAnnealingAllocator
from .balanced import BalancedAllocator, balanced_split
from .contiguous import ContiguousAllocator
from .default_slurm import DefaultSlurmAllocator
from .fault_aware import FaultAwareAllocator
from .greedy import GreedyAllocator
from .io_aware import IOAwareAllocator
from .linear import LinearAllocator
from .spread import SpreadAllocator
from .registry import (
    ALLOCATOR_FACTORIES,
    ALLOCATOR_REGISTRY,
    AllocatorInfo,
    AllocatorParam,
    PAPER_ALLOCATORS,
    allocator_catalogue,
    allocator_names,
    catalogue_markdown,
    get_allocator,
    parse_allocator_spec,
    register_allocator,
)

__all__ = [
    "AllocationError",
    "Allocator",
    "find_lowest_level_switch",
    "gather_nodes",
    "leaves_below",
    "AdaptiveAllocator",
    "AdaptiveDecision",
    "BalancedAllocator",
    "balanced_split",
    "ContiguousAllocator",
    "DefaultSlurmAllocator",
    "FaultAwareAllocator",
    "GreedyAllocator",
    "IOAwareAllocator",
    "LinearAllocator",
    "SimulatedAnnealingAllocator",
    "SpreadAllocator",
    "ALLOCATOR_FACTORIES",
    "ALLOCATOR_REGISTRY",
    "AllocatorInfo",
    "AllocatorParam",
    "PAPER_ALLOCATORS",
    "allocator_catalogue",
    "allocator_names",
    "catalogue_markdown",
    "get_allocator",
    "parse_allocator_spec",
    "register_allocator",
]
