"""Node allocation algorithms (paper §4 + SLURM baselines)."""

from .base import (
    AllocationError,
    Allocator,
    find_lowest_level_switch,
    gather_nodes,
    leaves_below,
)
from .adaptive import AdaptiveAllocator, AdaptiveDecision
from .balanced import BalancedAllocator, balanced_split
from .default_slurm import DefaultSlurmAllocator
from .greedy import GreedyAllocator
from .io_aware import IOAwareAllocator
from .linear import LinearAllocator
from .spread import SpreadAllocator
from .registry import (
    ALLOCATOR_FACTORIES,
    PAPER_ALLOCATORS,
    allocator_names,
    get_allocator,
)

__all__ = [
    "AllocationError",
    "Allocator",
    "find_lowest_level_switch",
    "gather_nodes",
    "leaves_below",
    "AdaptiveAllocator",
    "AdaptiveDecision",
    "BalancedAllocator",
    "balanced_split",
    "DefaultSlurmAllocator",
    "GreedyAllocator",
    "IOAwareAllocator",
    "LinearAllocator",
    "SpreadAllocator",
    "ALLOCATOR_FACTORIES",
    "PAPER_ALLOCATORS",
    "allocator_names",
    "get_allocator",
]
