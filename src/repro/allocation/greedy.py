"""Greedy allocation — paper Algorithm 1 (§4.1).

Leaf switches under the chosen switch are ranked by their
*communication ratio* (Eq. 1)::

    ratio(L) = L_comm / L_busy + L_busy / L_nodes

A low ratio means little contention and many free nodes. Communication-
intensive jobs fill leaves in *increasing* ratio order (least contended
first); compute-intensive jobs fill in *decreasing* order, preserving
the quiet switches for future communication-intensive jobs.
"""

from __future__ import annotations

import numpy as np

from .._perfflags import is_legacy
from ..cluster.job import Job
from ..cluster.state import ClusterState
from ..topology.tree import SwitchInfo
from .base import (
    Allocator,
    AllocationError,
    find_lowest_level_switch,
    gather_nodes,
    leaves_below,
    ordered_takes,
)

__all__ = ["GreedyAllocator"]


class GreedyAllocator(Allocator):
    """Least-contended-first (comm) / most-contended-first (compute)."""

    name = "greedy"

    def select(self, state: ClusterState, job: Job) -> np.ndarray:
        """Fill leaves in contention order under the lowest feasible switch (Alg. 1)."""
        switch = find_lowest_level_switch(state, job.nodes)
        if switch is None:
            raise AllocationError(
                f"no switch with {job.nodes} free nodes for job {job.job_id}"
            )
        return self.select_under(state, job, switch)

    def select_under(self, state: ClusterState, job: Job, switch: SwitchInfo) -> np.ndarray:
        """Algorithm 1 body below an already-chosen switch.

        Split from :meth:`select` so the adaptive allocator can run the
        lowest-level switch search once and reuse it for both candidates.
        """
        if switch.is_leaf:
            return state.free_nodes_on_leaf(switch.leaf_lo, job.nodes)

        leaves = leaves_below(state, switch)
        if is_legacy():
            ratio = state.communication_ratio(leaves)
            free = state.leaf_free[leaves]
            if job.is_comm_intensive:
                # ascending ratio; among equals prefer more free nodes
                order = np.lexsort((leaves, -free, ratio))
            else:
                order = np.lexsort((leaves, free, -ratio))
            remaining = job.nodes
            takes = []
            for leaf in leaves[order]:
                take = min(int(state.leaf_free[leaf]), remaining)
                takes.append((int(leaf), take))
                remaining -= take
                if remaining == 0:
                    break
            return gather_nodes(state, takes)

        ratio = state.communication_ratio_cached()[leaves]
        free = state.leaf_free[leaves]
        if job.is_comm_intensive:
            # ascending ratio; among equals prefer more free nodes
            order = np.lexsort((leaves, -free, ratio))
        else:
            order = np.lexsort((leaves, free, -ratio))
        ordered = leaves[order]
        takes = ordered_takes(free[order], job.nodes)
        used = takes > 0
        return gather_nodes(
            state, list(zip(ordered[used].tolist(), takes[used].tolist()))
        )
