"""Allocator interface and shared tree-search helpers (paper §3.1, §4).

Every allocation algorithm in the paper starts the same way (line 2 of
Algorithms 1 and 2): find the *lowest-level* switch whose subtree has at
least the requested number of free nodes, best-fit among equals — this
is SLURM's ``topology/tree`` behaviour. If that switch is a leaf, the
request is served from it directly; otherwise the algorithms differ in
how they order and fill the leaf switches below it.

Allocators are stateless policy objects: they *choose* nodes but never
mutate the :class:`~repro.cluster.state.ClusterState`; the scheduler
engine applies the returned node ids.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._perfflags import is_legacy
from ..cluster.job import Job
from ..cluster.state import ClusterState
from ..topology.tree import SwitchInfo

__all__ = [
    "Allocator",
    "AllocationError",
    "find_lowest_level_switch",
    "find_lowest_level_switch_reference",
    "leaves_below",
    "gather_nodes",
    "ordered_takes",
]


class AllocationError(RuntimeError):
    """Raised when a request cannot be satisfied from the current state."""


_INT64_MAX = np.iinfo(np.int64).max


def find_lowest_level_switch_reference(
    state: ClusterState, n_nodes: int
) -> Optional[SwitchInfo]:
    """Per-switch loop the vectorized search below must reproduce exactly."""
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    topo = state.topology
    for level in range(1, topo.height + 1):
        best: Optional[SwitchInfo] = None
        best_free = -1
        for info in topo.switches_at_level(level):
            free = state.subtree_free(info)
            if free >= n_nodes and (best is None or free < best_free):
                best = info
                best_free = free
        if best is not None:
            return best
    return None


def find_lowest_level_switch(state: ClusterState, n_nodes: int) -> Optional[SwitchInfo]:
    """SLURM ``topology/tree`` switch selection (§3.1).

    Scan levels bottom-up; at the first level containing a switch with at
    least ``n_nodes`` free in its subtree, return the *best-fit* such
    switch (fewest free nodes, ties broken by switch index). Returns
    ``None`` when even the root cannot satisfy the request.

    Evaluates a whole level at once from the version-cached free-count
    prefix sum: subtree free of a switch with leaf range ``[lo, hi)`` is
    ``cs[hi] - cs[lo]``, and ``argmin`` over the feasible switches picks
    the same best-fit winner as the reference loop (numpy argmin returns
    the first minimum; switches within a level are stored in DFS = index
    order, matching the loop's strict ``<`` tie-breaking).
    """
    if is_legacy():
        return find_lowest_level_switch_reference(state, n_nodes)
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    # pure function of (cluster free counts, n_nodes); the engine's
    # default-placement counterfactual re-asks the exact question the
    # job-aware allocator just answered, so memoize per state version.
    # _derived_cache is cleared on every mutation, making entries
    # implicitly version-tagged; the sentinel distinguishes a cached
    # None (request unsatisfiable) from a cache miss.
    cache = state._derived_cache
    key = f"lls:{n_nodes}"
    hit = cache.get(key, cache)
    if hit is not cache:
        return hit  # type: ignore[return-value]
    topo = state.topology
    cs = state.leaf_free_cumsum()
    result: Optional[SwitchInfo] = None
    for level in range(1, topo.height + 1):
        indices, leaf_lo, leaf_hi = topo.level_switch_arrays(level)
        if indices.size == 0:
            continue
        frees = cs[leaf_hi] - cs[leaf_lo]
        feasible = frees >= n_nodes
        if not feasible.any():
            continue
        masked = np.where(feasible, frees, _INT64_MAX)
        result = topo.switches_at_level(level)[int(np.argmin(masked))]
        break
    cache[key] = result
    return result


def leaves_below(state: ClusterState, switch: SwitchInfo) -> np.ndarray:
    """Leaf indices under ``switch`` that have at least one free node."""
    leaf_range = np.arange(switch.leaf_lo, switch.leaf_hi, dtype=np.int64)
    return leaf_range[state.leaf_free[leaf_range] > 0]


def gather_nodes(
    state: ClusterState, per_leaf: Sequence[Tuple[int, int]]
) -> np.ndarray:
    """Materialize node ids from (leaf index, count) takes, in order.

    The order of ``per_leaf`` is the *rank order* of the allocation: the
    cost model maps ranks to nodes positionally, so which leaf serves
    which rank block matters (balanced allocation relies on it).
    """
    if is_legacy():
        parts: List[np.ndarray] = []
        for leaf_index, count in per_leaf:
            if count <= 0:
                continue
            parts.append(state.free_nodes_on_leaf(int(leaf_index), int(count)))
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)
    # one allocatability scan for the whole gather instead of one per
    # leaf inside free_nodes_on_leaf — the per-call numpy overhead
    # dominated at ~15 leaves per allocation. Scan the contiguous node
    # range spanned by the takes once, then slice each leaf's free ids
    # out of the sorted result with binary searches.
    takes = [(int(leaf), int(count)) for leaf, count in per_leaf if count > 0]
    if not takes:
        return np.empty(0, dtype=np.int64)
    allocatable = state.allocatable_mask()
    offsets = state.topology.leaf_node_offset
    leaf_arr = np.asarray([t[0] for t in takes], dtype=np.int64)
    count_arr = np.asarray([t[1] for t in takes], dtype=np.int64)
    span_lo = int(offsets[leaf_arr.min()])
    span_hi = int(offsets[leaf_arr.max() + 1])
    free_ids = np.flatnonzero(allocatable[span_lo:span_hi])
    free_ids += span_lo
    lefts = free_ids.searchsorted(offsets[leaf_arr])
    rights = free_ids.searchsorted(offsets[leaf_arr + 1])
    avail = rights - lefts
    if np.any(count_arr > avail):
        bad = int(np.flatnonzero(count_arr > avail)[0])
        raise ValueError(
            f"leaf {leaf_arr[bad]} has {int(avail[bad])} free nodes, "
            f"requested {int(count_arr[bad])}"
        )
    # each take is the slice free_ids[lefts[k] : lefts[k] + count_arr[k]];
    # build all slice indices at once instead of concatenating per-leaf
    seg_start = np.cumsum(count_arr) - count_arr
    idx = np.repeat(lefts - seg_start, count_arr)
    idx += np.arange(int(count_arr.sum()), dtype=np.int64)
    return free_ids[idx]


def ordered_takes(free_ordered: np.ndarray, n_nodes: int) -> np.ndarray:
    """Per-leaf take counts when filling ``n_nodes`` in the given order.

    Vectorizes the classic fill loop — take everything free on each leaf
    until the remainder runs out, then the partial tail take::

        take_i = clip(n - sum(free_0..free_{i-1}), 0, free_i)

    via one cumulative sum. ``free_ordered`` is the free-node count of
    each candidate leaf *in rank order*; the result aligns with it.
    """
    free_ordered = np.asarray(free_ordered, dtype=np.int64)
    before = np.cumsum(free_ordered) - free_ordered
    return np.clip(n_nodes - before, 0, free_ordered)


class Allocator(ABC):
    """Node-selection policy.

    Subclasses implement :meth:`select`, returning node ids in rank
    order. :meth:`allocate` wraps it with common feasibility checks.
    """

    #: registry name, e.g. ``"greedy"``
    name: str = "abstract"

    def allocate(self, state: ClusterState, job: Job) -> np.ndarray:
        """Choose ``job.nodes`` free nodes; raises :class:`AllocationError`.

        Does not mutate ``state``.
        """
        self.precheck(state, job)
        nodes = self.select(state, job)
        return self.postcheck(job, nodes)

    def precheck(self, state: ClusterState, job: Job) -> None:
        """Global feasibility checks shared by every policy."""
        if job.nodes > state.topology.n_nodes:
            raise AllocationError(
                f"job {job.job_id} wants {job.nodes} nodes, cluster has "
                f"{state.topology.n_nodes}"
            )
        if job.nodes > state.total_free:
            raise AllocationError(
                f"job {job.job_id} wants {job.nodes} nodes, only "
                f"{state.total_free} free"
            )

    def postcheck(self, job: Job, nodes: np.ndarray) -> np.ndarray:
        """Guard against a policy returning the wrong allocation size."""
        if len(nodes) != job.nodes:
            raise AllocationError(
                f"{self.name} returned {len(nodes)} nodes for a "
                f"{job.nodes}-node request (internal error)"
            )
        return np.asarray(nodes, dtype=np.int64)

    @abstractmethod
    def select(self, state: ClusterState, job: Job) -> np.ndarray:
        """Policy body; preconditions (enough free nodes) already checked."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
