"""Allocator interface and shared tree-search helpers (paper §3.1, §4).

Every allocation algorithm in the paper starts the same way (line 2 of
Algorithms 1 and 2): find the *lowest-level* switch whose subtree has at
least the requested number of free nodes, best-fit among equals — this
is SLURM's ``topology/tree`` behaviour. If that switch is a leaf, the
request is served from it directly; otherwise the algorithms differ in
how they order and fill the leaf switches below it.

Allocators are stateless policy objects: they *choose* nodes but never
mutate the :class:`~repro.cluster.state.ClusterState`; the scheduler
engine applies the returned node ids.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.job import Job
from ..cluster.state import ClusterState
from ..topology.tree import SwitchInfo

__all__ = [
    "Allocator",
    "AllocationError",
    "find_lowest_level_switch",
    "leaves_below",
    "gather_nodes",
]


class AllocationError(RuntimeError):
    """Raised when a request cannot be satisfied from the current state."""


def find_lowest_level_switch(state: ClusterState, n_nodes: int) -> Optional[SwitchInfo]:
    """SLURM ``topology/tree`` switch selection (§3.1).

    Scan levels bottom-up; at the first level containing a switch with at
    least ``n_nodes`` free in its subtree, return the *best-fit* such
    switch (fewest free nodes, ties broken by switch index). Returns
    ``None`` when even the root cannot satisfy the request.
    """
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    topo = state.topology
    for level in range(1, topo.height + 1):
        best: Optional[SwitchInfo] = None
        best_free = -1
        for info in topo.switches_at_level(level):
            free = state.subtree_free(info)
            if free >= n_nodes and (best is None or free < best_free):
                best = info
                best_free = free
        if best is not None:
            return best
    return None


def leaves_below(state: ClusterState, switch: SwitchInfo) -> np.ndarray:
    """Leaf indices under ``switch`` that have at least one free node."""
    leaf_range = np.arange(switch.leaf_lo, switch.leaf_hi, dtype=np.int64)
    return leaf_range[state.leaf_free[leaf_range] > 0]


def gather_nodes(
    state: ClusterState, per_leaf: Sequence[Tuple[int, int]]
) -> np.ndarray:
    """Materialize node ids from (leaf index, count) takes, in order.

    The order of ``per_leaf`` is the *rank order* of the allocation: the
    cost model maps ranks to nodes positionally, so which leaf serves
    which rank block matters (balanced allocation relies on it).
    """
    parts: List[np.ndarray] = []
    for leaf_index, count in per_leaf:
        if count <= 0:
            continue
        parts.append(state.free_nodes_on_leaf(int(leaf_index), int(count)))
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)


class Allocator(ABC):
    """Node-selection policy.

    Subclasses implement :meth:`select`, returning node ids in rank
    order. :meth:`allocate` wraps it with common feasibility checks.
    """

    #: registry name, e.g. ``"greedy"``
    name: str = "abstract"

    def allocate(self, state: ClusterState, job: Job) -> np.ndarray:
        """Choose ``job.nodes`` free nodes; raises :class:`AllocationError`.

        Does not mutate ``state``.
        """
        if job.nodes > state.topology.n_nodes:
            raise AllocationError(
                f"job {job.job_id} wants {job.nodes} nodes, cluster has "
                f"{state.topology.n_nodes}"
            )
        if job.nodes > state.total_free:
            raise AllocationError(
                f"job {job.job_id} wants {job.nodes} nodes, only "
                f"{state.total_free} free"
            )
        nodes = self.select(state, job)
        if len(nodes) != job.nodes:
            raise AllocationError(
                f"{self.name} returned {len(nodes)} nodes for a "
                f"{job.nodes}-node request (internal error)"
            )
        return np.asarray(nodes, dtype=np.int64)

    @abstractmethod
    def select(self, state: ClusterState, job: Job) -> np.ndarray:
        """Policy body; preconditions (enough free nodes) already checked."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
