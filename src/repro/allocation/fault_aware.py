"""Fault-aware allocation biased away from failure-correlated leaves.

Vardas et al. ("Improving the Performance and Resilience of MPI
Parallel Jobs with Topology and Fault-Aware Process Placement", arXiv
2012.14757) combine topology awareness with node failure statistics so
placements avoid hardware with a bad track record. This allocator does
the fat-tree analogue: the greedy (Algorithm 1) contention score of
each leaf is augmented with the leaf's share of the cluster's
availability history — :attr:`~repro.cluster.state.ClusterState.leaf_faults`,
the monotonically growing per-leaf count of node DOWN transitions
maintained by the fault model (PR 2's ``mark_down``).

Leaves are ranked by::

    score(L) = ratio(L) + bias * leaf_faults(L) / max(1, sum(leaf_faults))

Communication-intensive jobs fill in *ascending* score (quiet AND
historically reliable leaves first — a failure-correlated leaf is
effectively more contended, because a fault there kills the whole job);
compute-intensive jobs fill in *descending* score, preserving the
reliable quiet leaves exactly as Algorithm 1 preserves the quiet ones.
With no fault history (or ``bias=0``) the ranking degrades gracefully
to plain greedy.
"""

from __future__ import annotations

import numpy as np

from .._perfflags import is_legacy
from ..cluster.job import Job
from ..cluster.state import ClusterState
from .base import (
    Allocator,
    AllocationError,
    find_lowest_level_switch,
    gather_nodes,
    leaves_below,
    ordered_takes,
)

__all__ = ["FaultAwareAllocator"]


class FaultAwareAllocator(Allocator):
    """Greedy contention order blended with per-leaf failure history.

    Parameters
    ----------
    bias:
        Weight of the failure-history share relative to the Eq. 1
        contention ratio. ``0`` reduces to plain greedy; large values
        make reliability dominate contention.
    """

    name = "fault-aware"

    def __init__(self, bias: float = 1.0) -> None:
        if bias < 0:
            raise ValueError(f"bias must be >= 0, got {bias}")
        self.bias = float(bias)

    def select(self, state: ClusterState, job: Job) -> np.ndarray:
        """Fill leaves in blended contention + failure-history order."""
        switch = find_lowest_level_switch(state, job.nodes)
        if switch is None:
            raise AllocationError(
                f"no switch with {job.nodes} free nodes for job {job.job_id}"
            )
        if switch.is_leaf:
            return state.free_nodes_on_leaf(switch.leaf_lo, job.nodes)

        leaves = leaves_below(state, switch)
        if is_legacy():
            ratio = state.communication_ratio(leaves)
        else:
            ratio = state.communication_ratio_cached()[leaves]
        total_faults = int(state.leaf_faults.sum())
        fault_share = state.leaf_faults[leaves] / max(1, total_faults)
        score = ratio + self.bias * fault_share
        free = state.leaf_free[leaves]
        if job.is_comm_intensive:
            # ascending blended score; among equals prefer more free nodes
            order = np.lexsort((leaves, -free, score))
        else:
            order = np.lexsort((leaves, free, -score))
        ordered = leaves[order]
        takes = ordered_takes(free[order], job.nodes)
        used = takes > 0
        return gather_nodes(
            state, list(zip(ordered[used].tolist(), takes[used].tolist()))
        )
