"""Balanced allocation — paper Algorithm 2 (§4.2).

Communication-intensive jobs are placed in *powers of two per leaf
switch*: the allocation chunk size ``S`` starts at the request size and
is halved whenever the current leaf cannot hold it — and never grows
back, matching the paper's Figure 4 subdivision tree and the Table 2
worked example (512 nodes over leaves with 160/150/100/80/70/50/40 free
-> 128/128/64/64/64/32/32 allocated).

Power-of-two chunks keep the early (long-distance) steps of recursive
doubling/halving algorithms *intra-switch*, cutting inter-switch
traffic. Whatever the power-of-two sweep could not place is satisfied
in a second pass over the leaves in reverse order, using their leftover
free nodes.

Compute-intensive jobs are packed into the *fullest* leaves first
(ascending free count) with no power-of-two constraint, preserving
large free blocks for communication-intensive work.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..cluster.job import Job
from ..cluster.state import ClusterState
from .._perfflags import is_legacy
from .._validation import floor_power_of_two
from ..topology.tree import SwitchInfo
from .base import (
    Allocator,
    AllocationError,
    find_lowest_level_switch,
    gather_nodes,
    leaves_below,
    ordered_takes,
)

__all__ = ["BalancedAllocator", "balanced_split", "balanced_split_reference"]

#: sentinel chunk exponent for empty leaves — larger than any real free
#: count's floor-log2, so it never shrinks the running chunk minimum.
_EMPTY_LEAF_EXP = 63


def balanced_split_reference(free_counts: np.ndarray, n_nodes: int) -> np.ndarray:
    """Sweep-loop form of Algorithm 2 lines 8-28 (the vectorized oracle).

    The first sweep walks the leaves halving the chunk ``S`` until it
    fits; the remainder sweep walks the leaves in reverse, consuming
    leftover free nodes.
    """
    free = np.asarray(free_counts, dtype=np.int64).copy()
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    if free.sum() < n_nodes:
        raise ValueError(f"free counts sum to {free.sum()} < request {n_nodes}")
    taken = np.zeros_like(free)
    # S starts at the request, rounded down to a power of two for the
    # rare non-power-of-two request (>= 90% of log jobs are powers of two).
    chunk = floor_power_of_two(int(n_nodes))
    remaining = int(n_nodes)
    for i in range(free.size):
        if remaining == 0:
            break
        if free[i] == 0:
            continue
        while chunk > free[i]:
            chunk //= 2
        take = min(chunk, remaining)
        taken[i] += take
        free[i] -= take
        remaining -= take
    if remaining > 0:
        for i in range(free.size - 1, -1, -1):
            take = min(int(free[i]), remaining)
            taken[i] += take
            free[i] -= take
            remaining -= take
            if remaining == 0:
                break
    if remaining > 0:  # unreachable given the sum precondition
        raise ValueError("balanced_split failed to place all nodes")
    return taken


def balanced_split(free_counts: np.ndarray, n_nodes: int) -> np.ndarray:
    """Pure power-of-two split logic (lines 8-28 of Algorithm 2).

    ``free_counts`` must already be in the traversal order (descending
    free nodes for the paper's comm-intensive branch). Returns the nodes
    taken per leaf, same order. This is factored out of the allocator so
    the Table 2 example and property tests can exercise it directly.

    Vectorized equivalent of :func:`balanced_split_reference`. The chunk
    trajectory is a running minimum — ``S`` never grows back and on each
    non-empty leaf it halves down to the largest power of two that fits,
    so ``S_i = min(S_{i-1}, 2^floor(log2(free_i)))`` — computable with
    one ``minimum.accumulate`` over the floor-log2 exponents (empty
    leaves keep a sentinel exponent so they leave ``S`` untouched,
    mirroring the loop's ``continue``). Both sweeps then reduce to the
    prefix-sum take formula of :func:`ordered_takes`: greedy fill against
    capacity ``S_i`` forward, leftover free nodes in reverse.
    """
    if is_legacy():
        return balanced_split_reference(free_counts, n_nodes)
    free = np.asarray(free_counts, dtype=np.int64)
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    if free.sum() < n_nodes:
        raise ValueError(f"free counts sum to {free.sum()} < request {n_nodes}")
    # floor(log2(free)) via frexp — exact for integers (log2 rounds).
    exps = np.where(
        free > 0, np.frexp(free.astype(np.float64))[1] - 1, _EMPTY_LEAF_EXP
    )
    start_exp = floor_power_of_two(int(n_nodes)).bit_length() - 1
    chunk_exp = np.minimum.accumulate(np.minimum(exps, start_exp))
    capacity = np.where(free > 0, np.int64(1) << chunk_exp, 0)
    taken = ordered_takes(capacity, n_nodes)
    remaining = int(n_nodes - taken.sum())
    if remaining > 0:
        leftover = free - taken
        taken = taken + ordered_takes(leftover[::-1], remaining)[::-1]
    return taken


class BalancedAllocator(Allocator):
    """Power-of-two-per-switch placement for communication-intensive jobs."""

    name = "balanced"

    def select(self, state: ClusterState, job: Job) -> np.ndarray:
        """Place ``job`` in power-of-two chunks per switch (Alg. 2)."""
        switch = find_lowest_level_switch(state, job.nodes)
        if switch is None:
            raise AllocationError(
                f"no switch with {job.nodes} free nodes for job {job.job_id}"
            )
        return self.select_under(state, job, switch)

    def select_under(self, state: ClusterState, job: Job, switch: SwitchInfo) -> np.ndarray:
        """Algorithm 2 body below an already-chosen switch.

        Split from :meth:`select` so the adaptive allocator can run the
        lowest-level switch search once and reuse it for both candidates.
        """
        if switch.is_leaf:
            return state.free_nodes_on_leaf(switch.leaf_lo, job.nodes)

        leaves = leaves_below(state, switch)
        free = state.leaf_free[leaves]
        if job.is_comm_intensive:
            # descending free count; leaf index breaks ties
            order = np.lexsort((leaves, -free))
            ordered = leaves[order]
            taken = balanced_split(free[order], job.nodes)
            takes: List[Tuple[int, int]] = [
                (int(leaf), int(t)) for leaf, t in zip(ordered, taken) if t > 0
            ]
            return gather_nodes(state, takes)

        # compute-intensive: pack fullest leaves first, no constraint
        order = np.lexsort((leaves, free))
        if is_legacy():
            remaining = job.nodes
            takes = []
            for leaf in leaves[order]:
                take = min(int(state.leaf_free[leaf]), remaining)
                takes.append((int(leaf), take))
                remaining -= take
                if remaining == 0:
                    break
            return gather_nodes(state, takes)
        ordered = leaves[order]
        counts = ordered_takes(free[order], job.nodes)
        used = counts > 0
        return gather_nodes(
            state, list(zip(ordered[used].tolist(), counts[used].tolist()))
        )
