"""I/O-aware allocation — paper §7 future work, implemented.

The conclusion proposes "I/O-aware scheduling algorithms that consider
I/O patterns in addition to communication patterns". With
:class:`~repro.cluster.job.JobKind.IO` jobs tracked per leaf switch
(``L_io``, maintained by :class:`~repro.cluster.state.ClusterState`
exactly like ``L_comm``), the natural generalization of Algorithm 1
scores each leaf by a *weighted* interference ratio::

    score(L) = w_comm * (L_comm/L_busy) + w_io * (L_io/L_busy)
               + L_busy/L_nodes

A communication-intensive job weights communication load heavily and
I/O load lightly (they still share switch buffers); an I/O-intensive
job does the reverse — I/O-heavy neighbours compete for the same
storage paths through the leaf switch. Compute jobs fill the
*highest*-scored switches, preserving quiet ones, as in the paper.

Because the paper only *proposes* this direction (it appears in no
result table), the allocator is excluded from ``PAPER_ALLOCATORS``;
it is catalogued in ``docs/allocators.md`` under the *extension*
family with its ``cross_weight`` tunable.
"""

from __future__ import annotations

import numpy as np

from .._perfflags import is_legacy
from ..cluster.job import Job, JobKind
from ..cluster.state import ClusterState
from .base import (
    Allocator,
    AllocationError,
    find_lowest_level_switch,
    gather_nodes,
    leaves_below,
    ordered_takes,
)

__all__ = ["IOAwareAllocator"]


class IOAwareAllocator(Allocator):
    """Greedy allocation over a combined communication + I/O score.

    Parameters
    ----------
    cross_weight:
        How much the *other* interference type counts (0 = ignore it,
        1 = as important as the job's own type). Default 0.25.
    """

    name = "io-aware"

    def __init__(self, cross_weight: float = 0.25) -> None:
        if not 0.0 <= cross_weight <= 1.0:
            raise ValueError(f"cross_weight must be in [0, 1], got {cross_weight}")
        self.cross_weight = float(cross_weight)

    def _scores(self, state: ClusterState, leaves: np.ndarray, kind: JobKind) -> np.ndarray:
        busy = (state.leaf_busy if is_legacy() else state.leaf_busy_cached())[leaves]
        sizes = state.topology.leaf_sizes[leaves]
        comm = state.leaf_comm[leaves]
        io = state.leaf_io[leaves]
        comm_share = np.divide(
            comm, busy, out=np.zeros(len(leaves), dtype=np.float64), where=busy > 0
        )
        io_share = np.divide(
            io, busy, out=np.zeros(len(leaves), dtype=np.float64), where=busy > 0
        )
        if kind is JobKind.IO:
            w_comm, w_io = self.cross_weight, 1.0
        else:  # COMM jobs and the compute branch both lead with comm load
            w_comm, w_io = 1.0, self.cross_weight
        return w_comm * comm_share + w_io * io_share + busy / sizes

    def select(self, state: ClusterState, job: Job) -> np.ndarray:
        """Fill leaves by combined communication + I/O score (§7)."""
        switch = find_lowest_level_switch(state, job.nodes)
        if switch is None:
            raise AllocationError(
                f"no switch with {job.nodes} free nodes for job {job.job_id}"
            )
        if switch.is_leaf:
            return state.free_nodes_on_leaf(switch.leaf_lo, job.nodes)

        leaves = leaves_below(state, switch)
        scores = self._scores(state, leaves, job.kind)
        free = state.leaf_free[leaves]
        if job.kind is JobKind.COMPUTE:
            order = np.lexsort((leaves, free, -scores))
        else:
            order = np.lexsort((leaves, -free, scores))
        if is_legacy():
            remaining = job.nodes
            takes = []
            for leaf in leaves[order]:
                take = min(int(state.leaf_free[leaf]), remaining)
                takes.append((int(leaf), take))
                remaining -= take
                if remaining == 0:
                    break
            return gather_nodes(state, takes)
        ordered = leaves[order]
        counts = ordered_takes(free[order], job.nodes)
        used = counts > 0
        return gather_nodes(
            state, list(zip(ordered[used].tolist(), counts[used].tolist()))
        )
