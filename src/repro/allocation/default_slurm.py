"""SLURM's default topology-aware allocation (paper §3.1).

The ``topology/tree`` + ``select/linear`` combination: find the lowest-
level switch with enough free nodes, then fill its leaf switches in
*best-fit* order — leaves with the fewest free nodes first — to limit
resource fragmentation. Job kind is ignored; this is the baseline every
experiment compares against.
"""

from __future__ import annotations

import numpy as np

from .._perfflags import is_legacy
from ..cluster.job import Job
from ..cluster.state import ClusterState
from .base import (
    Allocator,
    AllocationError,
    find_lowest_level_switch,
    gather_nodes,
    leaves_below,
    ordered_takes,
)

__all__ = ["DefaultSlurmAllocator"]


class DefaultSlurmAllocator(Allocator):
    """Best-fit leaf filling under the lowest feasible switch."""

    name = "default"

    def select(self, state: ClusterState, job: Job) -> np.ndarray:
        """Best-fit-fill leaves under the lowest feasible switch."""
        switch = find_lowest_level_switch(state, job.nodes)
        if switch is None:
            raise AllocationError(
                f"no switch with {job.nodes} free nodes for job {job.job_id}"
            )
        if switch.is_leaf:
            return state.free_nodes_on_leaf(switch.leaf_lo, job.nodes)

        leaves = leaves_below(state, switch)
        free = state.leaf_free[leaves]
        # best-fit: fewest free nodes first, leaf index breaks ties
        order = np.lexsort((leaves, free))
        if is_legacy():
            remaining = job.nodes
            takes = []
            for leaf in leaves[order]:
                take = min(int(state.leaf_free[leaf]), remaining)
                takes.append((int(leaf), take))
                remaining -= take
                if remaining == 0:
                    break
            return gather_nodes(state, takes)
        ordered = leaves[order]
        counts = ordered_takes(free[order], job.nodes)
        used = counts > 0
        return gather_nodes(
            state, list(zip(ordered[used].tolist(), counts[used].tolist()))
        )
