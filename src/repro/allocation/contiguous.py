"""MC-style bounding-box contiguity allocation.

Bender et al. ("Communication-Aware Processor Allocation for
Supercomputers", arXiv cs/0407058) show that picking the placement that
minimizes the *average pairwise distance* of the allocated processors —
their MC ("Manhattan median/Cluster") family of bounding-box heuristics
— approximates the optimal communication-aware allocation within small
constant factors. This allocator projects that idea onto the fat-tree's
leaf line: leaf switches are points on a 1-D grid (inter-leaf traffic
always crosses the common spine, so leaf-index distance is a faithful
proxy for the tree distance the Eq. 2–6 model prices).

For every candidate *center* leaf, nodes are drawn from leaves in
ascending ``|leaf - center|`` shells (ties to the lower index, matching
MC's left-biased scan); the candidate whose filled shells minimize

    sum(take_i * |leaf_i - center|) + span_weight * (leaf span)

wins, with remaining ties going to the lower center index. The leaf
span term is the 1-D bounding box of the placement — MC1x1's objective.
Nodes are materialized in ascending leaf order, so ranks form one
contiguous block across the winning leaves.
"""

from __future__ import annotations

import numpy as np

from ..cluster.job import Job
from ..cluster.state import ClusterState
from .base import (
    Allocator,
    AllocationError,
    find_lowest_level_switch,
    gather_nodes,
    leaves_below,
)

__all__ = ["ContiguousAllocator"]


class ContiguousAllocator(Allocator):
    """Minimal bounding-box placement around the best center leaf.

    Parameters
    ----------
    span_weight:
        Weight of the leaf-span (bounding-box width) term relative to
        the distance-weighted take sum. ``0`` ranks by pure Manhattan
        distance; larger values prefer tighter boxes even when a wider
        one has slightly cheaper shells.
    """

    name = "mc"

    def __init__(self, span_weight: float = 0.5) -> None:
        if span_weight < 0:
            raise ValueError(f"span_weight must be >= 0, got {span_weight}")
        self.span_weight = float(span_weight)

    def select(self, state: ClusterState, job: Job) -> np.ndarray:
        """Scan every center leaf; fill distance shells; keep the best box."""
        switch = find_lowest_level_switch(state, job.nodes)
        if switch is None:
            raise AllocationError(
                f"no switch with {job.nodes} free nodes for job {job.job_id}"
            )
        if switch.is_leaf:
            return state.free_nodes_on_leaf(switch.leaf_lo, job.nodes)

        leaves = leaves_below(state, switch)
        free = state.leaf_free[leaves].astype(np.int64)
        if leaves.size == 1:
            return state.free_nodes_on_leaf(int(leaves[0]), job.nodes)

        # distance matrix: row c = |leaf - center_c| for every candidate
        # center; the composite key (distance, leaf index) reproduces
        # MC's ascending-shell, left-biased scan as a single argsort
        dist = np.abs(leaves[None, :] - leaves[:, None])
        key = dist * (int(leaves[-1]) + 2) + leaves[None, :]
        shell_order = np.argsort(key, axis=1, kind="stable")
        free_sorted = np.take_along_axis(
            np.broadcast_to(free, dist.shape), shell_order, axis=1
        )
        dist_sorted = np.take_along_axis(dist, shell_order, axis=1)
        before = np.cumsum(free_sorted, axis=1) - free_sorted
        takes = np.clip(job.nodes - before, 0, free_sorted)

        weighted = (takes * dist_sorted).sum(axis=1)
        used = takes > 0
        leaf_sorted = np.take_along_axis(
            np.broadcast_to(leaves, dist.shape), shell_order, axis=1
        )
        lo = np.where(used, leaf_sorted, np.iinfo(np.int64).max).min(axis=1)
        hi = np.where(used, leaf_sorted, -1).max(axis=1)
        score = weighted + self.span_weight * (hi - lo)
        center_row = int(np.argmin(score))  # first minimum = lowest center index

        row_used = used[center_row]
        chosen = leaf_sorted[center_row][row_used]
        chosen_takes = takes[center_row][row_used]
        # materialize in ascending leaf order: one contiguous rank block
        # across the winning box, with the shell fill's exact counts
        ascending = np.argsort(chosen)
        return gather_nodes(
            state,
            list(
                zip(
                    chosen[ascending].tolist(),
                    chosen_takes[ascending].tolist(),
                )
            ),
        )
