"""Adaptive allocation — paper §4.3.

Runs greedy and balanced, prices both candidate allocations with the
effective-hops cost model (Eqs. 2-6), and keeps the cheaper one for a
communication-intensive job (the *costlier* one for a compute-intensive
job, preserving the good placement for future communication-intensive
work). Ties go to balanced, which the paper finds stronger on average.

Costs are evaluated on a hypothetical view that includes the candidate
allocation itself, matching the paper's worked example where a job's own
nodes count toward switch contention. The view is a cheap
:meth:`~repro.cluster.state.ClusterState.comm_overlay` (per-leaf
counters only), not a full state copy — adaptive prices two candidates
per job start, which made the O(n_nodes) copies a hot path of their own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .. import perf
from .._perfflags import is_legacy
from ..cluster.job import CommComponent, Job, JobKind
from ..cluster.state import ClusterState
from ..cost.model import CostModel
from ..patterns.base import CommunicationPattern
from ..patterns.recursive_doubling import RecursiveDoubling
from .balanced import BalancedAllocator
from .base import Allocator, AllocationError, find_lowest_level_switch
from .greedy import GreedyAllocator

__all__ = ["AdaptiveAllocator", "AdaptiveDecision"]


@dataclass(frozen=True)
class AdaptiveDecision:
    """Diagnostics of one adaptive arbitration (exposed for tests/ablation)."""

    chosen: str  # "greedy" or "balanced"
    greedy_cost: float
    balanced_cost: float
    greedy_nodes: np.ndarray
    balanced_nodes: np.ndarray

    @property
    def nodes(self) -> np.ndarray:
        """Node ids of the placement that won the arbitration."""
        return self.greedy_nodes if self.chosen == "greedy" else self.balanced_nodes


class AdaptiveAllocator(Allocator):
    """Cost-model arbitration between greedy and balanced placements.

    Parameters
    ----------
    cost_model:
        Eq. 6 configuration; defaults to the msize-weighted model.
    probe_pattern:
        Pattern used to price *compute-intensive* jobs, which carry no
        communication components of their own (the paper prices them
        too, picking the worse placement). Defaults to recursive
        doubling.
    """

    name = "adaptive"

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        probe_pattern: Optional[CommunicationPattern] = None,
    ) -> None:
        self.cost_model = cost_model or CostModel()
        self.probe_pattern = probe_pattern or RecursiveDoubling()
        self._greedy = GreedyAllocator()
        self._balanced = BalancedAllocator()
        #: decision of the most recent :meth:`select` call (diagnostics)
        self.last_decision: Optional[AdaptiveDecision] = None

    def _candidate_cost(self, state: ClusterState, job: Job, nodes: np.ndarray) -> float:
        """Fraction-weighted Eq. 6 cost of ``nodes`` with the job applied."""
        with perf.timer("adaptive.pricing"):
            view = state.comm_overlay(nodes, job.kind, validate=is_legacy())
            components = job.comm or (CommComponent(self.probe_pattern, 1.0),)
            return sum(
                comp.fraction * self.cost_model.allocation_cost(view, nodes, comp.pattern)
                for comp in components
            )

    def decide(self, state: ClusterState, job: Job) -> AdaptiveDecision:
        """Run both allocators and price their placements.

        The lowest-level switch search (identical for both candidates:
        it only reads subtree free counts) runs once and is shared, and
        both candidates rank leaves off the same version-cached Eq. 1
        vector — together with the overlay-based pricing this is what
        closed the ~9x adaptive-vs-greedy gap BENCH_PR1 exposed.
        """
        if is_legacy():
            greedy_nodes = self._greedy.allocate(state, job)
            balanced_nodes = self._balanced.allocate(state, job)
        else:
            self._greedy.precheck(state, job)
            switch = find_lowest_level_switch(state, job.nodes)
            if switch is None:
                raise AllocationError(
                    f"no switch with {job.nodes} free nodes for job {job.job_id}"
                )
            greedy_nodes = self._greedy.postcheck(
                job, self._greedy.select_under(state, job, switch)
            )
            balanced_nodes = self._balanced.postcheck(
                job, self._balanced.select_under(state, job, switch)
            )
        greedy_cost = self._candidate_cost(state, job, greedy_nodes)
        if not is_legacy() and np.array_equal(greedy_nodes, balanced_nodes):
            # identical candidate -> identical cost; ties always go to
            # balanced, so the arbitration outcome is already decided
            # (common for small jobs that fit inside one leaf)
            balanced_cost = greedy_cost
        else:
            balanced_cost = self._candidate_cost(state, job, balanced_nodes)
        if job.kind is JobKind.COMM:
            chosen = "greedy" if greedy_cost < balanced_cost else "balanced"
        else:
            chosen = "greedy" if greedy_cost > balanced_cost else "balanced"
        return AdaptiveDecision(
            chosen=chosen,
            greedy_cost=greedy_cost,
            balanced_cost=balanced_cost,
            greedy_nodes=greedy_nodes,
            balanced_nodes=balanced_nodes,
        )

    def select(self, state: ClusterState, job: Job) -> np.ndarray:
        """Return the cheaper of greedy's and balanced's placements (§4.3)."""
        decision = self.decide(state, job)
        self.last_decision = decision
        return decision.nodes
