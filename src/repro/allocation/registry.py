"""Self-describing allocator registry used by experiments and the CLI.

Every allocator is registered as an :class:`AllocatorInfo` carrying its
name, family, paper citation, and tunable parameters, so the CLI, the
tournament harness, and the docs catalogue (``docs/allocators.md``,
kept in sync by ``tests/test_docs.py``) all read from one source of
truth. New allocators are one class + one :func:`register_allocator`
call away — see the authoring guide in ``docs/allocators.md``.

Allocators can be constructed from *spec strings* that carry parameter
overrides, e.g. ``"sa:iters=500,seed=1"`` — the syntax accepted by
``--allocators`` everywhere in the CLI. Parameters are validated
against the declared :class:`AllocatorParam` list: an unknown allocator
raises ``KeyError``, an unknown or malformed parameter ``ValueError``
(both mapped to exit code 2 by the CLI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple, Union

from .adaptive import AdaptiveAllocator
from .annealing import SimulatedAnnealingAllocator
from .balanced import BalancedAllocator
from .base import Allocator
from .contiguous import ContiguousAllocator
from .default_slurm import DefaultSlurmAllocator
from .fault_aware import FaultAwareAllocator
from .greedy import GreedyAllocator
from .io_aware import IOAwareAllocator
from .linear import LinearAllocator
from .spread import SpreadAllocator

__all__ = [
    "AllocatorParam",
    "AllocatorInfo",
    "ALLOCATOR_REGISTRY",
    "ALLOCATOR_FACTORIES",
    "register_allocator",
    "parse_allocator_spec",
    "get_allocator",
    "allocator_names",
    "allocator_catalogue",
    "catalogue_markdown",
    "PAPER_ALLOCATORS",
]

#: the source paper every ``family="paper"`` allocator reproduces
_SOURCE_PAPER = "Mishra et al., ICPP-W 2020 (the source paper)"


@dataclass(frozen=True)
class AllocatorParam:
    """One tunable constructor parameter of a registered allocator.

    ``kind`` names the coercion applied to spec-string values:
    ``"int"`` or ``"float"``. ``default`` is documentation — the
    factory's own keyword default stays authoritative.
    """

    name: str
    kind: str
    default: object
    doc: str

    def __post_init__(self) -> None:
        if self.kind not in ("int", "float"):
            raise ValueError(f"param kind must be 'int' or 'float', got {self.kind!r}")

    def coerce(self, raw: str) -> object:
        """Parse a spec-string value; raises ``ValueError`` with context."""
        cast = int if self.kind == "int" else float
        try:
            return cast(raw)
        except ValueError:
            raise ValueError(
                f"parameter {self.name!r} expects {self.kind}, got {raw!r}"
            ) from None


@dataclass(frozen=True)
class AllocatorInfo:
    """Registry entry: how to build an allocator and what it is.

    Attributes
    ----------
    name:
        Registry key, the string accepted everywhere an allocator is
        named (``--allocators``, :class:`ExperimentConfig`).
    factory:
        Zero-or-keyword-argument callable returning a fresh
        :class:`~repro.allocation.base.Allocator`.
    family:
        Coarse grouping for reports: ``paper`` / ``baseline`` /
        ``extension`` / ``search`` / ``contiguity`` / ``fault``.
    summary:
        One line for the catalogue table.
    citation:
        Where the algorithm comes from (paper section or arXiv id).
    params:
        Declared tunables, settable via ``name:key=value`` specs.
    """

    name: str
    factory: Callable[..., Allocator]
    family: str
    summary: str
    citation: str
    params: Tuple[AllocatorParam, ...] = field(default=())

    def param(self, key: str) -> AllocatorParam:
        """Declared parameter ``key``; raises ``ValueError`` if unknown."""
        for p in self.params:
            if p.name == key:
                return p
        known = [p.name for p in self.params] or ["<none>"]
        raise ValueError(
            f"allocator {self.name!r} has no parameter {key!r}; "
            f"tunable: {known}"
        )


#: name -> full registry entry (the source of truth)
ALLOCATOR_REGISTRY: Dict[str, AllocatorInfo] = {}

#: name -> factory — the legacy surface, kept in sync with the registry
ALLOCATOR_FACTORIES: Dict[str, Callable[..., Allocator]] = {}


def register_allocator(info: AllocatorInfo) -> AllocatorInfo:
    """Add ``info`` to the registry; raises on a duplicate name.

    This is the extension point the authoring guide
    (``docs/allocators.md``) documents: a third-party allocator becomes
    visible to ``get_allocator``, the CLI, and the tournament harness
    through this one call.
    """
    if info.name in ALLOCATOR_REGISTRY:
        raise ValueError(f"allocator {info.name!r} is already registered")
    ALLOCATOR_REGISTRY[info.name] = info
    ALLOCATOR_FACTORIES[info.name] = info.factory
    return info


for _info in (
    AllocatorInfo(
        "default",
        DefaultSlurmAllocator,
        family="paper",
        summary="SLURM topology/tree baseline: best-fit leaf filling",
        citation=_SOURCE_PAPER + ", §3.1",
    ),
    AllocatorInfo(
        "greedy",
        GreedyAllocator,
        family="paper",
        summary="Algorithm 1: fill leaves in Eq. 1 contention order",
        citation=_SOURCE_PAPER + ", §4.1",
    ),
    AllocatorInfo(
        "balanced",
        BalancedAllocator,
        family="paper",
        summary="Algorithm 2: power-of-two chunks per leaf switch",
        citation=_SOURCE_PAPER + ", §4.2",
    ),
    AllocatorInfo(
        "adaptive",
        AdaptiveAllocator,
        family="paper",
        summary="Eq. 6 arbitration between greedy and balanced",
        citation=_SOURCE_PAPER + ", §4.3",
    ),
    AllocatorInfo(
        "linear",
        LinearAllocator,
        family="baseline",
        summary="topology-blind select/linear ablation (lowest node ids)",
        citation="SLURM select/linear plugin (ablation, not in the paper)",
    ),
    AllocatorInfo(
        "spread",
        SpreadAllocator,
        family="baseline",
        summary="round-robin stripe across leaves (adversarial baseline)",
        citation="SLURM --distribution=cyclic analogue (not in the paper)",
    ),
    AllocatorInfo(
        "io-aware",
        IOAwareAllocator,
        family="extension",
        summary="greedy over a weighted communication + I/O score",
        citation=_SOURCE_PAPER + ", §7 future work, implemented",
        params=(
            AllocatorParam(
                "cross_weight", "float", 0.25,
                "weight of the job's non-dominant interference type",
            ),
        ),
    ),
    AllocatorInfo(
        "sa",
        SimulatedAnnealingAllocator,
        family="search",
        summary="seeded simulated annealing over leaf takes, Eq. 6 objective",
        citation="Lan et al., arXiv 2302.03517 (SA without the neural proposal)",
        params=(
            AllocatorParam("iters", "int", 120, "annealing proposals per job"),
            AllocatorParam("seed", "int", 0, "base seed of the proposal RNG"),
            AllocatorParam("t0", "float", 0.08, "initial temperature, as a fraction of the seed cost"),
            AllocatorParam("alpha", "float", 0.95, "geometric cooling factor per proposal"),
        ),
    ),
    AllocatorInfo(
        "mc",
        ContiguousAllocator,
        family="contiguity",
        summary="MC-style bounding-box placement around the best center leaf",
        citation="Bender et al., arXiv cs/0407058 (MC1x1 on the leaf line)",
        params=(
            AllocatorParam(
                "span_weight", "float", 0.5,
                "tie-break weight of the leaf-span (bounding box) term",
            ),
        ),
    ),
    AllocatorInfo(
        "fault-aware",
        FaultAwareAllocator,
        family="fault",
        summary="greedy biased away from failure-correlated leaves",
        citation="Vardas et al., arXiv 2012.14757 (fault-aware placement)",
        params=(
            AllocatorParam(
                "bias", "float", 1.0,
                "weight of the per-leaf failure-history share in the score",
            ),
        ),
    ),
):
    register_allocator(_info)
del _info

#: The four algorithms compared in every paper table, in paper column order.
PAPER_ALLOCATORS = ("default", "greedy", "balanced", "adaptive")


def parse_allocator_spec(spec: str) -> Tuple[str, Dict[str, str]]:
    """Split ``"name:key=value,key=value"`` into (name, raw params).

    The name is not resolved here (that is :func:`get_allocator`'s
    job), but the parameter syntax is validated: every item after the
    colon must be ``key=value``. Raises ``ValueError`` on malformed
    specs.
    """
    name, sep, rest = spec.partition(":")
    name = name.strip()
    if not name:
        raise ValueError(f"allocator spec {spec!r} has an empty name")
    params: Dict[str, str] = {}
    if sep:
        if not rest:
            raise ValueError(
                f"allocator spec {spec!r} has a trailing ':' with no parameters"
            )
        for item in rest.split(","):
            key, eq, value = item.partition("=")
            key = key.strip()
            if not eq or not key or not value.strip():
                raise ValueError(
                    f"malformed parameter {item!r} in allocator spec {spec!r} "
                    "(expected name:key=value[,key=value...])"
                )
            if key in params:
                raise ValueError(
                    f"duplicate parameter {key!r} in allocator spec {spec!r}"
                )
            params[key] = value.strip()
    return name, params


def get_allocator(spec: Union[str, Allocator]) -> Allocator:
    """Instantiate the allocator named by ``spec``.

    ``spec`` is a registry name (``"balanced"``) or a parameterized
    spec string (``"sa:iters=500"``). Already-constructed allocators
    pass through unchanged. Raises ``KeyError`` for an unknown name and
    ``ValueError`` for an unknown/malformed parameter.
    """
    if isinstance(spec, Allocator):
        return spec
    name, raw_params = parse_allocator_spec(spec)
    try:
        info = ALLOCATOR_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown allocator {name!r}; known: {sorted(ALLOCATOR_REGISTRY)}"
        ) from None
    kwargs = {key: info.param(key).coerce(raw) for key, raw in raw_params.items()}
    return info.factory(**kwargs)


def allocator_names() -> List[str]:
    """Sorted registry names."""
    return sorted(ALLOCATOR_REGISTRY)


def allocator_catalogue() -> List[AllocatorInfo]:
    """All registry entries, paper allocators first, then by name.

    The order of the catalogue table in ``docs/allocators.md`` — the
    docs test regenerates this list and diffs the table against it.
    """
    paper = [ALLOCATOR_REGISTRY[name] for name in PAPER_ALLOCATORS]
    rest = [
        ALLOCATOR_REGISTRY[name]
        for name in sorted(ALLOCATOR_REGISTRY)
        if name not in PAPER_ALLOCATORS
    ]
    return paper + rest


def catalogue_markdown() -> str:
    """The ``docs/allocators.md`` catalogue table, straight from the registry.

    ``tests/test_docs.py`` regenerates this and diffs it against the
    table committed in the guide, so the docs cannot drift from
    :data:`ALLOCATOR_REGISTRY` without failing CI. Regenerate with::

        PYTHONPATH=src python -c \\
            "from repro.allocation import catalogue_markdown; print(catalogue_markdown(), end='')"
    """
    lines = [
        "| name | family | tunable params | summary | citation |",
        "|---|---|---|---|---|",
    ]
    for info in allocator_catalogue():
        params = (
            ", ".join(f"`{p.name}={p.default}`" for p in info.params)
            if info.params
            else "—"
        )
        lines.append(
            f"| `{info.name}` | {info.family} | {params} "
            f"| {info.summary} | {info.citation} |"
        )
    return "\n".join(lines) + "\n"
