"""Name -> allocator registry used by experiments and the CLI."""

from __future__ import annotations

from typing import Callable, Dict, List

from .adaptive import AdaptiveAllocator
from .balanced import BalancedAllocator
from .base import Allocator
from .default_slurm import DefaultSlurmAllocator
from .greedy import GreedyAllocator
from .io_aware import IOAwareAllocator
from .linear import LinearAllocator
from .spread import SpreadAllocator

__all__ = ["ALLOCATOR_FACTORIES", "get_allocator", "allocator_names", "PAPER_ALLOCATORS"]

ALLOCATOR_FACTORIES: Dict[str, Callable[[], Allocator]] = {
    "default": DefaultSlurmAllocator,
    "greedy": GreedyAllocator,
    "balanced": BalancedAllocator,
    "adaptive": AdaptiveAllocator,
    "linear": LinearAllocator,
    "io-aware": IOAwareAllocator,
    "spread": SpreadAllocator,
}

#: The four algorithms compared in every paper table, in paper column order.
PAPER_ALLOCATORS = ("default", "greedy", "balanced", "adaptive")


def get_allocator(name: str) -> Allocator:
    """Instantiate the allocator registered under ``name``."""
    try:
        factory = ALLOCATOR_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown allocator {name!r}; known: {sorted(ALLOCATOR_FACTORIES)}"
        ) from None
    return factory()


def allocator_names() -> List[str]:
    """Sorted registry names."""
    return sorted(ALLOCATOR_FACTORIES)
