"""Round-robin spread allocation (baseline; cf. SLURM ``--distribution``).

Schedulers commonly offer a *spread* placement that stripes a job
across as many switches as possible — good for I/O parallelism and
memory-bandwidth balance, bad for collectives (every pair crosses a
switch). Implemented here as the adversarial counterpart of the
balanced allocator: it maximizes switch-spread instead of minimizing
it, which makes it a sharp baseline for showing *why* the paper's
power-of-two blocking matters. Not in the paper's comparison, so it is
excluded from ``PAPER_ALLOCATORS``; catalogued in ``docs/allocators.md``
under the *baseline* family.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .._perfflags import is_legacy
from ..cluster.job import Job
from ..cluster.state import ClusterState
from .base import Allocator, AllocationError, find_lowest_level_switch, gather_nodes, leaves_below

__all__ = ["SpreadAllocator"]


class SpreadAllocator(Allocator):
    """Stripe the request round-robin over the leaf switches."""

    name = "spread"

    def select(self, state: ClusterState, job: Job) -> np.ndarray:
        """Stripe ``job`` round-robin across leaves under the lowest feasible switch."""
        switch = find_lowest_level_switch(state, job.nodes)
        if switch is None:
            raise AllocationError(
                f"no switch with {job.nodes} free nodes for job {job.job_id}"
            )
        if switch.is_leaf:
            return state.free_nodes_on_leaf(switch.leaf_lo, job.nodes)

        leaves = leaves_below(state, switch)
        free = state.leaf_free[leaves].copy()
        # round-robin: one node per leaf per sweep, most-free leaves first
        order = np.lexsort((leaves, -free))
        ordered = leaves[order]
        remaining_free = free[order]
        counts = self._stripe_counts(remaining_free, job.nodes)
        takes: List[Tuple[int, int]] = [
            (int(leaf), int(c)) for leaf, c in zip(ordered, counts) if c > 0
        ]
        return gather_nodes(state, takes)

    @staticmethod
    def _stripe_counts(remaining_free: np.ndarray, n_nodes: int) -> np.ndarray:
        """Per-leaf counts of the round-robin stripe, in traversal order.

        The sweep loop gives every leaf at most one node per pass, so
        after ``s`` complete sweeps leaf ``i`` holds ``min(free_i, s)``
        nodes. Closed form: binary-search the largest ``s`` whose total
        still fits the request, then hand the leftover out one node each
        to the first eligible leaves of sweep ``s + 1`` — exactly where
        the loop would have stopped mid-sweep.
        """
        if is_legacy():
            counts = np.zeros(len(remaining_free), dtype=np.int64)
            remaining = n_nodes
            while remaining > 0:
                progressed = False
                for i in range(len(remaining_free)):
                    if remaining == 0:
                        break
                    if counts[i] < remaining_free[i]:
                        counts[i] += 1
                        remaining -= 1
                        progressed = True
                if not progressed:  # pragma: no cover - guarded by precondition
                    raise AllocationError("spread failed to place all nodes")
            return counts
        if remaining_free.sum() < n_nodes:  # pragma: no cover - precondition
            raise AllocationError("spread failed to place all nodes")
        lo, hi = 0, int(remaining_free.max(initial=0))
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if int(np.minimum(remaining_free, mid).sum()) <= n_nodes:
                lo = mid
            else:
                hi = mid - 1
        counts = np.minimum(remaining_free, lo).astype(np.int64)
        leftover = n_nodes - int(counts.sum())
        if leftover > 0:
            eligible = np.flatnonzero(remaining_free > lo)[:leftover]
            counts[eligible] += 1
        return counts
