"""Simulated-annealing allocation over leaf assignments.

A search-based allocator in the spirit of Lan et al. (arXiv
2302.03517), who anneal topology-aware job placements on a production
cluster (their neural proposal distribution is replaced here by simple
power-of-two take moves, keeping the allocator dependency-free and
deterministic). The state space is the per-leaf *take vector* under the
lowest feasible switch — how many nodes the job draws from each leaf —
seeded from the greedy (Algorithm 1) placement and perturbed by moving
chunks between leaves while annealing the Eq. 6 effective-hops cost.

Design constraints honoured:

* **Deterministic:** the proposal RNG is a pure function of the
  configured ``seed`` and the job id, so identical (state, job) inputs
  always produce identical placements — replays and the property suite
  rely on this.
* **Budget-bounded:** exactly ``iters`` cost evaluations per
  communication-intensive job, no restarts, so 100k-job replays stay
  tractable; compute-intensive jobs skip the search entirely (their
  placement is priced only indirectly by the paper's model) and fall
  back to the greedy fill.
* **Fault-safe for free:** candidate takes are bounded by
  ``state.leaf_free``, which counts only free **and** UP nodes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._perfflags import is_legacy
from ..cluster.job import CommComponent, Job
from ..cluster.state import ClusterState
from ..cost.model import CostModel
from ..patterns.base import CommunicationPattern
from ..patterns.recursive_doubling import RecursiveDoubling
from .base import (
    Allocator,
    AllocationError,
    find_lowest_level_switch,
    gather_nodes,
    leaves_below,
    ordered_takes,
)
from .greedy import GreedyAllocator

__all__ = ["SimulatedAnnealingAllocator"]


class SimulatedAnnealingAllocator(Allocator):
    """Anneal per-leaf takes toward a lower Eq. 6 cost (budget-bounded).

    Parameters
    ----------
    iters:
        Proposal budget per communication-intensive job (cost
        evaluations; the dominant per-job cost knob).
    seed:
        Base seed of the proposal RNG; combined with the job id so each
        job gets an independent but reproducible proposal stream.
    t0:
        Initial temperature as a *fraction of the seed placement's
        cost*, making acceptance behaviour scale-free across topologies.
    alpha:
        Geometric cooling factor applied after every proposal.
    cost_model:
        Eq. 6 configuration; defaults to the msize-weighted model.
    probe_pattern:
        Pattern used to price jobs that carry no communication
        components. Defaults to recursive doubling.
    """

    name = "sa"

    def __init__(
        self,
        iters: int = 120,
        seed: int = 0,
        t0: float = 0.08,
        alpha: float = 0.95,
        cost_model: Optional[CostModel] = None,
        probe_pattern: Optional[CommunicationPattern] = None,
    ) -> None:
        if iters < 0:
            raise ValueError(f"iters must be >= 0, got {iters}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.iters = int(iters)
        self.seed = int(seed)
        self.t0 = float(t0)
        self.alpha = float(alpha)
        self.cost_model = cost_model or CostModel()
        self.probe_pattern = probe_pattern or RecursiveDoubling()
        self._greedy = GreedyAllocator()

    def _cost(self, state: ClusterState, job: Job, nodes: np.ndarray) -> float:
        """Fraction-weighted Eq. 6 cost of ``nodes`` with the job applied."""
        view = state.comm_overlay(nodes, job.kind, validate=is_legacy())
        components = job.comm or (CommComponent(self.probe_pattern, 1.0),)
        return sum(
            comp.fraction * self.cost_model.allocation_cost(view, nodes, comp.pattern)
            for comp in components
        )

    def select(self, state: ClusterState, job: Job) -> np.ndarray:
        """Greedy seed, then anneal take moves under the chosen switch."""
        switch = find_lowest_level_switch(state, job.nodes)
        if switch is None:
            raise AllocationError(
                f"no switch with {job.nodes} free nodes for job {job.job_id}"
            )
        if switch.is_leaf:
            # a single leaf serves the request; nothing to search over
            return state.free_nodes_on_leaf(switch.leaf_lo, job.nodes)
        if not job.is_comm_intensive or self.iters == 0:
            # compute-intensive jobs gain nothing from annealing their
            # own (probe-priced) cost; keep them on the greedy fill
            return self._greedy.select_under(state, job, switch)

        leaves = leaves_below(state, switch)
        free = state.leaf_free[leaves].astype(np.int64)
        if leaves.size <= 1:
            return self._greedy.select_under(state, job, switch)

        # seed takes = greedy's comm-intensive fill along the Eq. 1 order,
        # but *stored* in ascending-leaf order so move indices are stable
        if is_legacy():
            ratio = state.communication_ratio(leaves)
        else:
            ratio = state.communication_ratio_cached()[leaves]
        order = np.lexsort((leaves, -free, ratio))
        seeded = np.zeros(leaves.size, dtype=np.int64)
        seeded[order] = ordered_takes(free[order], job.nodes)

        def materialize(takes: np.ndarray) -> np.ndarray:
            used = takes > 0
            return gather_nodes(
                state, list(zip(leaves[used].tolist(), takes[used].tolist()))
            )

        current = seeded
        current_nodes = materialize(current)
        current_cost = self._cost(state, job, current_nodes)
        best_nodes, best_cost = current_nodes, current_cost

        rng = np.random.default_rng([self.seed, job.job_id])
        temperature = max(self.t0 * max(current_cost, 1e-12), 1e-12)
        headroom = free - current
        for _ in range(self.iters):
            donors = np.flatnonzero(current > 0)
            receivers = np.flatnonzero(headroom > 0)
            if donors.size == 0 or receivers.size == 0:
                break
            donor = int(donors[rng.integers(donors.size)])
            receiver = int(receivers[rng.integers(receivers.size)])
            if donor == receiver:
                temperature *= self.alpha
                continue
            limit = min(int(current[donor]), int(headroom[receiver]))
            # power-of-two move sizes echo the balanced allocator's
            # chunking and let the search jump between coarse splits
            delta = min(int(2 ** rng.integers(0, 6)), limit)
            candidate = current.copy()
            candidate[donor] -= delta
            candidate[receiver] += delta
            candidate_nodes = materialize(candidate)
            candidate_cost = self._cost(state, job, candidate_nodes)
            accept = candidate_cost <= current_cost or (
                rng.random()
                < np.exp((current_cost - candidate_cost) / temperature)
            )
            if accept:
                current, current_nodes, current_cost = (
                    candidate, candidate_nodes, candidate_cost,
                )
                headroom = free - current
                if current_cost < best_cost:
                    best_nodes, best_cost = current_nodes, current_cost
            temperature *= self.alpha
        return best_nodes

    def __repr__(self) -> str:
        return (
            f"SimulatedAnnealingAllocator(iters={self.iters}, seed={self.seed}, "
            f"t0={self.t0}, alpha={self.alpha})"
        )
