"""Fault events: the common currency of the fault subsystem.

A fault trace — generated (:mod:`repro.faults.generator`), parsed from
a file (:mod:`repro.faults.trace`), or hand-built in a test — is a list
of :class:`FaultEvent`: at ``time``, the listed nodes go DOWN or come
back UP. Switch failures are already *resolved* to their descendant
node set by whoever built the event, so downstream consumers (the
scheduler engine, the interactive controller) never need topology
lookups to apply one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = ["FaultEvent", "FAULT_DOWN", "FAULT_UP"]

FAULT_DOWN = "down"
FAULT_UP = "up"


@dataclass(frozen=True)
class FaultEvent:
    """One availability transition of a set of nodes.

    Attributes
    ----------
    time:
        Simulation time (seconds) at which the transition happens.
    action:
        ``"down"`` or ``"up"``.
    nodes:
        The affected node ids (normalized: sorted, deduplicated). For a
        switch failure this is every node under the failed leaf switch.
    cause:
        ``"node"`` / ``"switch"`` / ``"trace"`` — provenance, for
        reporting only; semantics are fully carried by ``nodes``.
    target:
        Human-readable name of what failed (switch or node name).
    """

    time: float
    action: str
    nodes: Tuple[int, ...]
    cause: str = "node"
    target: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.action not in (FAULT_DOWN, FAULT_UP):
            raise ValueError(
                f"action must be {FAULT_DOWN!r} or {FAULT_UP!r}, got {self.action!r}"
            )
        if not self.time >= 0.0:  # rejects NaN too
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        if not self.nodes:
            raise ValueError("fault event must name at least one node")
        normalized = tuple(sorted({int(n) for n in self.nodes}))
        if normalized != self.nodes:
            object.__setattr__(self, "nodes", normalized)

    @property
    def is_down(self) -> bool:
        """True for a failure event, False for a repair."""
        return self.action == FAULT_DOWN
