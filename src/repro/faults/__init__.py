"""Fault injection and fault-tolerant scheduling support.

The paper's evaluation assumes a perfectly healthy cluster; real
machines (Intrepid, Theta, Mira — the sources of the replayed traces)
lose nodes and switches routinely. This package supplies:

* :class:`FaultEvent` — a timestamped down/up transition of a node set;
* :func:`generate_faults` — a deterministic, seeded Poisson generator
  with single-node and whole-leaf-switch failures;
* :func:`parse_fault_trace` / :func:`load_fault_trace` — replayable
  failure-log files for ``repro-sched simulate --fault-trace``;
* :class:`InterruptionBook` and the ``requeue`` / ``checkpoint`` /
  ``abandon`` policies deciding what happens to interrupted jobs.

The availability substrate itself (per-node UP/DOWN/DRAINING, fault-
safe ``leaf_free``) lives on :class:`~repro.cluster.state.ClusterState`;
see ``docs/faults.md`` for the full model and accounting contract.
"""

from .events import FAULT_DOWN, FAULT_UP, FaultEvent
from .generator import FaultGeneratorConfig, generate_faults
from .policy import (
    INTERRUPT_POLICIES,
    POLICY_ABANDON,
    POLICY_CHECKPOINT,
    POLICY_REQUEUE,
    InterruptionBook,
    require_policy,
)
from .trace import (
    FaultTraceError,
    load_fault_trace,
    parse_fault_trace,
    write_fault_trace,
)

__all__ = [
    "FaultEvent",
    "FAULT_DOWN",
    "FAULT_UP",
    "FaultGeneratorConfig",
    "generate_faults",
    "INTERRUPT_POLICIES",
    "POLICY_REQUEUE",
    "POLICY_CHECKPOINT",
    "POLICY_ABANDON",
    "InterruptionBook",
    "require_policy",
    "FaultTraceError",
    "parse_fault_trace",
    "load_fault_trace",
    "write_fault_trace",
]
