"""Interruption policies and per-job fault bookkeeping.

When a failure kills a running job, three SLURM-like policies decide
what happens to its work (``--requeue`` behaviour, checkpoint/restart,
and ``--no-requeue`` respectively):

* ``requeue`` — the job is resubmitted at the failure instant and
  restarts from scratch; everything it ran is wasted.
* ``checkpoint`` — the job checkpoints every ``checkpoint_interval``
  wall seconds; only the work since the last completed checkpoint is
  lost, and the restart runs just the remainder.
* ``abandon`` — the job is marked FAILED and never restarted.

Progress is tracked as a *fraction of the job's total work*: a run
scheduled for wall duration ``D`` that covered ``remaining`` of the job
and dies after ``elapsed`` seconds completed ``elapsed / D`` of that
share. The fraction form composes across restarts whose wall durations
differ (a restarted job lands on different nodes, so its Eq. 7 adjusted
runtime differs), and makes the headline accounting exact: under
``requeue``, wasted node-seconds are ``(failure_time - start_time) *
nodes`` per interruption, summed — the invariant the acceptance tests
pin down.

Shared by the batch engine and the interactive controller so both
report identical numbers for identical histories.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "INTERRUPT_POLICIES",
    "POLICY_REQUEUE",
    "POLICY_CHECKPOINT",
    "POLICY_ABANDON",
    "InterruptionBook",
    "require_policy",
]

POLICY_REQUEUE = "requeue"
POLICY_CHECKPOINT = "checkpoint"
POLICY_ABANDON = "abandon"

INTERRUPT_POLICIES = (POLICY_REQUEUE, POLICY_CHECKPOINT, POLICY_ABANDON)


def require_policy(name: str) -> str:
    """Validate an interruption policy name, returning it."""
    if name not in INTERRUPT_POLICIES:
        raise ValueError(
            f"unknown interruption policy {name!r}; known: {list(INTERRUPT_POLICIES)}"
        )
    return name


@dataclass
class InterruptionBook:
    """Fault history of one job across restarts.

    Attributes
    ----------
    remaining:
        Fraction of the job's total work still to run (1.0 = untouched).
        The next start schedules ``remaining * adjusted_runtime``.
    requeues:
        Restarts so far (requeue or checkpoint-resume).
    wasted_node_seconds:
        Node-seconds of occupancy lost to interruptions (work the
        cluster performed that did not survive the failure).
    failed:
        Terminal flag set by the ``abandon`` policy.
    """

    remaining: float = 1.0
    requeues: int = 0
    wasted_node_seconds: float = 0.0
    failed: bool = False

    def interrupt(
        self,
        policy: str,
        *,
        start_time: float,
        now: float,
        duration: float,
        nodes: int,
        checkpoint_interval: float,
    ) -> bool:
        """Account one interruption; returns True if the job requeues.

        ``duration`` is the wall duration the interrupted run was
        scheduled for, ``now - start_time`` how far it got. Updates
        ``remaining`` / ``requeues`` / ``wasted_node_seconds`` in place;
        under ``abandon`` sets :attr:`failed` and returns False.
        """
        require_policy(policy)
        elapsed = now - start_time
        if elapsed < 0:
            raise ValueError(f"interruption before start: {now} < {start_time}")
        if policy == POLICY_CHECKPOINT:
            if checkpoint_interval <= 0:
                raise ValueError(
                    f"checkpoint_interval must be > 0, got {checkpoint_interval}"
                )
            saved_wall = (elapsed // checkpoint_interval) * checkpoint_interval
        else:
            saved_wall = 0.0
        self.wasted_node_seconds += (elapsed - saved_wall) * nodes
        if policy == POLICY_ABANDON:
            self.failed = True
            return False
        if duration > 0 and saved_wall > 0:
            self.remaining -= self.remaining * (saved_wall / duration)
        self.requeues += 1
        return True
