"""Deterministic, seeded fault-trace generator.

Failures arrive as a Poisson process over simulated time (exponential
interarrivals at ``rate`` events per hour, cluster-wide). Each failure
hits either a single node or a whole leaf switch (probability
``switch_fraction``; a switch failure takes every descendant node down,
per the tree topology), and heals after an exponential downtime with
mean ``mean_downtime`` seconds — producing a paired up event.

The generator never overlaps outages on the same node: a drawn target
that is still down is redrawn a bounded number of times and otherwise
skipped, keeping every down event pairable with exactly one up event.
Everything derives from one ``numpy`` generator seeded with ``seed``,
so a (topology, config) pair always yields the identical event list —
the property the CI determinism smoke test asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..topology.tree import TreeTopology
from .._validation import require_non_negative
from .events import FAULT_DOWN, FAULT_UP, FaultEvent

__all__ = ["FaultGeneratorConfig", "generate_faults"]

#: redraws before a failure landing on an already-down target is skipped
_MAX_REDRAWS = 8

SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class FaultGeneratorConfig:
    """Knobs of :func:`generate_faults`.

    Attributes
    ----------
    rate:
        Expected failure events per simulated *hour*, cluster-wide.
        0 disables fault generation entirely.
    horizon:
        Generate failures in ``[0, horizon)`` seconds. Up events may
        land past the horizon (a failure near the end heals after it).
    seed:
        RNG seed; same seed, same topology, same config — same trace.
    mean_downtime:
        Mean seconds a failed node/switch stays down (exponential).
    switch_fraction:
        Probability that a failure takes out a whole leaf switch
        instead of a single node.
    """

    rate: float
    horizon: float
    seed: int = 0
    mean_downtime: float = 1800.0
    switch_fraction: float = 0.1

    def __post_init__(self) -> None:
        require_non_negative(self.rate, "rate")
        require_non_negative(self.horizon, "horizon")
        if self.mean_downtime <= 0:
            raise ValueError(f"mean_downtime must be > 0, got {self.mean_downtime}")
        if not 0.0 <= self.switch_fraction <= 1.0:
            raise ValueError(
                f"switch_fraction must be in [0, 1], got {self.switch_fraction}"
            )


def generate_faults(
    topology: TreeTopology, config: FaultGeneratorConfig
) -> List[FaultEvent]:
    """Sample a fault trace for ``topology``; sorted by time.

    Every down event has a matching up event over the *same* node set,
    and no node is double-failed. Deterministic per ``config.seed``.
    """
    if config.rate == 0.0 or config.horizon == 0.0:
        return []
    rng = np.random.default_rng(config.seed)
    mean_gap = SECONDS_PER_HOUR / config.rate
    down_until = np.zeros(topology.n_nodes, dtype=np.float64)
    events: List[FaultEvent] = []
    t = rng.exponential(mean_gap)
    while t < config.horizon:
        for _ in range(_MAX_REDRAWS):
            if rng.random() < config.switch_fraction:
                leaf = int(rng.integers(topology.n_leaves))
                lo = int(topology.leaf_node_offset[leaf])
                hi = int(topology.leaf_node_offset[leaf + 1])
                nodes = tuple(range(lo, hi))
                cause, target = "switch", topology.leaf(leaf).name
            else:
                node = int(rng.integers(topology.n_nodes))
                nodes = (node,)
                cause, target = "node", topology.node_name(node)
            if np.all(down_until[list(nodes)] <= t):
                downtime = max(float(rng.exponential(config.mean_downtime)), 1e-3)
                events.append(
                    FaultEvent(t, FAULT_DOWN, nodes, cause=cause, target=target)
                )
                events.append(
                    FaultEvent(t + downtime, FAULT_UP, nodes, cause=cause, target=target)
                )
                down_until[list(nodes)] = t + downtime
                break
        t += rng.exponential(mean_gap)
    events.sort(key=lambda e: e.time)
    return events
