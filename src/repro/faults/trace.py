"""Fault trace files: a tiny line format for replayable failure logs.

Real clusters log failures; to replay one against the simulator the
``--fault-trace`` CLI flag reads this format::

    # comment (or ';' like SWF headers)
    120.0  down  node:n3,n4
    120.0  down  switch:leaf2
    900.0  up    node:n3,n4
    1800.0 up    switch:leaf2

Each line is ``<time> <down|up> <target-spec>`` where the spec is
``node:<name>[,<name>...]`` (node names or plain integer ids) or
``switch:<leaf-switch-name>`` (resolved to every node under that leaf).
Times are seconds of simulated time. Down/up pairing is the author's
responsibility — unmatched downs simply never heal, and marking an
already-down node down again is a no-op.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from ..topology.tree import TreeTopology
from .events import FAULT_DOWN, FAULT_UP, FaultEvent

__all__ = ["FaultTraceError", "parse_fault_trace", "load_fault_trace", "write_fault_trace"]


class FaultTraceError(ValueError):
    """Raised on malformed fault-trace content."""


def _resolve_nodes(spec: str, topology: TreeTopology, lineno: int) -> tuple:
    if ":" not in spec:
        raise FaultTraceError(
            f"line {lineno}: target must be 'node:<names>' or 'switch:<name>', got {spec!r}"
        )
    kind, _, rest = spec.partition(":")
    if kind == "switch":
        try:
            leaf_index = list(topology.leaf_names).index(rest)
        except ValueError:
            raise FaultTraceError(
                f"line {lineno}: unknown leaf switch {rest!r}"
            ) from None
        lo = int(topology.leaf_node_offset[leaf_index])
        hi = int(topology.leaf_node_offset[leaf_index + 1])
        return "switch", rest, tuple(range(lo, hi))
    if kind == "node":
        ids: List[int] = []
        for name in rest.split(","):
            name = name.strip()
            if not name:
                raise FaultTraceError(f"line {lineno}: empty node name")
            if name.isdigit():
                node = int(name)
                if node >= topology.n_nodes:
                    raise FaultTraceError(
                        f"line {lineno}: node id {node} out of range"
                    )
            else:
                try:
                    node = topology.node_id(name)
                except KeyError:
                    raise FaultTraceError(
                        f"line {lineno}: unknown node {name!r}"
                    ) from None
            ids.append(node)
        return "node", rest, tuple(ids)
    raise FaultTraceError(
        f"line {lineno}: target kind must be 'node' or 'switch', got {kind!r}"
    )


def parse_fault_trace(text: str, topology: TreeTopology) -> List[FaultEvent]:
    """Parse fault-trace text into events, sorted by time."""
    events: List[FaultEvent] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(("#", ";")):
            continue
        parts = line.split()
        if len(parts) != 3:
            raise FaultTraceError(
                f"line {lineno}: expected '<time> <down|up> <target>', got {line!r}"
            )
        time_str, action, spec = parts
        try:
            time = float(time_str)
        except ValueError:
            raise FaultTraceError(
                f"line {lineno}: bad time {time_str!r}"
            ) from None
        if action not in (FAULT_DOWN, FAULT_UP):
            raise FaultTraceError(
                f"line {lineno}: action must be 'down' or 'up', got {action!r}"
            )
        cause, target, nodes = _resolve_nodes(spec, topology, lineno)
        try:
            events.append(
                FaultEvent(time, action, nodes, cause="trace", target=target)
            )
        except ValueError as exc:
            raise FaultTraceError(f"line {lineno}: {exc}") from None
    events.sort(key=lambda e: e.time)
    return events


def load_fault_trace(
    path: Union[str, Path], topology: TreeTopology
) -> List[FaultEvent]:
    """Read and parse a fault-trace file from disk."""
    return parse_fault_trace(Path(path).read_text(), topology)


def write_fault_trace(events: List[FaultEvent], topology: TreeTopology) -> str:
    """Render events back to trace text (node names, one event per line)."""
    lines = []
    for event in events:
        names = ",".join(topology.node_name(n) for n in event.nodes)
        lines.append(f"{event.time} {event.action} node:{names}")
    return "\n".join(lines) + ("\n" if lines else "")
