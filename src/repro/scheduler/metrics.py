"""Per-job records and aggregate metrics (paper §5.4).

The paper evaluates five metrics: execution time, wait time, turnaround
time, node-hours, and Eq. 6 communication cost. :class:`JobRecord`
captures everything needed to compute all five per job;
:class:`SimulationResult` aggregates them the way the paper's tables do
(total hours over the whole log, averages, per-job series).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cluster.job import Job

__all__ = ["JobRecord", "SimulationResult", "percent_improvement", "SECONDS_PER_HOUR"]

SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class JobRecord:
    """Outcome of one job in a simulation run.

    ``cost_jobaware`` / ``cost_default`` are the Eq. 6 costs of the
    job's communication components under the run's allocator and under
    the counterfactual default allocation from the same cluster state
    (identical for compute-intensive jobs: both zero).

    For a job interrupted by failures, ``start_time`` / ``finish_time``
    / ``nodes`` describe its *final* run (the one that completed — or,
    for ``failed=True``, the aborted one); occupancy burned by earlier
    interrupted runs is accounted in ``wasted_node_seconds``.
    """

    job: Job
    start_time: float
    finish_time: float
    nodes: np.ndarray
    cost_jobaware: Dict[str, float] = field(default_factory=dict)
    cost_default: Dict[str, float] = field(default_factory=dict)
    #: times the job was interrupted by a failure and restarted
    requeues: int = 0
    #: node-seconds of occupancy lost to interruptions (never completed work)
    wasted_node_seconds: float = 0.0
    #: True when the job was abandoned after a failure (never completed)
    failed: bool = False

    @property
    def execution_time(self) -> float:
        """Seconds between start and completion (paper metric 1)."""
        return self.finish_time - self.start_time

    @property
    def wait_time(self) -> float:
        """Seconds between submission and start (paper metric 2)."""
        return self.start_time - self.job.submit_time

    @property
    def turnaround_time(self) -> float:
        """Seconds between submission and completion (paper metric 3)."""
        return self.finish_time - self.job.submit_time

    @property
    def node_seconds(self) -> float:
        """Nodes x execution time (paper metric 4, in node-seconds)."""
        return self.job.nodes * self.execution_time

    def bounded_slowdown(self, threshold: float = 10.0) -> float:
        """Standard BSLD: ``max((wait + run) / max(run, tau), 1)``.

        Not one of the paper's five metrics, but the scheduling
        literature's default responsiveness measure (Feitelson et al.);
        ``threshold`` (tau, seconds) stops sub-second jobs from
        dominating the average.
        """
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        denom = max(self.execution_time, threshold)
        return max((self.wait_time + self.execution_time) / denom, 1.0)

    @property
    def gross_node_seconds(self) -> float:
        """Final-run occupancy plus interruption waste, node-seconds."""
        return self.node_seconds + self.wasted_node_seconds

    @property
    def total_cost_jobaware(self) -> float:
        """Summed Eq. 6 cost over communication components (paper metric 5)."""
        return float(sum(self.cost_jobaware.values()))

    @property
    def total_cost_default(self) -> float:
        """Summed Eq. 6 cost of the counterfactual default placement."""
        return float(sum(self.cost_default.values()))


class SimulationResult:
    """All job records of one run plus the paper's aggregate metrics.

    ``unstarted`` holds jobs that could never start before the event
    horizon closed — possible only under fault injection, when enough
    of the machine stays DOWN that a request no longer fits.
    """

    def __init__(
        self,
        allocator_name: str,
        records: Sequence[JobRecord],
        unstarted: Sequence[Job] = (),
    ) -> None:
        self.allocator_name = allocator_name
        self.records: List[JobRecord] = sorted(records, key=lambda r: r.job.job_id)
        self.unstarted: List[Job] = sorted(unstarted, key=lambda j: j.job_id)
        #: :meth:`repro.perf.PerfRecorder.snapshot` report when the run
        #: was traced (``EngineConfig(collect_perf=True)``), else None.
        #: Diagnostics only — never serialized by ``dump_result``.
        self.perf: Optional[Dict] = None

    def __len__(self) -> int:
        return len(self.records)

    def record_for(self, job_id: int) -> JobRecord:
        """The finished record of ``job_id`` (KeyError when absent)."""
        for record in self.records:
            if record.job.job_id == job_id:
                return record
        raise KeyError(f"no record for job {job_id}")

    # ------------------------------------------------------------------
    # per-job series (seconds / raw units)
    # ------------------------------------------------------------------

    def _series(self, attr: str) -> np.ndarray:
        return np.array([getattr(r, attr) for r in self.records], dtype=np.float64)

    @property
    def execution_times(self) -> np.ndarray:
        """Per-job execution times, in finish order."""
        return self._series("execution_time")

    @property
    def wait_times(self) -> np.ndarray:
        """Per-job wait times, in finish order."""
        return self._series("wait_time")

    @property
    def turnaround_times(self) -> np.ndarray:
        """Per-job turnaround times, in finish order."""
        return self._series("turnaround_time")

    @property
    def node_seconds(self) -> np.ndarray:
        """Per-job node-seconds, in finish order."""
        return self._series("node_seconds")

    @property
    def costs_jobaware(self) -> np.ndarray:
        """Per-job summed Eq. 6 costs of the actual placements."""
        return self._series("total_cost_jobaware")

    @property
    def costs_default(self) -> np.ndarray:
        """Per-job summed Eq. 6 costs of the default counterfactuals."""
        return self._series("total_cost_default")

    @property
    def requested_nodes(self) -> np.ndarray:
        """Per-job requested node counts, in finish order."""
        return np.array([r.job.nodes for r in self.records], dtype=np.int64)

    # ------------------------------------------------------------------
    # aggregates in the paper's units (hours)
    # ------------------------------------------------------------------

    @property
    def total_execution_hours(self) -> float:
        """Summed execution time over all jobs, hours (Table 3 columns)."""
        return float(self.execution_times.sum()) / SECONDS_PER_HOUR

    @property
    def total_wait_hours(self) -> float:
        """Summed wait time over all jobs, hours (Table 3 columns)."""
        return float(self.wait_times.sum()) / SECONDS_PER_HOUR

    @property
    def avg_turnaround_hours(self) -> float:
        """Mean turnaround, hours (Figure 9 left panel). 0 with no records
        (possible under fault injection when every job ends unstarted)."""
        if not self.records:
            return 0.0
        return float(self.turnaround_times.mean()) / SECONDS_PER_HOUR

    @property
    def avg_node_hours(self) -> float:
        """Mean node-hours per job (Figure 9 right panel); 0 with no records."""
        if not self.records:
            return 0.0
        return float(self.node_seconds.mean()) / SECONDS_PER_HOUR

    @property
    def total_node_hours(self) -> float:
        """Summed node-hours across all finished jobs."""
        return float(self.node_seconds.sum()) / SECONDS_PER_HOUR

    def bounded_slowdowns(self, threshold: float = 10.0) -> np.ndarray:
        """Per-job bounded slowdown series (see JobRecord.bounded_slowdown)."""
        return np.array(
            [r.bounded_slowdown(threshold) for r in self.records], dtype=np.float64
        )

    def mean_bounded_slowdown(self, threshold: float = 10.0) -> float:
        """Mean BSLD over the run (1.0 = every job ran immediately)."""
        if not self.records:
            return 1.0
        return float(self.bounded_slowdowns(threshold).mean())

    @property
    def makespan(self) -> float:
        """Seconds from time 0 to the last completion."""
        return max((r.finish_time for r in self.records), default=0.0)

    @property
    def mean_cost_jobaware(self) -> float:
        """Mean Eq. 6 cost over communication-intensive jobs (Figure 8)."""
        comm = [r.total_cost_jobaware for r in self.records if r.job.is_comm_intensive]
        return float(np.mean(comm)) if comm else 0.0

    # ------------------------------------------------------------------
    # fault / availability aggregates
    # ------------------------------------------------------------------

    @property
    def failed_count(self) -> int:
        """Jobs abandoned after a failure (interrupt policy ``abandon``)."""
        return sum(1 for r in self.records if r.failed)

    @property
    def requeue_count(self) -> int:
        """Total failure-triggered restarts across all jobs."""
        return sum(r.requeues for r in self.records)

    @property
    def wasted_node_hours(self) -> float:
        """Node-hours burned by interrupted runs that never completed."""
        return float(sum(r.wasted_node_seconds for r in self.records)) / SECONDS_PER_HOUR

    @property
    def goodput_node_hours(self) -> float:
        """Node-hours of completed (non-failed) final runs — useful work."""
        good = sum(r.node_seconds for r in self.records if not r.failed)
        return float(good) / SECONDS_PER_HOUR

    def summary(self) -> Dict[str, float]:
        """All headline aggregates as one dict (for reports / CLI)."""
        return {
            "jobs": float(len(self.records)),
            "total_execution_hours": self.total_execution_hours,
            "total_wait_hours": self.total_wait_hours,
            "avg_turnaround_hours": self.avg_turnaround_hours,
            "avg_node_hours": self.avg_node_hours,
            "makespan_hours": self.makespan / SECONDS_PER_HOUR,
            "mean_cost_jobaware": self.mean_cost_jobaware,
            "mean_bounded_slowdown": self.mean_bounded_slowdown(),
            "failed_jobs": float(self.failed_count),
            "total_requeues": float(self.requeue_count),
            "wasted_node_hours": self.wasted_node_hours,
            "goodput_node_hours": self.goodput_node_hours,
            "unstarted_jobs": float(len(self.unstarted)),
        }


def percent_improvement(baseline: float, candidate: float) -> float:
    """Paper-style percent improvement of ``candidate`` over ``baseline``.

    Positive = candidate is better (smaller). Returns 0 when the
    baseline is 0 (no meaningful relative change).
    """
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - candidate) / baseline
