"""Discrete-event SLURM-like scheduler (FIFO + EASY backfill, Eq. 7)."""

from .conservative import ConservativeBackfillPolicy
from .engine import EngineConfig, SchedulerEngine, SchedulerStats, simulate
from .events import Event, EventKind, EventQueue
from .metrics import SECONDS_PER_HOUR, JobRecord, SimulationResult, percent_improvement
from .serialize import dump_result, load_result, result_from_dict, result_to_dict
from .queue_policy import (
    EasyBackfillPolicy,
    FifoPolicy,
    QueuePolicy,
    RunningJobView,
    get_policy,
)

__all__ = [
    "EngineConfig",
    "SchedulerEngine",
    "SchedulerStats",
    "simulate",
    "Event",
    "EventKind",
    "EventQueue",
    "SECONDS_PER_HOUR",
    "JobRecord",
    "SimulationResult",
    "percent_improvement",
    "ConservativeBackfillPolicy",
    "EasyBackfillPolicy",
    "FifoPolicy",
    "QueuePolicy",
    "RunningJobView",
    "get_policy",
    "dump_result",
    "load_result",
    "result_from_dict",
    "result_to_dict",
]
