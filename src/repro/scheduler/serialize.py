"""JSON persistence for simulation results.

Long sweeps (seed grids, paper-scale tables) are worth keeping; this
module round-trips :class:`~repro.scheduler.metrics.SimulationResult`
through plain JSON so results can be archived, diffed, and re-analyzed
without rerunning the simulator. Jobs serialize with their pattern
*names*; deserialization rebuilds pattern objects from the registry, so
custom patterns must be registered before loading.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

import numpy as np

from ..cluster.job import CommComponent, Job, JobKind
from ..patterns.registry import get_pattern
from .metrics import JobRecord, SimulationResult

__all__ = ["result_to_dict", "result_from_dict", "dump_result", "load_result"]

#: v2 adds per-record fault fields (requeues / wasted_node_seconds /
#: failed) and the top-level ``unstarted`` job list; v1 files load with
#: fault-free defaults.
_FORMAT_VERSION = 2
_READABLE_VERSIONS = (1, 2)


def _job_to_dict(job: Job) -> Dict[str, Any]:
    return {
        "job_id": job.job_id,
        "submit_time": job.submit_time,
        "nodes": job.nodes,
        "runtime": job.runtime,
        "kind": job.kind.value,
        "comm": [
            {"pattern": c.pattern.name, "fraction": c.fraction} for c in job.comm
        ],
    }


def _job_from_dict(data: Dict[str, Any]) -> Job:
    comm = tuple(
        CommComponent(get_pattern(c["pattern"]), float(c["fraction"]))
        for c in data["comm"]
    )
    return Job(
        job_id=int(data["job_id"]),
        submit_time=float(data["submit_time"]),
        nodes=int(data["nodes"]),
        runtime=float(data["runtime"]),
        kind=JobKind(data["kind"]),
        comm=comm,
    )


def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """Plain-JSON-serializable representation of a result."""
    return {
        "format_version": _FORMAT_VERSION,
        "allocator": result.allocator_name,
        "records": [
            {
                "job": _job_to_dict(r.job),
                "start_time": r.start_time,
                "finish_time": r.finish_time,
                "nodes": r.nodes.tolist(),
                "cost_jobaware": dict(r.cost_jobaware),
                "cost_default": dict(r.cost_default),
                "requeues": r.requeues,
                "wasted_node_seconds": r.wasted_node_seconds,
                "failed": r.failed,
            }
            for r in result.records
        ],
        "unstarted": [_job_to_dict(j) for j in result.unstarted],
    }


def result_from_dict(data: Dict[str, Any]) -> SimulationResult:
    """Inverse of :func:`result_to_dict`; validates the format version."""
    version = data.get("format_version")
    if version not in _READABLE_VERSIONS:
        raise ValueError(
            f"unsupported result format version {version!r} "
            f"(this build reads {list(_READABLE_VERSIONS)})"
        )
    records: List[JobRecord] = []
    for rec in data["records"]:
        records.append(
            JobRecord(
                job=_job_from_dict(rec["job"]),
                start_time=float(rec["start_time"]),
                finish_time=float(rec["finish_time"]),
                nodes=np.asarray(rec["nodes"], dtype=np.int64),
                cost_jobaware={k: float(v) for k, v in rec["cost_jobaware"].items()},
                cost_default={k: float(v) for k, v in rec["cost_default"].items()},
                requeues=int(rec.get("requeues", 0)),
                wasted_node_seconds=float(rec.get("wasted_node_seconds", 0.0)),
                failed=bool(rec.get("failed", False)),
            )
        )
    unstarted = [_job_from_dict(j) for j in data.get("unstarted", [])]
    return SimulationResult(data["allocator"], records, unstarted=unstarted)


def dump_result(result: SimulationResult, path) -> None:
    """Write a result as JSON to ``path``."""
    with open(path, "w") as fh:
        json.dump(result_to_dict(result), fh, indent=1)


def load_result(path) -> SimulationResult:
    """Read a result JSON written by :func:`dump_result`."""
    with open(path) as fh:
        return result_from_dict(json.load(fh))
