"""JSON persistence for simulation results and engine checkpoints.

Long sweeps (seed grids, paper-scale tables) are worth keeping; this
module round-trips :class:`~repro.scheduler.metrics.SimulationResult`
through plain JSON so results can be archived, diffed, and re-analyzed
without rerunning the simulator. Jobs serialize with their pattern
*names*; deserialization rebuilds pattern objects from the registry, so
custom patterns must be registered before loading.

Format history:

* **v1** — records only.
* **v2** — per-record fault fields (``requeues`` /
  ``wasted_node_seconds`` / ``failed``) and the top-level ``unstarted``
  job list.
* **v3** — a top-level ``digest`` (canonical SHA-256 of the payload,
  verified on load so a corrupted artifact is rejected instead of
  silently mis-analyzed), and a second artifact kind: the **engine
  checkpoint** (``kind: "engine-checkpoint"``) produced by
  :meth:`~repro.scheduler.engine.SchedulerEngine.snapshot` — the fully
  deterministic mid-run state that ``repro-sched simulate
  --resume-from`` continues from. v1/v2 result files still load (they
  simply carry no digest to verify).
* **v4** — checkpoints only: a trailing ``#sha256:<hex>`` *footer*
  covering the exact bytes of the JSON body (see
  :mod:`repro.runs.integrity`), so corruption anywhere in the file —
  including JSON whitespace the object-level digest cannot see — is
  caught before parsing. v3 checkpoints (no footer) still load; result
  files stay at v3.

Corrupt artifacts — invalid JSON, digest mismatches, footer
mismatches — raise the typed
:class:`~repro.runs.integrity.IntegrityError` (a ``ValueError``
subclass) instead of opaque decoder tracebacks.

All file writes go through :func:`repro.runs.atomic.atomic_write`: a
crash mid-dump never leaves a truncated JSON artifact.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Union

import numpy as np

from ..cluster.job import CommComponent, Job, JobKind
from ..faults.events import FaultEvent
from ..patterns.registry import get_pattern
from ..runs.atomic import atomic_write
from ..runs.digest import digest_obj
from ..runs.integrity import IntegrityError, verify_footer, write_footer
from .metrics import JobRecord, SimulationResult

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "dump_result",
    "load_result",
    "job_to_dict",
    "job_from_dict",
    "fault_to_dict",
    "fault_from_dict",
    "record_to_dict",
    "record_from_dict",
    "dump_snapshot",
    "load_snapshot",
    "SNAPSHOT_KIND",
    "SNAPSHOT_FORMAT_VERSION",
]

#: v3 adds the verified top-level ``digest`` and the engine-checkpoint
#: artifact kind; v1/v2 result files load unchanged (v1 with fault-free
#: defaults).
_FORMAT_VERSION = 3
_READABLE_VERSIONS = (1, 2, 3)

#: v4 checkpoints carry a byte-exact sha256 footer; v3 (footer-less)
#: checkpoints still load.
SNAPSHOT_FORMAT_VERSION = 4
_SNAPSHOT_READABLE_VERSIONS = (3, 4)

SNAPSHOT_KIND = "engine-checkpoint"


def job_to_dict(job: Job) -> Dict[str, Any]:
    """Plain-JSON representation of one :class:`Job`."""
    return {
        "job_id": job.job_id,
        "submit_time": job.submit_time,
        "nodes": job.nodes,
        "runtime": job.runtime,
        "kind": job.kind.value,
        "comm": [
            {"pattern": c.pattern.name, "fraction": c.fraction} for c in job.comm
        ],
    }


def job_from_dict(data: Dict[str, Any]) -> Job:
    """Inverse of :func:`job_to_dict` (patterns rebuilt from the registry)."""
    comm = tuple(
        CommComponent(get_pattern(c["pattern"]), float(c["fraction"]))
        for c in data["comm"]
    )
    return Job(
        job_id=int(data["job_id"]),
        submit_time=float(data["submit_time"]),
        nodes=int(data["nodes"]),
        runtime=float(data["runtime"]),
        kind=JobKind(data["kind"]),
        comm=comm,
    )


def fault_to_dict(fault: FaultEvent) -> Dict[str, Any]:
    """Plain-JSON representation of one :class:`FaultEvent`."""
    return {
        "time": fault.time,
        "action": fault.action,
        "nodes": list(fault.nodes),
        "cause": fault.cause,
        "target": fault.target,
    }


def fault_from_dict(data: Dict[str, Any]) -> FaultEvent:
    """Inverse of :func:`fault_to_dict`."""
    return FaultEvent(
        time=float(data["time"]),
        action=str(data["action"]),
        nodes=tuple(int(n) for n in data["nodes"]),
        cause=str(data.get("cause", "node")),
        target=str(data.get("target", "")),
    )


def record_to_dict(record: JobRecord) -> Dict[str, Any]:
    """Plain-JSON representation of one :class:`JobRecord`."""
    return {
        "job": job_to_dict(record.job),
        "start_time": record.start_time,
        "finish_time": record.finish_time,
        "nodes": record.nodes.tolist(),
        "cost_jobaware": dict(record.cost_jobaware),
        "cost_default": dict(record.cost_default),
        "requeues": record.requeues,
        "wasted_node_seconds": record.wasted_node_seconds,
        "failed": record.failed,
    }


def record_from_dict(rec: Dict[str, Any]) -> JobRecord:
    """Inverse of :func:`record_to_dict`; v1 records get fault-free defaults."""
    return JobRecord(
        job=job_from_dict(rec["job"]),
        start_time=float(rec["start_time"]),
        finish_time=float(rec["finish_time"]),
        nodes=np.asarray(rec["nodes"], dtype=np.int64),
        cost_jobaware={k: float(v) for k, v in rec["cost_jobaware"].items()},
        cost_default={k: float(v) for k, v in rec["cost_default"].items()},
        requeues=int(rec.get("requeues", 0)),
        wasted_node_seconds=float(rec.get("wasted_node_seconds", 0.0)),
        failed=bool(rec.get("failed", False)),
    )


def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """Plain-JSON-serializable representation of a result (format v3).

    The embedded ``digest`` covers everything else in the dict, so a
    truncated or bit-flipped artifact is detected on load.
    """
    data = {
        "format_version": _FORMAT_VERSION,
        "allocator": result.allocator_name,
        "records": [record_to_dict(r) for r in result.records],
        "unstarted": [job_to_dict(j) for j in result.unstarted],
    }
    data["digest"] = digest_obj(data)
    return data


def result_from_dict(data: Dict[str, Any]) -> SimulationResult:
    """Inverse of :func:`result_to_dict`; validates version and digest."""
    version = data.get("format_version")
    if version not in _READABLE_VERSIONS:
        raise ValueError(
            f"unsupported result format version {version!r} "
            f"(this build reads {list(_READABLE_VERSIONS)})"
        )
    stored_digest = data.get("digest")
    if stored_digest is not None:
        payload = {k: v for k, v in data.items() if k != "digest"}
        actual = digest_obj(payload)
        if actual != stored_digest:
            raise IntegrityError(
                "result",
                f"digest mismatch: file says {stored_digest}, "
                f"content hashes to {actual} — the artifact is corrupt",
            )
    records: List[JobRecord] = [record_from_dict(rec) for rec in data["records"]]
    unstarted = [job_from_dict(j) for j in data.get("unstarted", [])]
    return SimulationResult(data["allocator"], records, unstarted=unstarted)


def dump_result(result: SimulationResult, path) -> None:
    """Atomically write a result as JSON to ``path``."""
    with atomic_write(path) as fh:
        json.dump(result_to_dict(result), fh, indent=1)


def load_result(path) -> SimulationResult:
    """Read a result JSON written by :func:`dump_result`.

    Corruption — invalid JSON, broken UTF-8, or a digest mismatch —
    raises :class:`~repro.runs.integrity.IntegrityError` naming the
    file.
    """
    with open(path, "rb") as fh:
        blob = fh.read()
    try:
        data = json.loads(blob.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        detail = getattr(exc, "msg", None) or str(exc)
        raise IntegrityError(
            path, f"not valid JSON ({detail}) — the artifact is corrupt"
        ) from exc
    try:
        return result_from_dict(data)
    except IntegrityError as exc:
        raise IntegrityError(path, exc.detail) from exc


# ----------------------------------------------------------------------
# engine checkpoints
# ----------------------------------------------------------------------


def dump_snapshot(snapshot: Dict[str, Any], path) -> None:
    """Atomically write an engine checkpoint produced by ``snapshot()``.

    Atomicity is the point: checkpoints are written *mid-run*, exactly
    when a crash is most likely, and a resumable run is only as good as
    its last uncorrupted checkpoint.
    """
    if snapshot.get("kind") != SNAPSHOT_KIND:
        raise ValueError(
            f"not an engine checkpoint: kind={snapshot.get('kind')!r}"
        )
    if "digest" not in snapshot:
        snapshot = dict(snapshot)
        snapshot["digest"] = digest_obj(snapshot)
    body = (json.dumps(snapshot, indent=1) + "\n").encode("utf-8")
    with atomic_write(path, mode="wb") as fh:
        fh.write(body)
        fh.write(write_footer(body))


def load_snapshot(path) -> Dict[str, Any]:
    """Read and validate an engine checkpoint file.

    The v4 sha256 footer is verified against the body bytes before any
    parsing; footer-less v3 files load with object-digest verification
    only. All corruption raises
    :class:`~repro.runs.integrity.IntegrityError`.
    """
    with open(path, "rb") as fh:
        blob = fh.read()
    body = verify_footer(blob, path)
    try:
        data = json.loads(body.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        detail = getattr(exc, "msg", None) or str(exc)
        raise IntegrityError(
            path, f"not valid JSON ({detail}) — the checkpoint is corrupt"
        ) from exc
    if not isinstance(data, dict) or data.get("kind") != SNAPSHOT_KIND:
        raise ValueError(f"{path}: not an engine checkpoint file")
    version = data.get("format_version")
    if version not in _SNAPSHOT_READABLE_VERSIONS:
        raise ValueError(
            f"unsupported checkpoint format version {version!r} "
            f"(this build reads {list(_SNAPSHOT_READABLE_VERSIONS)})"
        )
    stored_digest = data.get("digest")
    if stored_digest is not None:
        payload = {k: v for k, v in data.items() if k != "digest"}
        actual = digest_obj(payload)
        if actual != stored_digest:
            raise IntegrityError(
                path, "checkpoint digest mismatch — the file is corrupt"
            )
    return data
