"""Discrete-event scheduling simulator (the paper's emulated SLURM, §5).

The paper replays job logs through a modified SLURM in front-end
emulation mode: jobs occupy nodes for their logged durations, and a
communication-intensive job's duration is rescaled by Eq. 7 — the ratio
of its Eq. 6 communication cost under the job-aware allocation to the
cost under the allocation the *default* algorithm would have produced
from the same cluster state. This engine does exactly that, replacing
the 2-5 day wall-clock emulation with an event loop:

1. all submissions are queued as events;
2. on every submission or completion, a scheduling pass runs the queue
   policy (FIFO or EASY backfill) over the pending queue;
3. a started job gets nodes from the run's allocator; if it is
   communication-intensive, the default allocator is also run against
   the pre-allocation state and its hypothetical placement is priced on
   a per-leaf counter overlay (no state copy) to get the counterfactual,
   and the job's runtime is adjusted per Eq. 7;
4. completions free nodes and trigger the next pass.

Wait-time improvements in the paper are *emergent*: shorter adjusted
runtimes release nodes earlier, which this loop reproduces.

Fault injection (:mod:`repro.faults`) threads through the same loop:
``run(..., faults=...)`` queues NODE_DOWN / NODE_UP events alongside
the workload. A down event interrupts every running job holding an
affected node, applies the configured interruption policy (requeue /
checkpoint / abandon, see :mod:`repro.faults.policy`), marks the nodes
DOWN on the state, and lets the following scheduling pass route new
work around the hole. With no faults the loop is byte-for-byte the
pre-fault behaviour — fault handling only runs when fault events exist.

The engine itself is crash-safe: because every source of ordering is
deterministic (the event heap totally orders by (time, kind, seq) and
no RNG runs inside the loop), the full mid-run state can be serialized
(:meth:`SchedulerEngine.snapshot`, format v3 in
:mod:`repro.scheduler.serialize`) and a resumed run completes
bit-identically to an uninterrupted one. See ``docs/resilience.md``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from .. import perf
from ..obs import runtime as obs_runtime
from ..obs.progress import ProgressReporter
from ..obs.runtime import PerfRecorder
from .._perfflags import is_legacy
from ..allocation.base import Allocator
from ..allocation.default_slurm import DefaultSlurmAllocator
from ..allocation.registry import get_allocator
from ..cluster.job import Job
from ..cluster.state import ClusterState
from ..cost.contention import ContentionModel
from ..cost.model import CostModel
from ..faults.events import FaultEvent
from ..faults.policy import POLICY_ABANDON, InterruptionBook, require_policy
from ..topology.config import parse_topology_conf, write_topology_conf
from ..topology.tree import TreeTopology
from .events import Event, EventKind, EventQueue
from .metrics import JobRecord, SimulationResult
from ..runs.checkpoints import CheckpointStore
from .serialize import (
    SNAPSHOT_FORMAT_VERSION,
    SNAPSHOT_KIND,
    dump_snapshot,
    fault_from_dict,
    fault_to_dict,
    job_from_dict,
    job_to_dict,
    record_from_dict,
    record_to_dict,
)

from .queue_policy import QueuePolicy, RunningJobView, RunningViews, get_policy

__all__ = [
    "EngineConfig",
    "SchedulerEngine",
    "SchedulerStats",
    "SimulationInterrupted",
    "simulate",
]


class SimulationInterrupted(RuntimeError):
    """A run was stopped by its ``interrupt`` callback (e.g. SIGINT).

    ``checkpoint_path`` names the final checkpoint written before
    stopping, or ``None`` when checkpointing was not enabled.
    """

    def __init__(self, checkpoint_path: Optional[str] = None) -> None:
        suffix = (
            f"; checkpoint written to {checkpoint_path}"
            if checkpoint_path
            else " (no checkpoint configured)"
        )
        super().__init__(f"simulation interrupted{suffix}")
        self.checkpoint_path = checkpoint_path


@dataclass
class SchedulerStats:
    """Bookkeeping about one run's scheduling activity.

    Attributes
    ----------
    schedule_passes:
        Full queue-policy scans (the first pass of a run is always one).
    schedule_passes_incremental:
        Passes that evaluated only jobs appended since a failed full
        pass, against that pass's carried facts (see
        :mod:`repro.scheduler.queue_policy`).
    schedule_passes_skipped:
        Passes skipped entirely: the previous pass picked nothing and
        neither the cluster state version nor the queue changed since.
    jobs_backfilled:
        Starts that jumped at least one earlier-submitted queued job.
    counterfactual_evaluations:
        Default-allocator counterfactual pricings performed (one per
        communication-intensive start under a non-default allocator).
    faults_injected:
        NODE_DOWN events processed.
    jobs_interrupted:
        Running jobs killed by a failure (counted per interruption, so
        one job can contribute several).
    jobs_requeued:
        Interruptions that put the job back on the queue (requeue or
        checkpoint policy).
    jobs_failed:
        Interruptions that abandoned the job (``abandon`` policy).
    """

    schedule_passes: int = 0
    schedule_passes_incremental: int = 0
    schedule_passes_skipped: int = 0
    jobs_backfilled: int = 0
    counterfactual_evaluations: int = 0
    faults_injected: int = 0
    jobs_interrupted: int = 0
    jobs_requeued: int = 0
    jobs_failed: int = 0


@dataclass(frozen=True)
class EngineConfig:
    """Engine knobs.

    Attributes
    ----------
    policy:
        ``"backfill"`` (SLURM default, used in the paper) or ``"fifo"``.
    cost_model:
        Eq. 6 configuration shared by runtime adjustment and recording.
    adjust_runtimes:
        Apply Eq. 7. Disable for ablations where only the placement
        (not the modeled speedup) should differ between allocators.
    validate_state:
        Run :meth:`ClusterState.validate` after every mutation — O(nodes)
        per event, for tests and debugging only.
    interrupt_policy:
        What happens to a running job killed by a failure: ``"requeue"``
        (restart from scratch), ``"checkpoint"`` (restart from the last
        completed checkpoint), or ``"abandon"`` (job FAILED). See
        :mod:`repro.faults.policy`.
    checkpoint_interval:
        Wall seconds between checkpoints under the ``checkpoint``
        policy; ignored by the other policies.
    force_full_pass:
        Disable incremental scheduling: every pass is a from-scratch
        policy scan over rebuilt running-job views, reproducing the
        pre-incremental engine exactly. Reference mode for the
        equivalence property tests and the "before" benchmark numbers.
    verify_incremental:
        Self-checking mode: every skipped or extended pass is shadowed
        by a full reference scan and any divergence raises
        ``AssertionError``. O(full pass) per event — CI and debugging
        only.
    collect_perf:
        Install a :mod:`repro.perf` recorder around the run and attach
        its report as ``SimulationResult.perf``.
    validate_invariants:
        ``0`` (off) or N: run the :mod:`repro.validate` invariant
        checker — conservation, double-allocation, heap/running-set
        consistency, version monotonicity — every N event batches.
        Violations raise
        :class:`~repro.validate.InvariantViolation` and are counted
        as ``engine.invariant_violations`` in :mod:`repro.obs`.
        Cheaper than ``validate_state`` at N > 1 but covers more
        (engine-level invariants, not just the node arrays).
    """

    policy: str = "backfill"
    cost_model: CostModel = field(default_factory=CostModel)
    adjust_runtimes: bool = True
    validate_state: bool = False
    interrupt_policy: str = "requeue"
    checkpoint_interval: float = 3600.0
    force_full_pass: bool = False
    verify_incremental: bool = False
    collect_perf: bool = False
    validate_invariants: int = 0

    def __post_init__(self) -> None:
        require_policy(self.interrupt_policy)
        if self.checkpoint_interval <= 0:
            raise ValueError(
                f"checkpoint_interval must be > 0, got {self.checkpoint_interval}"
            )
        if self.validate_invariants < 0:
            raise ValueError(
                f"validate_invariants must be >= 0, got {self.validate_invariants}"
            )


@dataclass
class _Running:
    job: Job
    start_time: float
    finish_time: float
    nodes: np.ndarray
    cost_jobaware: Dict[str, float]
    cost_default: Dict[str, float]


class _JobStream:
    """Lazy arrival source for streaming runs (one job of lookahead).

    Wraps an arbitrary job iterator and exposes the engine's view of
    it: the next pending arrival (:attr:`head`), how many jobs have
    been handed to the run so far (:attr:`consumed` — the streaming
    checkpoint's resume cursor), and per-job validation as jobs cross
    the boundary. Jobs must arrive in non-decreasing submit order (the
    clock cannot run backwards); within one instant they enter the
    queue in stream order, which for a ``(submit_time, job_id)``-sorted
    stream is exactly the order the materialized path produces.

    Unlike the materialized path there is no whole-trace duplicate-id
    scan — the trace is never held in memory — so duplicate ids
    surface later, when the second copy reaches the cluster state.
    """

    __slots__ = ("_it", "_n_nodes", "_head", "_last_time", "consumed")

    def __init__(self, jobs: Iterable[Job], n_nodes: int) -> None:
        self._it = iter(jobs)
        self._n_nodes = n_nodes
        self._head: Optional[Job] = None
        self._last_time = 0.0
        self.consumed = 0
        self._advance()

    def _advance(self) -> None:
        try:
            job = next(self._it)
        except StopIteration:
            self._head = None
            return
        if job.nodes > self._n_nodes:
            raise ValueError(
                f"job {job.job_id} requests {job.nodes} nodes; the "
                f"cluster has {self._n_nodes} — it would block "
                "the queue forever"
            )
        if job.submit_time < self._last_time:
            raise ValueError(
                f"streaming jobs must arrive in non-decreasing submit "
                f"order; job {job.job_id} at t={job.submit_time} follows "
                f"t={self._last_time}"
            )
        self._last_time = job.submit_time
        self._head = job

    @property
    def head(self) -> Optional[Job]:
        """The next pending arrival, or ``None`` when exhausted."""
        return self._head

    @property
    def exhausted(self) -> bool:
        """True once the underlying iterator has no more jobs."""
        return self._head is None

    def take(self) -> Job:
        """Hand the head job to the run and advance the lookahead."""
        job = self._head
        assert job is not None
        self.consumed += 1
        self._advance()
        return job

    def skip(self, n: int) -> None:
        """Fast-forward past ``n`` already-consumed jobs (checkpoint resume)."""
        for _ in range(n):
            if self._head is None:
                raise ValueError(
                    f"stream ended after {self.consumed} job(s); the "
                    f"checkpoint had consumed {n} — resume needs the "
                    "same replayable stream the original run used"
                )
            self.take()


@dataclass
class _RunState:
    """Everything one in-progress :meth:`SchedulerEngine.run` owns.

    Extracted from the run loop's former local variables so a run can
    be paused, snapshotted, and resumed. ``batches_done`` counts the
    simultaneous-event batches processed — the unit ``checkpoint_every``
    and ``stop_after`` are measured in.

    The incremental-scheduling fields never enter a checkpoint: they
    are a pure optimization whose absence only costs one full pass
    after resume (``clean_version=None`` means "dirty"), keeping the
    snapshot format stable. ``queue_rev`` bumps on every queue append
    (submits and fault requeues); together with the state's version
    counter it is the scheduling dirty bit: an unchanged
    ``(version, queue_rev)`` pair after a pass that picked nothing
    proves the next pass would pick nothing too.
    """

    state: ClusterState
    events: EventQueue
    queue: List[Job]
    running: Dict[int, _Running]
    records: List[JobRecord]
    books: Dict[int, InterruptionBook]
    submits_left: int
    batches_done: int = 0
    views: RunningViews = field(default_factory=RunningViews)
    queue_rev: int = 0
    clean_version: Optional[int] = None
    clean_queue_rev: Optional[int] = None
    carry: Any = None
    #: The engine-owned perf recorder when ``collect_perf`` is on and no
    #: ambient recorder was installed. Lives on the run state (not the
    #: engine) so checkpoints carry it and a resumed ``--perf`` run
    #: reports whole-run counters, not just the post-resume tail.
    #: Ambient recorders (installed by callers via ``perf.collecting``)
    #: are never checkpointed: they may hold counts from outside this
    #: run, and keeping them out preserves byte-stable checkpoints for
    #: untraced runs.
    perf: Optional[PerfRecorder] = None
    #: Streaming mode: the lazy arrival source. ``None`` reproduces the
    #: materialized path exactly (all submits pre-pushed on the heap).
    stream: Optional[_JobStream] = None
    #: Where completed :class:`JobRecord` objects go. ``None`` appends
    #: to :attr:`records` (the classic O(jobs) result); a callable makes
    #: the run constant-memory — records are handed over as they finish
    #: and ``SimulationResult.records`` stays empty.
    record_sink: Optional[Callable[[JobRecord], None]] = None
    #: Records emitted so far (== ``len(records)`` without a sink);
    #: feeds the progress reporter in sink mode.
    records_emitted: int = 0


class SchedulerEngine:
    """One reusable (topology, allocator, config) simulation harness."""

    def __init__(
        self,
        topology: TreeTopology,
        allocator: Union[str, Allocator],
        config: Optional[EngineConfig] = None,
    ) -> None:
        self.topology = topology
        self.allocator = get_allocator(allocator) if isinstance(allocator, str) else allocator
        self.config = config or EngineConfig()
        self._policy: QueuePolicy = get_policy(self.config.policy)
        self._default = DefaultSlurmAllocator()
        #: statistics of the most recent :meth:`run` (reset per run)
        self.last_stats = SchedulerStats()
        #: the paused/in-progress run, when one exists
        self._run_state: Optional[_RunState] = None

    # ------------------------------------------------------------------

    def run(
        self,
        jobs: Optional[Iterable[Job]] = None,
        initial_state: Optional[ClusterState] = None,
        faults: Optional[Sequence[FaultEvent]] = None,
        *,
        stream: Optional[Iterable[Job]] = None,
        record_sink: Optional[Callable[[JobRecord], None]] = None,
        resume_from: Optional[Dict[str, Any]] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_path: Optional[Union[str, "os.PathLike", CheckpointStore]] = None,
        stop_after: Optional[int] = None,
        interrupt: Optional[Callable[[], bool]] = None,
        progress: Optional["ProgressReporter"] = None,
    ) -> Optional[SimulationResult]:
        """Simulate ``jobs`` to completion and return all records.

        ``initial_state`` lets callers start from a partially occupied
        cluster (the paper's *individual runs*, §5.4); pre-existing jobs
        in it are never released — they model long-running background
        load. The input state is copied, not mutated.

        ``faults`` injects NODE_DOWN / NODE_UP transitions (from
        :func:`repro.faults.generate_faults` or a replayed trace). A
        down event interrupts every running job holding an affected
        node per ``config.interrupt_policy``, then marks the nodes DOWN
        so subsequent allocations route around them. Jobs that can no
        longer fit by the time all events drain are returned in
        ``SimulationResult.unstarted``. Passing ``faults=None`` or an
        empty sequence reproduces the fault-free schedule exactly.

        Crash safety (see ``docs/resilience.md``):

        * ``checkpoint_path`` + ``checkpoint_every=N`` atomically write
          an engine checkpoint (:meth:`snapshot`) every N event batches;
        * ``resume_from`` (a checkpoint dict from
          :func:`~repro.scheduler.serialize.load_snapshot`) continues a
          checkpointed run — ``jobs``/``initial_state``/``faults`` must
          then be omitted, and the completed run is **bit-identical** to
          an uninterrupted one;
        * ``stop_after=N`` pauses the run after N event batches (writing
          a final checkpoint when ``checkpoint_path`` is set) and
          returns ``None``; the paused state stays on the engine for
          :meth:`snapshot`;
        * ``interrupt`` is polled once per batch; when it returns True
          the run writes a final checkpoint (if configured) and raises
          :class:`SimulationInterrupted`.

        Streaming mode (constant memory in trace length):

        * ``stream`` replaces ``jobs`` with a lazy iterator consumed one
          arrival at a time. Jobs must arrive in non-decreasing
          ``submit_time`` order, ties pre-sorted by ``job_id`` if the
          materialized path's tie-break order is wanted; the schedule is
          then **bit-identical** to ``run(jobs=list(stream))``. There is
          no whole-trace duplicate-id scan in this mode.
        * ``record_sink`` (works with either input form) receives each
          completed :class:`JobRecord` instead of accumulating it in
          ``SimulationResult.records``, making the result O(1) in jobs.
        * Checkpoints of a streaming run store only the *count* of
          arrivals consumed; ``run(resume_from=ckpt, stream=...)`` must
          be given the same replayable stream (e.g. the same
          :func:`~repro.workloads.stream_trace` call), which is
          fast-forwarded past the consumed prefix. ``record_sink`` is
          likewise not checkpointed — pass it again on resume; records
          emitted after the checkpoint was taken are re-emitted by the
          resumed run (sinks must be idempotent or resume-aware).

        ``progress`` installs a
        :class:`~repro.obs.progress.ProgressReporter` for the duration
        of the run: the loop feeds it one update per event batch
        (events processed, jobs finished, simulation clock). Purely
        diagnostic — results are identical with or without it.
        """
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ValueError(f"checkpoint_every must be > 0, got {checkpoint_every}")
        if checkpoint_every is not None and checkpoint_path is None:
            raise ValueError("checkpoint_every requires checkpoint_path")
        if stop_after is not None and stop_after <= 0:
            raise ValueError(f"stop_after must be > 0, got {stop_after}")
        if jobs is not None and stream is not None:
            raise ValueError("pass jobs or stream, not both")

        if resume_from is not None:
            if jobs is not None or initial_state is not None or faults is not None:
                raise ValueError(
                    "resume_from replaces jobs/initial_state/faults — "
                    "they all live inside the checkpoint"
                )
            stream_meta = resume_from.get("stream")
            if stream_meta is not None and stream is None:
                raise ValueError(
                    "this checkpoint belongs to a streaming run — pass "
                    "stream= with the same replayable trace the original "
                    "run used"
                )
            if stream_meta is None and stream is not None:
                raise ValueError(
                    "stream= given but the checkpoint is not from a "
                    "streaming run"
                )
            rs = self._restore_run_state(resume_from)
            if stream_meta is not None:
                assert stream is not None
                js = _JobStream(stream, self.topology.n_nodes)
                js.skip(int(stream_meta["consumed"]))
                rs.stream = js
            rs.record_sink = record_sink
        elif stream is not None:
            rs = self._begin_run([], initial_state, faults)
            rs.stream = _JobStream(stream, self.topology.n_nodes)
            rs.record_sink = record_sink
        else:
            if jobs is None:
                raise ValueError("run() needs jobs, stream, or resume_from=...")
            job_list = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
            if not job_list:
                return SimulationResult(self.allocator.name, [])
            rs = self._begin_run(job_list, initial_state, faults)
            rs.record_sink = record_sink

        if progress is not None:
            with obs_runtime.progressing(progress):
                return self._run_measured(
                    rs, checkpoint_every, checkpoint_path, stop_after, interrupt
                )
        return self._run_measured(
            rs, checkpoint_every, checkpoint_path, stop_after, interrupt
        )

    def _run_measured(
        self,
        rs: _RunState,
        checkpoint_every: Optional[int],
        checkpoint_path: Optional[Union[str, "os.PathLike", CheckpointStore]],
        stop_after: Optional[int],
        interrupt: Optional[Callable[[], bool]],
    ) -> Optional[SimulationResult]:
        """Drive the loop under the engine-owned perf recorder, if any.

        When ``collect_perf`` is set and no ambient recorder is
        installed, the run's recorder lives on the run state — reused
        across pause/resume within this process and carried through
        checkpoints (see :class:`_RunState`) — so the report attached
        to ``SimulationResult.perf`` always covers the whole run.
        """
        if self.config.collect_perf and perf.active() is None:
            recorder = rs.perf if rs.perf is not None else PerfRecorder()
            rs.perf = recorder
            with perf.collecting(recorder):
                result = self._drive(
                    rs, checkpoint_every, checkpoint_path, stop_after, interrupt
                )
            if result is not None:
                result.perf = recorder.snapshot()
            return result
        return self._drive(rs, checkpoint_every, checkpoint_path, stop_after, interrupt)

    def _begin_run(
        self,
        job_list: List[Job],
        initial_state: Optional[ClusterState],
        faults: Optional[Sequence[FaultEvent]],
    ) -> _RunState:
        seen_ids = set(r for r in ([] if initial_state is None else initial_state.running))
        for job in job_list:
            if job.nodes > self.topology.n_nodes:
                raise ValueError(
                    f"job {job.job_id} requests {job.nodes} nodes; the "
                    f"cluster has {self.topology.n_nodes} — it would block "
                    "the queue forever"
                )
            if job.job_id in seen_ids:
                raise ValueError(f"duplicate job id {job.job_id}")
            seen_ids.add(job.job_id)

        state = initial_state.copy() if initial_state is not None else ClusterState(self.topology)
        self.last_stats = SchedulerStats()
        events = EventQueue()
        for job in job_list:
            events.push(job.submit_time, EventKind.SUBMIT, job)
        for fault in faults or ():
            for node in fault.nodes:
                if not 0 <= node < self.topology.n_nodes:
                    raise ValueError(
                        f"fault at t={fault.time} names node {node}; the "
                        f"cluster has {self.topology.n_nodes} nodes"
                    )
            events.push(
                fault.time,
                EventKind.NODE_DOWN if fault.is_down else EventKind.NODE_UP,
                fault,
            )
        return _RunState(
            state=state,
            events=events,
            queue=[],
            running={},
            records=[],
            books={},
            submits_left=len(job_list),
        )

    def _drive(
        self,
        rs: _RunState,
        checkpoint_every: Optional[int],
        checkpoint_path: Optional[Union[str, "os.PathLike", CheckpointStore]],
        stop_after: Optional[int],
        interrupt: Optional[Callable[[], bool]],
    ) -> Optional[SimulationResult]:
        self._run_state = rs
        state, queue, running, records, books = (
            rs.state,
            rs.queue,
            rs.running,
            rs.records,
            rs.books,
        )
        checker = None
        if self.config.validate_invariants > 0:
            # Imported here: repro.validate reads engine internals via
            # duck typing and must stay importable without the engine.
            from ..validate import InvariantChecker

            checker = InvariantChecker()
        events = rs.events
        stream = rs.stream
        while events or (stream is not None and not stream.exhausted):
            if interrupt is not None and interrupt():
                if checkpoint_path is not None:
                    self._write_checkpoint(checkpoint_path)
                raise SimulationInterrupted(
                    str(checkpoint_path) if checkpoint_path is not None else None
                )
            # The clock ticks to whichever comes first: the earliest heap
            # event or the stream's next arrival. A pure-arrival tick has
            # an empty heap batch; arrivals at a heap-event instant join
            # that batch *after* its events — exactly where SUBMIT sorts
            # (last kind) on the materialized path, which is what keeps
            # streaming bit-identical to run(jobs=list(stream)).
            if stream is not None and not stream.exhausted:
                nxt = events.peek()
                if nxt is None or stream.head.submit_time < nxt.time:
                    now, batch = stream.head.submit_time, []
                else:
                    now, batch = events.pop_simultaneous()
            else:
                now, batch = events.pop_simultaneous()
            # FINISH events form a prefix of the batch (lowest kind
            # priority); releasing all of them in one vectorized pass
            # costs one counter update + one cache invalidation instead
            # of one per job. The sets are disjoint and nothing reads
            # the state between the releases, so the result is
            # bit-identical to sequential release (legacy mode keeps the
            # sequential path as the reference).
            n_finish = 0
            finals: List[_Running] = []
            for event in batch:
                if event.kind is not EventKind.FINISH:
                    break
                n_finish += 1
                finished: _Running = event.payload
                if running.get(finished.job.job_id) is not finished:
                    continue  # stale: this run was interrupted by a fault
                finals.append(finished)
            if finals:
                if len(finals) == 1 or is_legacy():
                    for finished in finals:
                        state.release(finished.job.job_id)
                else:
                    state.release_many([f.job.job_id for f in finals])
                for finished in finals:
                    del running[finished.job.job_id]
                    rs.views.remove(finished.job.job_id)
                    book = books.get(finished.job.job_id)
                    perf.count("engine.jobs_finished")
                    self._emit_record(
                        rs,
                        JobRecord(
                            job=finished.job,
                            start_time=finished.start_time,
                            finish_time=finished.finish_time,
                            nodes=finished.nodes,
                            cost_jobaware=finished.cost_jobaware,
                            cost_default=finished.cost_default,
                            requeues=book.requeues if book else 0,
                            wasted_node_seconds=book.wasted_node_seconds if book else 0.0,
                        ),
                    )
            for event in batch[n_finish:]:
                if event.kind is EventKind.NODE_DOWN:
                    self._apply_fault_down(now, rs, event.payload)
                elif event.kind is EventKind.NODE_UP:
                    state.mark_up(np.asarray(event.payload.nodes, dtype=np.int64))
                else:
                    queue.append(event.payload)
                    rs.submits_left -= 1
                    rs.queue_rev += 1
            arrivals = 0
            if stream is not None:
                while not stream.exhausted and stream.head.submit_time <= now:
                    queue.append(stream.take())
                    rs.queue_rev += 1
                    arrivals += 1
            perf.count("engine.events", len(batch) + arrivals)
            perf.count("engine.batches")
            self._schedule_pass(now, rs)
            if self.config.validate_state:
                state.validate()
            rs.batches_done += 1
            if (
                checker is not None
                and rs.batches_done % self.config.validate_invariants == 0
            ):
                checker.check_engine(self, rs)
            reporter = obs_runtime.progress()
            if reporter is not None:
                reporter.engine_batch(now, len(batch) + arrivals, rs.records_emitted)
            if stream is None:
                if rs.submits_left == 0 and not queue and not running:
                    break  # only fault events (or stale finishes) remain
                if not events:
                    break
            else:
                if stream.exhausted and not queue and not running:
                    break  # only fault events (or stale finishes) remain
                if not events and stream.exhausted:
                    break
            if (
                checkpoint_every is not None
                and rs.batches_done % checkpoint_every == 0
            ):
                self._write_checkpoint(checkpoint_path)
            if stop_after is not None and rs.batches_done >= stop_after:
                if checkpoint_path is not None:
                    self._write_checkpoint(checkpoint_path)
                return None  # paused; self._run_state holds the frozen run

        result = SimulationResult(self.allocator.name, records, unstarted=list(queue))
        self._run_state = None
        return result

    @staticmethod
    def _emit_record(rs: _RunState, record: JobRecord) -> None:
        """Hand a completed record to the sink, or keep it in memory."""
        if rs.record_sink is not None:
            rs.record_sink(record)
        else:
            rs.records.append(record)
        rs.records_emitted += 1

    # ------------------------------------------------------------------
    # checkpoint / resume
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Serialize the paused/in-progress run as a checkpoint dict.

        The snapshot captures the *entire* simulation state — pending
        event heap (in internal heap-array order, with the sequence
        counter), queue, running set, per-job interruption books,
        completed records, cluster node arrays, engine stats — plus the
        engine configuration and topology, so
        :meth:`from_snapshot` + ``run(resume_from=...)`` continues the
        run **bit-identically** to one that was never stopped.

        ``_Running`` entries are stored once in a reference table and
        pointed at by index: the engine detects stale FINISH events (a
        job interrupted by a fault and restarted) by object *identity*,
        so the heap's payload references and the running dict must
        resolve to the same objects after restore.
        """
        rs = self._run_state
        if rs is None:
            raise RuntimeError(
                "no run in progress — snapshot() only works on a run "
                "paused with stop_after or polled via checkpoint_every"
            )
        cfg = self.config
        entry_refs: Dict[int, int] = {}
        entries: List[Dict[str, Any]] = []

        def ref(entry: _Running) -> int:
            key = id(entry)
            idx = entry_refs.get(key)
            if idx is None:
                idx = len(entries)
                entry_refs[key] = idx
                entries.append(
                    {
                        "job": job_to_dict(entry.job),
                        "start_time": entry.start_time,
                        "finish_time": entry.finish_time,
                        "nodes": entry.nodes.tolist(),
                        "cost_jobaware": dict(entry.cost_jobaware),
                        "cost_default": dict(entry.cost_default),
                    }
                )
            return idx

        running_refs = [[job_id, ref(entry)] for job_id, entry in rs.running.items()]
        heap: List[Dict[str, Any]] = []
        for event in rs.events.snapshot_entries():
            if event.kind is EventKind.FINISH:
                payload: Dict[str, Any] = {"type": "finish", "ref": ref(event.payload)}
            elif event.kind is EventKind.SUBMIT:
                payload = {"type": "submit", "job": job_to_dict(event.payload)}
            else:
                payload = {"type": "fault", "fault": fault_to_dict(event.payload)}
            heap.append(
                {
                    "time": event.time,
                    "kind": int(event.kind),
                    "seq": event.seq,
                    "payload": payload,
                }
            )

        data: Dict[str, Any] = {
            "kind": SNAPSHOT_KIND,
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "engine": {
                "allocator": self.allocator.name,
                "policy": cfg.policy,
                "adjust_runtimes": cfg.adjust_runtimes,
                "validate_state": cfg.validate_state,
                "interrupt_policy": cfg.interrupt_policy,
                "checkpoint_interval": cfg.checkpoint_interval,
                "force_full_pass": cfg.force_full_pass,
                "verify_incremental": cfg.verify_incremental,
                "collect_perf": cfg.collect_perf,
                "validate_invariants": cfg.validate_invariants,
                "cost_model": {
                    "weight_by_msize": cfg.cost_model.weight_by_msize,
                    "contention": {
                        "uplink_discount": cfg.cost_model.contention.uplink_discount,
                        "per_level": cfg.cost_model.contention.per_level,
                    },
                },
            },
            "topology_conf": write_topology_conf(self.topology),
            "heap": heap,
            "next_seq": rs.events.next_seq,
            "running_entries": entries,
            "running_refs": running_refs,
            "queue": [job_to_dict(j) for j in rs.queue],
            "records": [record_to_dict(r) for r in rs.records],
            "books": [[job_id, asdict(book)] for job_id, book in rs.books.items()],
            "submits_left": rs.submits_left,
            "batches_done": rs.batches_done,
            "stats": asdict(self.last_stats),
            "state": rs.state.snapshot_dict(),
            # Reserved: the engine is RNG-free today; a future stochastic
            # extension must checkpoint its generator state here.
            "rng": None,
        }
        # The engine-owned perf recorder rides along so a resumed --perf
        # run reports whole-run counters. Key absent (not null) when perf
        # is off, keeping untraced checkpoints byte-identical to PR 3's.
        if rs.perf is not None:
            data["perf"] = rs.perf.state_dict()
        # Streaming checkpoints store only the resume cursor — the trace
        # itself is regenerated by the replayable stream on resume (the
        # head-of-stream lookahead job is *not* consumed). Key absent on
        # materialized runs, keeping their checkpoints byte-identical.
        if rs.stream is not None:
            data["stream"] = {"consumed": rs.stream.consumed}
        return data

    def _write_checkpoint(
        self, path: Union[str, "os.PathLike", CheckpointStore]
    ) -> None:
        perf.count("engine.checkpoints_written")
        with perf.timer("engine.checkpoint_write"):
            if isinstance(path, CheckpointStore):
                path.write(self.snapshot())
            else:
                dump_snapshot(self.snapshot(), path)

    def _restore_run_state(self, data: Dict[str, Any]) -> _RunState:
        """Rebuild a :class:`_RunState` from a checkpoint dict."""
        if data.get("kind") != SNAPSHOT_KIND:
            raise ValueError(f"not an engine checkpoint: kind={data.get('kind')!r}")
        meta = data["engine"]
        if meta["allocator"] != self.allocator.name:
            raise ValueError(
                f"checkpoint was taken under allocator {meta['allocator']!r}; "
                f"this engine uses {self.allocator.name!r}"
            )
        if meta["policy"] != self.config.policy:
            raise ValueError(
                f"checkpoint was taken under policy {meta['policy']!r}; "
                f"this engine uses {self.config.policy!r}"
            )
        ckpt_topology = parse_topology_conf(data["topology_conf"])
        if ckpt_topology.n_nodes != self.topology.n_nodes:
            raise ValueError(
                f"checkpoint topology has {ckpt_topology.n_nodes} nodes; "
                f"this engine's has {self.topology.n_nodes}"
            )

        entries = [
            _Running(
                job=job_from_dict(e["job"]),
                start_time=float(e["start_time"]),
                finish_time=float(e["finish_time"]),
                nodes=np.asarray(e["nodes"], dtype=np.int64),
                cost_jobaware={k: float(v) for k, v in e["cost_jobaware"].items()},
                cost_default={k: float(v) for k, v in e["cost_default"].items()},
            )
            for e in data["running_entries"]
        ]
        heap_events: List[Event] = []
        for ev in data["heap"]:
            payload_data = ev["payload"]
            ptype = payload_data["type"]
            if ptype == "finish":
                payload: Any = entries[payload_data["ref"]]
            elif ptype == "submit":
                payload = job_from_dict(payload_data["job"])
            elif ptype == "fault":
                payload = fault_from_dict(payload_data["fault"])
            else:
                raise ValueError(f"unknown checkpoint event payload type {ptype!r}")
            heap_events.append(
                Event(
                    time=float(ev["time"]),
                    kind=EventKind(ev["kind"]),
                    seq=int(ev["seq"]),
                    payload=payload,
                )
            )
        events = EventQueue.restore(heap_events, int(data["next_seq"]))
        running = {int(job_id): entries[idx] for job_id, idx in data["running_refs"]}
        books = {
            int(job_id): InterruptionBook(**book) for job_id, book in data["books"]
        }
        self.last_stats = SchedulerStats(**data["stats"])
        rs = _RunState(
            state=ClusterState.from_snapshot_dict(self.topology, data["state"]),
            events=events,
            queue=[job_from_dict(j) for j in data["queue"]],
            running=running,
            records=[record_from_dict(r) for r in data["records"]],
            books=books,
            submits_left=int(data["submits_left"]),
            batches_done=int(data["batches_done"]),
        )
        # Rebuild the finish-ordered views in the stored start order; the
        # incremental carry is deliberately not checkpointed, so a resumed
        # run starts "dirty" and re-proves cleanliness with one full pass.
        for job_id, entry in running.items():
            rs.views.add(job_id, entry.finish_time, len(entry.nodes))
        # Carry the checkpointed perf counters forward (key absent on
        # checkpoints taken without --perf, including all pre-obs ones).
        perf_state = data.get("perf")
        if perf_state is not None:
            rs.perf = PerfRecorder.from_state(perf_state)
        rs.records_emitted = len(rs.records)
        return rs

    @classmethod
    def from_snapshot(
        cls,
        data: Dict[str, Any],
        *,
        topology: Optional[TreeTopology] = None,
        allocator: Optional[Union[str, Allocator]] = None,
        config: Optional[EngineConfig] = None,
    ) -> "SchedulerEngine":
        """Build an engine whose configuration matches a checkpoint.

        By default everything — topology, allocator, engine config —
        is reconstructed from the checkpoint itself, so
        ``SchedulerEngine.from_snapshot(ckpt).run(resume_from=ckpt)``
        is all a resume takes. Each piece can be overridden (e.g. to
        reuse an already-parsed topology object).
        """
        if data.get("kind") != SNAPSHOT_KIND:
            raise ValueError(f"not an engine checkpoint: kind={data.get('kind')!r}")
        meta = data["engine"]
        if topology is None:
            topology = parse_topology_conf(data["topology_conf"])
        if allocator is None:
            allocator = meta["allocator"]
        if config is None:
            cm = meta["cost_model"]
            config = EngineConfig(
                policy=meta["policy"],
                cost_model=CostModel(
                    weight_by_msize=bool(cm["weight_by_msize"]),
                    contention=ContentionModel(
                        uplink_discount=float(cm["contention"]["uplink_discount"]),
                        per_level=bool(cm["contention"]["per_level"]),
                    ),
                ),
                adjust_runtimes=bool(meta["adjust_runtimes"]),
                validate_state=bool(meta["validate_state"]),
                interrupt_policy=meta["interrupt_policy"],
                checkpoint_interval=float(meta["checkpoint_interval"]),
                # absent in pre-PR-4 (still format v3) checkpoints
                force_full_pass=bool(meta.get("force_full_pass", False)),
                verify_incremental=bool(meta.get("verify_incremental", False)),
                collect_perf=bool(meta.get("collect_perf", False)),
                # absent in pre-chaos (v3-footer-less) checkpoints
                validate_invariants=int(meta.get("validate_invariants", 0)),
            )
        return cls(topology, allocator, config)

    def _apply_fault_down(self, now: float, rs: _RunState, fault: FaultEvent) -> None:
        """Interrupt jobs touching the failed nodes, then mark them DOWN."""
        cfg = self.config
        state, queue, running, books = (
            rs.state,
            rs.queue,
            rs.running,
            rs.books,
        )
        nodes = np.asarray(fault.nodes, dtype=np.int64)
        self.last_stats.faults_injected += 1
        perf.count("engine.faults_injected")
        for job_id in state.jobs_on(nodes):
            entry = running.pop(job_id, None)
            if entry is None:
                raise RuntimeError(
                    f"node {fault.nodes} occupied by job {job_id} not tracked as "
                    "running — faults cannot interrupt initial_state background jobs"
                )
            state.release(job_id)
            rs.views.remove(job_id)
            book = books.setdefault(job_id, InterruptionBook())
            self.last_stats.jobs_interrupted += 1
            perf.count("engine.jobs_interrupted")
            requeued = book.interrupt(
                cfg.interrupt_policy,
                start_time=entry.start_time,
                now=now,
                duration=entry.finish_time - entry.start_time,
                nodes=entry.job.nodes,
                checkpoint_interval=cfg.checkpoint_interval,
            )
            if requeued:
                self.last_stats.jobs_requeued += 1
                perf.count("engine.jobs_requeued")
                queue.append(entry.job)
                rs.queue_rev += 1
            else:
                self.last_stats.jobs_failed += 1
                perf.count("engine.jobs_failed")
                self._emit_record(
                    rs,
                    JobRecord(
                        job=entry.job,
                        start_time=entry.start_time,
                        finish_time=now,
                        nodes=entry.nodes,
                        cost_jobaware=entry.cost_jobaware,
                        cost_default=entry.cost_default,
                        requeues=book.requeues,
                        wasted_node_seconds=book.wasted_node_seconds,
                        failed=True,
                    ),
                )
        state.mark_down(nodes)

    # ------------------------------------------------------------------

    def _schedule_pass(self, now: float, rs: _RunState) -> None:
        queue = rs.queue
        if not queue:
            return
        state = rs.state
        cfg = self.config
        policy = self._policy
        incremental_ok = not cfg.force_full_pass and getattr(
            policy, "incremental_ok", False
        )

        if incremental_ok and rs.clean_version == state.version:
            # No job started/finished/faulted since a pass that picked
            # nothing. If the queue is also unchanged, the pass would
            # reproduce that nothing; if only appends happened, the
            # carried facts evaluate just the appended suffix.
            if rs.clean_queue_rev == rs.queue_rev:
                self.last_stats.schedule_passes_skipped += 1
                perf.count("engine.passes_skipped")
                if cfg.verify_incremental:
                    self._verify_no_picks(now, rs, "skipped")
                return
            if rs.carry is not None:
                self.last_stats.schedule_passes_incremental += 1
                perf.count("engine.passes_incremental")
                with perf.timer("engine.schedule_pass"):
                    picks, carry = policy.extend_pass(now, queue, rs.views, rs.carry)
                if cfg.verify_incremental:
                    self._verify_picks(now, rs, picks, "extended")
                if not picks:
                    rs.carry = carry
                    rs.clean_queue_rev = rs.queue_rev
                    return
                self._mark_dirty(rs)
                self._apply_picks(now, rs, picks)
                return

        self.last_stats.schedule_passes += 1
        perf.count("engine.passes_full")
        free = state.total_free
        if incremental_ok:
            with perf.timer("engine.schedule_pass"):
                picks, carry = policy.begin_pass(now, queue, free, rs.views)
            if not picks:
                rs.carry = carry
                rs.clean_version = state.version
                rs.clean_queue_rev = rs.queue_rev
                return
            self._mark_dirty(rs)
        else:
            # Reference path (force_full_pass or a policy without the
            # incremental protocol): rebuild plain views every pass and
            # never skip — the pre-incremental engine, verbatim.
            views = [
                RunningJobView(finish_estimate=r.finish_time, nodes=len(r.nodes))
                for r in rs.running.values()
            ]
            with perf.timer("engine.schedule_pass"):
                picks = policy.select_startable(now, queue, free, views)
            if not picks:
                return
        self._apply_picks(now, rs, picks)

    @staticmethod
    def _mark_dirty(rs: _RunState) -> None:
        rs.carry = None
        rs.clean_version = None
        rs.clean_queue_rev = None

    def _reference_picks(self, rs: _RunState, now: float) -> List[int]:
        views = [
            RunningJobView(finish_estimate=r.finish_time, nodes=len(r.nodes))
            for r in rs.running.values()
        ]
        return self._policy.select_startable(now, rs.queue, rs.state.total_free, views)

    def _verify_no_picks(self, now: float, rs: _RunState, what: str) -> None:
        reference = self._reference_picks(rs, now)
        if reference:
            raise AssertionError(
                f"pass-skip invariant violated: {what} pass at t={now} "
                f"but a full reference pass picks {reference}"
            )

    def _verify_picks(
        self, now: float, rs: _RunState, picks: List[int], what: str
    ) -> None:
        reference = self._reference_picks(rs, now)
        if reference != picks:
            raise AssertionError(
                f"pass-skip invariant violated: {what} pass at t={now} "
                f"picks {picks} but a full reference pass picks {reference}"
            )

    def _apply_picks(self, now: float, rs: _RunState, picks: List[int]) -> None:
        queue = rs.queue
        # A pick is a backfill when any earlier-queued job was left
        # behind, i.e. its index exceeds its position among the
        # (ascending) picked indices.
        for pos, idx in enumerate(sorted(picks)):
            if idx != pos:
                self.last_stats.jobs_backfilled += 1
        # Start in policy order; remove from the queue afterwards so the
        # policy's indices stay valid.
        started: List[Job] = []
        for idx in picks:
            started.append(queue[idx])
        for idx in sorted(picks, reverse=True):
            del queue[idx]
        for job in started:
            book = rs.books.get(job.job_id)
            self.start_job(
                now,
                rs.state,
                job,
                rs.running,
                rs.events,
                remaining=book.remaining if book else 1.0,
                views=rs.views,
            )

    def start_job(
        self,
        now: float,
        state: ClusterState,
        job: Job,
        running: Dict[int, _Running],
        events: EventQueue,
        remaining: float = 1.0,
        views: Optional[RunningViews] = None,
    ) -> _Running:
        """Allocate, price, Eq.-7-adjust, and schedule completion of ``job``.

        ``remaining`` scales the scheduled wall duration for
        checkpoint-resumed jobs (fraction of total work left, from
        :class:`~repro.faults.policy.InterruptionBook`). ``views`` is the
        run's incrementally maintained :class:`RunningViews`, updated in
        lockstep with ``running`` when given.
        """
        cfg = self.config
        perf.count("engine.jobs_started")
        needs_counterfactual = (
            job.is_comm_intensive and self.allocator.name != self._default.name
        )
        # Both allocators read the same pre-allocation state (neither
        # mutates it); the counterfactual is captured as a cheap per-leaf
        # overlay instead of an O(n_nodes) state copy.
        with perf.timer("engine.allocator"):
            default_nodes = (
                self._default.allocate(state, job) if needs_counterfactual else None
            )
            nodes = self.allocator.allocate(state, job)
        with perf.timer("engine.counterfactual"):
            # the node set came straight out of the default allocator
            # against this same state, so skip the overlay's validation
            default_view = (
                state.comm_overlay(default_nodes, job.kind, validate=is_legacy())
                if needs_counterfactual
                else None
            )
        aware: Optional[Dict] = None
        if job.is_comm_intensive and not is_legacy():
            # Price the chosen allocation on a pre-allocation overlay:
            # its per-leaf counters equal the post-allocation state's,
            # so the costs are bit-identical — but pricing *before*
            # ``state.allocate`` (which clears the version-tagged cost
            # cache) turns the adaptive allocator's pricing of this
            # same candidate into cache hits instead of re-evaluations.
            aware_view = state.comm_overlay(nodes, job.kind, validate=False)
            aware = {
                comp.pattern: cfg.cost_model.allocation_cost(
                    aware_view, nodes, comp.pattern
                )
                for comp in job.comm
            }
        state.allocate(job.job_id, nodes, job.kind)

        cost_jobaware: Dict[str, float] = {}
        cost_default: Dict[str, float] = {}
        runtime = job.runtime
        if job.is_comm_intensive:
            if aware is None:
                aware = {
                    comp.pattern: cfg.cost_model.allocation_cost(
                        state, nodes, comp.pattern
                    )
                    for comp in job.comm
                }
            if needs_counterfactual:
                assert default_view is not None and default_nodes is not None
                self.last_stats.counterfactual_evaluations += 1
                if not is_legacy() and np.array_equal(default_nodes, nodes):
                    # the job-aware allocator picked exactly the default
                    # placement — same nodes, same overlay counters,
                    # same costs, so the aware prices carry over
                    default = dict(aware)
                else:
                    default = {
                        comp.pattern: cfg.cost_model.allocation_cost(
                            default_view, default_nodes, comp.pattern
                        )
                        for comp in job.comm
                    }
            else:
                default = dict(aware)
            if cfg.adjust_runtimes:
                runtime = cfg.cost_model.adjusted_runtime(job, aware, default)
            cost_jobaware = {p.name: c for p, c in aware.items()}
            cost_default = {p.name: c for p, c in default.items()}

        entry = _Running(
            job=job,
            start_time=now,
            finish_time=now + runtime * remaining,
            nodes=nodes,
            cost_jobaware=cost_jobaware,
            cost_default=cost_default,
        )
        running[job.job_id] = entry
        if views is not None:
            views.add(job.job_id, entry.finish_time, len(nodes))
        events.push(entry.finish_time, EventKind.FINISH, entry)
        return entry


def simulate(
    topology: TreeTopology,
    jobs: Sequence[Job],
    allocator: Union[str, Allocator],
    *,
    config: Optional[EngineConfig] = None,
    initial_state: Optional[ClusterState] = None,
    faults: Optional[Sequence[FaultEvent]] = None,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`SchedulerEngine`."""
    return SchedulerEngine(topology, allocator, config).run(jobs, initial_state, faults)
