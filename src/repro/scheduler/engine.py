"""Discrete-event scheduling simulator (the paper's emulated SLURM, §5).

The paper replays job logs through a modified SLURM in front-end
emulation mode: jobs occupy nodes for their logged durations, and a
communication-intensive job's duration is rescaled by Eq. 7 — the ratio
of its Eq. 6 communication cost under the job-aware allocation to the
cost under the allocation the *default* algorithm would have produced
from the same cluster state. This engine does exactly that, replacing
the 2-5 day wall-clock emulation with an event loop:

1. all submissions are queued as events;
2. on every submission or completion, a scheduling pass runs the queue
   policy (FIFO or EASY backfill) over the pending queue;
3. a started job gets nodes from the run's allocator; if it is
   communication-intensive, the default allocator is also run against
   the pre-allocation state and its hypothetical placement is priced on
   a per-leaf counter overlay (no state copy) to get the counterfactual,
   and the job's runtime is adjusted per Eq. 7;
4. completions free nodes and trigger the next pass.

Wait-time improvements in the paper are *emergent*: shorter adjusted
runtimes release nodes earlier, which this loop reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from ..allocation.base import Allocator
from ..allocation.default_slurm import DefaultSlurmAllocator
from ..allocation.registry import get_allocator
from ..cluster.job import Job
from ..cluster.state import ClusterState
from ..cost.model import CostModel
from ..topology.tree import TreeTopology
from .events import EventKind, EventQueue
from .metrics import JobRecord, SimulationResult
from .queue_policy import QueuePolicy, RunningJobView, get_policy

__all__ = ["EngineConfig", "SchedulerEngine", "SchedulerStats", "simulate"]


@dataclass
class SchedulerStats:
    """Bookkeeping about one run's scheduling activity.

    Attributes
    ----------
    schedule_passes:
        How many times the queue policy was consulted.
    jobs_backfilled:
        Starts that jumped at least one earlier-submitted queued job.
    counterfactual_evaluations:
        Default-allocator counterfactual pricings performed (one per
        communication-intensive start under a non-default allocator).
    """

    schedule_passes: int = 0
    jobs_backfilled: int = 0
    counterfactual_evaluations: int = 0


@dataclass(frozen=True)
class EngineConfig:
    """Engine knobs.

    Attributes
    ----------
    policy:
        ``"backfill"`` (SLURM default, used in the paper) or ``"fifo"``.
    cost_model:
        Eq. 6 configuration shared by runtime adjustment and recording.
    adjust_runtimes:
        Apply Eq. 7. Disable for ablations where only the placement
        (not the modeled speedup) should differ between allocators.
    validate_state:
        Run :meth:`ClusterState.validate` after every mutation — O(nodes)
        per event, for tests and debugging only.
    """

    policy: str = "backfill"
    cost_model: CostModel = field(default_factory=CostModel)
    adjust_runtimes: bool = True
    validate_state: bool = False


@dataclass
class _Running:
    job: Job
    start_time: float
    finish_time: float
    nodes: np.ndarray
    cost_jobaware: Dict[str, float]
    cost_default: Dict[str, float]


class SchedulerEngine:
    """One reusable (topology, allocator, config) simulation harness."""

    def __init__(
        self,
        topology: TreeTopology,
        allocator: Union[str, Allocator],
        config: Optional[EngineConfig] = None,
    ) -> None:
        self.topology = topology
        self.allocator = get_allocator(allocator) if isinstance(allocator, str) else allocator
        self.config = config or EngineConfig()
        self._policy: QueuePolicy = get_policy(self.config.policy)
        self._default = DefaultSlurmAllocator()
        #: statistics of the most recent :meth:`run` (reset per run)
        self.last_stats = SchedulerStats()

    # ------------------------------------------------------------------

    def run(
        self,
        jobs: Iterable[Job],
        initial_state: Optional[ClusterState] = None,
    ) -> SimulationResult:
        """Simulate ``jobs`` to completion and return all records.

        ``initial_state`` lets callers start from a partially occupied
        cluster (the paper's *individual runs*, §5.4); pre-existing jobs
        in it are never released — they model long-running background
        load. The input state is copied, not mutated.
        """
        job_list = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        if not job_list:
            return SimulationResult(self.allocator.name, [])
        seen_ids = set(r for r in ([] if initial_state is None else initial_state.running))
        for job in job_list:
            if job.nodes > self.topology.n_nodes:
                raise ValueError(
                    f"job {job.job_id} requests {job.nodes} nodes; the "
                    f"cluster has {self.topology.n_nodes} — it would block "
                    "the queue forever"
                )
            if job.job_id in seen_ids:
                raise ValueError(f"duplicate job id {job.job_id}")
            seen_ids.add(job.job_id)

        state = initial_state.copy() if initial_state is not None else ClusterState(self.topology)
        self.last_stats = SchedulerStats()
        events = EventQueue()
        for job in job_list:
            events.push(job.submit_time, EventKind.SUBMIT, job)

        queue: List[Job] = []
        running: Dict[int, _Running] = {}
        records: List[JobRecord] = []

        while events:
            now, batch = events.pop_simultaneous()
            for event in batch:
                if event.kind is EventKind.FINISH:
                    finished: _Running = event.payload
                    state.release(finished.job.job_id)
                    del running[finished.job.job_id]
                    records.append(
                        JobRecord(
                            job=finished.job,
                            start_time=finished.start_time,
                            finish_time=finished.finish_time,
                            nodes=finished.nodes,
                            cost_jobaware=finished.cost_jobaware,
                            cost_default=finished.cost_default,
                        )
                    )
                else:
                    queue.append(event.payload)
            self._schedule_pass(now, state, queue, running, events)
            if self.config.validate_state:
                state.validate()

        return SimulationResult(self.allocator.name, records)

    # ------------------------------------------------------------------

    def _schedule_pass(
        self,
        now: float,
        state: ClusterState,
        queue: List[Job],
        running: Dict[int, _Running],
        events: EventQueue,
    ) -> None:
        if not queue:
            return
        self.last_stats.schedule_passes += 1
        views = [
            RunningJobView(finish_estimate=r.finish_time, nodes=len(r.nodes))
            for r in running.values()
        ]
        picks = self._policy.select_startable(now, queue, state.total_free, views)
        picked_set = set(picks)
        for idx in picks:
            if any(j not in picked_set for j in range(idx)):
                self.last_stats.jobs_backfilled += 1
        # Start in policy order; remove from the queue afterwards so the
        # policy's indices stay valid.
        started: List[Job] = []
        for idx in picks:
            started.append(queue[idx])
        for idx in sorted(picks, reverse=True):
            del queue[idx]
        for job in started:
            self.start_job(now, state, job, running, events)

    def start_job(
        self,
        now: float,
        state: ClusterState,
        job: Job,
        running: Dict[int, _Running],
        events: EventQueue,
    ) -> _Running:
        """Allocate, price, Eq.-7-adjust, and schedule completion of ``job``."""
        cfg = self.config
        needs_counterfactual = (
            job.is_comm_intensive and self.allocator.name != self._default.name
        )
        # Both allocators read the same pre-allocation state (neither
        # mutates it); the counterfactual is captured as a cheap per-leaf
        # overlay instead of an O(n_nodes) state copy.
        default_nodes = (
            self._default.allocate(state, job) if needs_counterfactual else None
        )
        nodes = self.allocator.allocate(state, job)
        default_view = (
            state.comm_overlay(default_nodes, job.kind)
            if needs_counterfactual
            else None
        )
        state.allocate(job.job_id, nodes, job.kind)

        cost_jobaware: Dict[str, float] = {}
        cost_default: Dict[str, float] = {}
        runtime = job.runtime
        if job.is_comm_intensive:
            aware = {
                comp.pattern: cfg.cost_model.allocation_cost(state, nodes, comp.pattern)
                for comp in job.comm
            }
            if needs_counterfactual:
                assert default_view is not None and default_nodes is not None
                self.last_stats.counterfactual_evaluations += 1
                default = {
                    comp.pattern: cfg.cost_model.allocation_cost(
                        default_view, default_nodes, comp.pattern
                    )
                    for comp in job.comm
                }
            else:
                default = dict(aware)
            if cfg.adjust_runtimes:
                runtime = cfg.cost_model.adjusted_runtime(job, aware, default)
            cost_jobaware = {p.name: c for p, c in aware.items()}
            cost_default = {p.name: c for p, c in default.items()}

        entry = _Running(
            job=job,
            start_time=now,
            finish_time=now + runtime,
            nodes=nodes,
            cost_jobaware=cost_jobaware,
            cost_default=cost_default,
        )
        running[job.job_id] = entry
        events.push(entry.finish_time, EventKind.FINISH, entry)
        return entry


def simulate(
    topology: TreeTopology,
    jobs: Sequence[Job],
    allocator: Union[str, Allocator],
    *,
    config: Optional[EngineConfig] = None,
    initial_state: Optional[ClusterState] = None,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`SchedulerEngine`."""
    return SchedulerEngine(topology, allocator, config).run(jobs, initial_state)
