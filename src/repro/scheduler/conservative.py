"""Conservative backfilling — a stricter cousin of EASY (extension).

EASY reserves only for the queue head; a backfilled job may still delay
jobs deeper in the queue. *Conservative* backfilling gives **every**
queued job a reservation and admits a candidate only if it delays none
of them. SLURM's ``sched/backfill`` approximates conservative when
``bf_max_job_test`` is large, so this is a realistic policy ablation
for the paper's wait-time results.

Implementation: the canonical availability-profile walk. Node
availability over future time is a step function seeded from running
jobs' expected completions; queued jobs are processed in FIFO order,
each placed at the earliest interval that fits and *reserved* there —
jobs whose reservation lands at the current instant start now.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence

from ..cluster.job import Job
from .queue_policy import RunningJobView

__all__ = ["ConservativeBackfillPolicy"]


class _AvailabilityProfile:
    """Piecewise-constant available-node count over [now, infinity).

    ``avail[i]`` holds on ``[times[i], times[i+1])``; the last segment
    extends to infinity.
    """

    def __init__(self, now: float, free: int, running: Sequence[RunningJobView]) -> None:
        self.times: List[float] = [now]
        self.avail: List[int] = [free]
        for view in sorted(running, key=lambda v: v.finish_estimate):
            t = max(view.finish_estimate, now)
            i = self._breakpoint(t)
            for j in range(i, len(self.avail)):
                self.avail[j] += view.nodes

    def _breakpoint(self, t: float) -> int:
        """Index of the segment starting exactly at ``t``, inserting it."""
        i = bisect.bisect_left(self.times, t)
        if i == len(self.times) or self.times[i] != t:
            # split the segment containing t (it is the one at i-1)
            self.times.insert(i, t)
            self.avail.insert(i, self.avail[i - 1])
        return i

    def earliest_fit(self, nodes: int, duration: float) -> float:
        """Earliest start with >= ``nodes`` free throughout ``duration``.

        Returns ``inf`` when no amount of waiting helps (the request
        exceeds even the fully drained availability — possible with
        permanent background load from ``initial_state``).
        """
        for i, start in enumerate(self.times):
            end = start + duration
            ok = True
            k = i
            # check every segment overlapping [start, end)
            while k < len(self.times) and self.times[k] < end:
                if self.avail[k] < nodes:
                    ok = False
                    break
                k += 1
            if ok:
                return start
        return float("inf")

    def reserve(self, start: float, duration: float, nodes: int) -> None:
        """Subtract ``nodes`` over ``[start, start + duration)``."""
        if duration <= 0:
            return
        i = self._breakpoint(start)
        end = start + duration
        j = self._breakpoint(end)
        for k in range(i, j):
            self.avail[k] -= nodes


class ConservativeBackfillPolicy:
    """Backfill with a reservation for every queued job."""

    name = "conservative"

    def select_startable(
        self,
        now: float,
        queue: Sequence[Job],
        free_nodes: int,
        running: Sequence[RunningJobView],
    ) -> List[int]:
        profile = _AvailabilityProfile(now, free_nodes, running)
        picks: List[int] = []
        for idx, job in enumerate(queue):
            duration = max(job.runtime, 1e-9)
            start = profile.earliest_fit(job.nodes, duration)
            if start == float("inf"):
                continue  # can never fit (permanent background load)
            profile.reserve(start, duration, job.nodes)
            if start == now:
                picks.append(idx)
        return picks
