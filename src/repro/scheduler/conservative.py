"""Conservative backfilling — a stricter cousin of EASY (extension).

EASY reserves only for the queue head; a backfilled job may still delay
jobs deeper in the queue. *Conservative* backfilling gives **every**
queued job a reservation and admits a candidate only if it delays none
of them. SLURM's ``sched/backfill`` approximates conservative when
``bf_max_job_test`` is large, so this is a realistic policy ablation
for the paper's wait-time results.

Implementation: the canonical availability-profile walk. Node
availability over future time is a step function seeded from running
jobs' expected completions; queued jobs are processed in FIFO order,
each placed at the earliest interval that fits and *reserved* there —
jobs whose reservation lands at the current instant start now.

The profile is seeded with one cumulative walk over the finish-sorted
running jobs (O(R log R) overall) instead of re-adding each job to
every later segment (O(R^2)); and a failed pass carries its fully
*reserved* profile forward, so jobs that arrive before anything else
changes are placed against the stored timeline instead of rebuilding
and re-reserving the whole queue from scratch (the O(Q^2) hot path this
policy showed on large traces). Replaying the carry is sound because
every stored breakpoint beyond the leading segment is strictly in the
future: availability only rises at running-job finish estimates (all
later than any carried-to instant — an earlier finish would have fired
a FINISH event and invalidated the carry) and reservations start at
those rises (a reservation starting "now" means the job started, which
also invalidates the carry).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .._perfflags import is_legacy
from ..cluster.job import Job
from .queue_policy import RunningFacts, iter_running_by_finish

__all__ = ["ConservativeBackfillPolicy", "ConservativeCarry"]


class _AvailabilityProfile:
    """Piecewise-constant available-node count over [now, infinity).

    ``avail[i]`` holds on ``[times[i], times[i+1])``; the last segment
    extends to infinity.
    """

    def __init__(self, now: float, free: int, running: RunningFacts) -> None:
        self.times: List[float] = [now]
        self.avail: List[int] = [free]
        if is_legacy():
            for finish, nodes in iter_running_by_finish(running):
                t = max(finish, now)
                i = self._breakpoint(t)
                for j in range(i, len(self.avail)):
                    self.avail[j] += nodes
            return
        # One cumulative walk over the finish-sorted jobs: availability
        # at time t is free + sum(nodes finishing at or before t), so
        # grouping equal (clamped) finish times and accumulating builds
        # every segment directly.
        pairs = list(iter_running_by_finish(running))
        cum = free
        i = 0
        while i < len(pairs):
            t = max(pairs[i][0], now)
            add = 0
            while i < len(pairs) and max(pairs[i][0], now) == t:
                add += pairs[i][1]
                i += 1
            cum += add
            if t == now:
                self.avail[0] = cum
            else:
                self.times.append(t)
                self.avail.append(cum)

    @classmethod
    def from_carry(
        cls, now: float, times: Sequence[float], avail: Sequence[int]
    ) -> "_AvailabilityProfile":
        """Rehydrate a carried (already reserved) profile at a later now.

        Only the leading segment's start is moved up to ``now`` — every
        other breakpoint is strictly later (see module docstring), so
        the step function over ``[now, inf)`` is unchanged.
        """
        profile = cls.__new__(cls)
        profile.times = list(times)
        profile.avail = list(avail)
        profile.times[0] = now
        return profile

    def _breakpoint(self, t: float) -> int:
        """Index of the segment starting exactly at ``t``, inserting it."""
        i = bisect.bisect_left(self.times, t)
        if i == len(self.times) or self.times[i] != t:
            # split the segment containing t (it is the one at i-1)
            self.times.insert(i, t)
            self.avail.insert(i, self.avail[i - 1])
        return i

    def earliest_fit(self, nodes: int, duration: float) -> float:
        """Earliest start with >= ``nodes`` free throughout ``duration``.

        Returns ``inf`` when no amount of waiting helps (the request
        exceeds even the fully drained availability — possible with
        permanent background load from ``initial_state``).
        """
        for i, start in enumerate(self.times):
            end = start + duration
            ok = True
            k = i
            # check every segment overlapping [start, end)
            while k < len(self.times) and self.times[k] < end:
                if self.avail[k] < nodes:
                    ok = False
                    break
                k += 1
            if ok:
                return start
        return float("inf")

    def reserve(self, start: float, duration: float, nodes: int) -> None:
        """Subtract ``nodes`` over ``[start, start + duration)``."""
        if duration <= 0:
            return
        i = self._breakpoint(start)
        end = start + duration
        j = self._breakpoint(end)
        for k in range(i, j):
            self.avail[k] -= nodes


@dataclass
class ConservativeCarry:
    """A failed pass's reserved availability timeline, for extensions."""

    scanned: int
    times: Tuple[float, ...]
    avail: Tuple[int, ...]


class ConservativeBackfillPolicy:
    """Backfill with a reservation for every queued job."""

    name = "conservative"
    incremental_ok = True

    def select_startable(
        self,
        now: float,
        queue: Sequence[Job],
        free_nodes: int,
        running: RunningFacts,
    ) -> List[int]:
        """Return queue indices to start now (full conservative pass)."""
        picks, _ = self.begin_pass(now, queue, free_nodes, running)
        return picks

    def begin_pass(
        self,
        now: float,
        queue: Sequence[Job],
        free_nodes: int,
        running: RunningFacts,
    ) -> Tuple[List[int], ConservativeCarry]:
        """Full pass; also returns the reservation-timeline carry."""
        profile = _AvailabilityProfile(now, free_nodes, running)
        picks = self._process(now, queue, 0, profile)
        carry = ConservativeCarry(
            scanned=len(queue), times=tuple(profile.times), avail=tuple(profile.avail)
        )
        return picks, carry

    def extend_pass(
        self,
        now: float,
        queue: Sequence[Job],
        running: RunningFacts,
        carry: ConservativeCarry,
    ) -> Tuple[List[int], ConservativeCarry]:
        """Evaluate only jobs appended since ``carry`` against its timeline."""
        profile = _AvailabilityProfile.from_carry(now, carry.times, carry.avail)
        picks = self._process(now, queue, carry.scanned, profile)
        new_carry = ConservativeCarry(
            scanned=len(queue), times=tuple(profile.times), avail=tuple(profile.avail)
        )
        return picks, new_carry

    @staticmethod
    def _process(
        now: float, queue: Sequence[Job], start_idx: int, profile: _AvailabilityProfile
    ) -> List[int]:
        picks: List[int] = []
        for idx in range(start_idx, len(queue)):
            job = queue[idx]
            duration = max(job.runtime, 1e-9)
            start = profile.earliest_fit(job.nodes, duration)
            if start == float("inf"):
                continue  # can never fit (permanent background load)
            profile.reserve(start, duration, job.nodes)
            if start == now:
                picks.append(idx)
        return picks
