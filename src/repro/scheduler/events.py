"""Discrete-event queue.

A tiny heap wrapper with fully deterministic ordering: events sort by
(time, kind priority, sequence number). Job completions sort *before*
submissions at the same instant so freed nodes are visible to the
scheduling pass that considers the newly submitted jobs — the same
order SLURM's event loop effectively produces.

Fault events slot in between: at the same instant a job that finishes
exactly when its node dies counts as finished (FINISH first), a node
whose outage ends as another begins stays down (NODE_UP before
NODE_DOWN, so back-to-back windows in a fault trace compose), and
submissions observe post-fault availability (SUBMIT last).
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(enum.IntEnum):
    """Event kinds; the integer value is the same-time tiebreak priority."""

    FINISH = 0
    NODE_UP = 1
    NODE_DOWN = 2
    SUBMIT = 3


@dataclass(frozen=True, order=True)
class Event:
    """One timestamped event. ``payload`` is excluded from ordering."""

    time: float
    kind: EventKind
    seq: int
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Min-heap of :class:`Event` with stable insertion tiebreak.

    Internally the heap holds ``(time, kind, seq, event)`` tuples — the
    exact key :class:`Event` ordering compares, but as plain floats and
    ints, so the heap's O(log n) comparisons per operation never pay
    for dataclass ``__lt__`` tuple construction. ``seq`` is unique, so
    a comparison never reaches the event itself.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._next_seq = 0

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event; returns it (mainly for tests)."""
        if not time >= 0.0:  # rejects NaN too
            raise ValueError(f"event time must be >= 0, got {time}")
        event = Event(time=float(time), kind=kind, seq=self._next_seq, payload=payload)
        self._next_seq += 1
        heapq.heappush(self._heap, (event.time, int(kind), event.seq, event))
        return event

    # ------------------------------------------------------------------
    # checkpoint support (engine snapshot/restore)
    # ------------------------------------------------------------------

    @property
    def next_seq(self) -> int:
        """The sequence number the next :meth:`push` will assign."""
        return self._next_seq

    def snapshot_entries(self) -> List[Event]:
        """The pending events in internal heap-array order.

        The returned list *is* a valid heap array (the internal tuple
        keys order exactly as :class:`Event` does); feeding it back to
        :meth:`restore` reproduces this queue exactly — same pop order,
        same tiebreaks — which is what makes engine checkpoints
        bit-deterministic.
        """
        return [entry[3] for entry in self._heap]

    @classmethod
    def restore(cls, entries: List[Event], next_seq: int) -> "EventQueue":
        """Rebuild a queue from :meth:`snapshot_entries` output."""
        queue = cls()
        queue._heap = [(e.time, int(e.kind), e.seq, e) for e in entries]
        heapq.heapify(queue._heap)  # no-op on a valid heap array
        if entries:
            max_seq = max(e.seq for e in entries)
            if next_seq <= max_seq:
                raise ValueError(
                    f"next_seq {next_seq} collides with pending event "
                    f"seq {max_seq}"
                )
        queue._next_seq = next_seq
        return queue

    def pop(self) -> Event:
        """Remove and return the earliest event; raises ``IndexError`` if empty."""
        return heapq.heappop(self._heap)[3]

    def peek(self) -> Optional[Event]:
        """Earliest event without removing it, or ``None`` when empty."""
        return self._heap[0][3] if self._heap else None

    def pop_simultaneous(self) -> Tuple[float, List[Event]]:
        """Pop every event sharing the earliest timestamp, in priority order."""
        first = self.pop()
        batch = [first]
        while self._heap and self._heap[0][0] == first.time:
            batch.append(self.pop())
        return first.time, batch

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
