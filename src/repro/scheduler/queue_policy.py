"""Queueing policies: FIFO and EASY backfilling (paper §3.1).

SLURM's default scheduler is FIFO with backfilling. EASY backfill makes
a single reservation for the queue head: compute the *shadow time* (the
earliest instant the head job could start given running jobs' expected
completions) and the *extra nodes* (nodes free at the shadow time beyond
the head's request); a queued job may jump ahead only if it would finish
by the shadow time or fits inside the extra nodes — so the head job is
never delayed.

The policy objects are pure: they look at queue + running-job facts and
return which jobs to start now, leaving all mutation to the engine.

Incremental passes
------------------
Policies additionally expose an *incremental* protocol the engine uses
to avoid re-scanning the queue when provably nothing changed:

* :meth:`begin_pass` — a full scan that also returns a *carry*: the
  scan's final internal facts (remaining free nodes, EASY's shadow
  window, conservative's reserved availability profile) plus how much
  of the queue was scanned.
* :meth:`extend_pass` — given a carry from a pass that picked nothing,
  evaluate only jobs appended since, against the carried facts.

A carry is only ever replayed by the engine when (a) the prior pass
picked nothing, (b) the cluster state version is unchanged (no job
started, finished, or faulted), and (c) time only moved forward. Under
those conditions every previously rejected job is rejected again — a
blocked FIFO head stays blocked, ``now + runtime <= shadow`` only gets
harder as ``now`` grows while shadow/extra/free are frozen, and every
conservative reservation lies strictly in the future — so scanning just
the appended suffix reproduces the full pass bit-for-bit (property-
tested in ``tests/scheduler/test_incremental_equivalence.py``, and
assertable at runtime via ``EngineConfig(verify_incremental=True)``).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Protocol, Sequence, Tuple, Union

from .. import perf
from ..cluster.job import Job

__all__ = [
    "RunningJobView",
    "RunningViews",
    "QueuePolicy",
    "FifoPolicy",
    "EasyBackfillPolicy",
    "FifoCarry",
    "EasyCarry",
    "iter_running_by_finish",
    "get_policy",
]


@dataclass(frozen=True)
class RunningJobView:
    """What a policy may know about a running job."""

    finish_estimate: float
    nodes: int


class RunningViews:
    """Finish-ordered running-job facts, maintained incrementally.

    The engine adds an entry when a job starts and removes it when the
    job finishes (or is killed by a fault), instead of rebuilding a
    view list on every scheduling pass. Entries carry a monotonically
    increasing insertion sequence so that ordering by ``(finish, seq)``
    reproduces exactly what policies previously saw from a stable sort
    of the per-pass list (which was built in start order): jobs with
    equal finish estimates stay in start order.
    """

    __slots__ = ("_entries", "_sorted", "_seq")

    def __init__(self) -> None:
        self._entries: dict = {}  # job_id -> (finish, seq, nodes)
        self._sorted: List[Tuple[float, int, int]] = []
        self._seq = 0

    def add(self, job_id: int, finish_estimate: float, nodes: int) -> None:
        """Insert a started job's ``(finish, nodes)`` facts."""
        entry = (float(finish_estimate), self._seq, int(nodes))
        self._seq += 1
        self._entries[job_id] = entry
        bisect.insort(self._sorted, entry)

    def remove(self, job_id: int) -> None:
        """Drop a finished or faulted job's entry."""
        entry = self._entries.pop(job_id)
        i = bisect.bisect_left(self._sorted, entry)
        del self._sorted[i]  # entries are unique: seq is never reused

    def __len__(self) -> int:
        return len(self._sorted)

    def iter_by_finish(self) -> Iterator[Tuple[float, int]]:
        """Yield ``(finish_estimate, nodes)`` in ascending finish order."""
        for finish, _seq, nodes in self._sorted:
            yield finish, nodes


RunningFacts = Union[Sequence[RunningJobView], RunningViews]


def iter_running_by_finish(
    running: RunningFacts,
) -> Iterable[Tuple[float, int]]:
    """``(finish_estimate, nodes)`` pairs in ascending finish order.

    Accepts either the engine's incrementally sorted :class:`RunningViews`
    (already ordered — no sort) or any plain sequence of
    :class:`RunningJobView` (sorted here, stably, like the policies
    always did), so `select_startable` stays a pure standalone API.
    """
    if isinstance(running, RunningViews):
        return running.iter_by_finish()
    return (
        (view.finish_estimate, view.nodes)
        for view in sorted(running, key=lambda v: v.finish_estimate)
    )


class QueuePolicy(Protocol):
    """Selects queued jobs to start, preserving fairness guarantees."""

    name: str

    def select_startable(
        self,
        now: float,
        queue: Sequence[Job],
        free_nodes: int,
        running: RunningFacts,
    ) -> List[int]:
        """Return queue indices to start *now*, in start order."""
        ...


def _head_run(queue: Sequence[Job], free_nodes: int) -> Tuple[List[int], int]:
    """Start jobs strictly from the head while they fit (common FIFO core)."""
    picks: List[int] = []
    for idx, job in enumerate(queue):
        if job.nodes <= free_nodes:
            picks.append(idx)
            free_nodes -= job.nodes
        else:
            break
    return picks, free_nodes


@dataclass
class FifoCarry:
    """Facts a failed FIFO pass leaves for arrival-only extensions."""

    scanned: int  # queue length when the carry was taken
    free_nodes: int  # free nodes after the scan (== all free: no picks)
    blocked: bool  # a queued job already failed to fit (head blocks)


@dataclass
class EasyCarry:
    """Facts a failed EASY pass leaves for arrival-only extensions."""

    scanned: int
    free_nodes: int
    shadow: Optional[float]  # None: no reservation (oversized head)
    extra: int
    empty: bool  # the queue was empty — no head, no shadow window


class FifoPolicy:
    """Strict first-in-first-out: the head blocks everyone behind it."""

    name = "fifo"
    incremental_ok = True

    def select_startable(
        self,
        now: float,
        queue: Sequence[Job],
        free_nodes: int,
        running: RunningFacts,
    ) -> List[int]:
        """Start jobs strictly from the head while they fit."""
        picks, _ = _head_run(queue, free_nodes)
        return picks

    def begin_pass(
        self,
        now: float,
        queue: Sequence[Job],
        free_nodes: int,
        running: RunningFacts,
    ) -> Tuple[List[int], FifoCarry]:
        """Full FIFO pass; also returns the blocked-head carry."""
        picks, free = _head_run(queue, free_nodes)
        carry = FifoCarry(
            scanned=len(queue), free_nodes=free, blocked=len(picks) < len(queue)
        )
        perf.count("policy.jobs_scanned", len(queue))
        perf.count("policy.jobs_picked", len(picks))
        return picks, carry

    def extend_pass(
        self,
        now: float,
        queue: Sequence[Job],
        running: RunningFacts,
        carry: FifoCarry,
    ) -> Tuple[List[int], FifoCarry]:
        """Evaluate only jobs appended since ``carry``."""
        picks: List[int] = []
        free = carry.free_nodes
        blocked = carry.blocked
        for idx in range(carry.scanned, len(queue)):
            if blocked:
                break
            job = queue[idx]
            if job.nodes <= free:
                picks.append(idx)
                free -= job.nodes
            else:
                blocked = True
        perf.count("policy.jobs_scanned", len(queue) - carry.scanned)
        perf.count("policy.jobs_picked", len(picks))
        return picks, FifoCarry(scanned=len(queue), free_nodes=free, blocked=blocked)


class EasyBackfillPolicy:
    """FIFO + EASY backfilling with a one-job reservation."""

    name = "backfill"
    incremental_ok = True

    def select_startable(
        self,
        now: float,
        queue: Sequence[Job],
        free_nodes: int,
        running: RunningFacts,
    ) -> List[int]:
        """Head run plus EASY backfill behind one reservation."""
        picks, _ = self.begin_pass(now, queue, free_nodes, running)
        return picks

    def begin_pass(
        self,
        now: float,
        queue: Sequence[Job],
        free_nodes: int,
        running: RunningFacts,
    ) -> Tuple[List[int], EasyCarry]:
        """Full EASY pass; also returns the shadow-window carry."""
        picks, free_nodes = _head_run(queue, free_nodes)
        head_idx = len(picks)
        if head_idx >= len(queue):
            perf.count("policy.jobs_scanned", len(queue))
            perf.count("policy.jobs_picked", len(picks))
            return picks, EasyCarry(len(queue), free_nodes, None, 0, empty=True)
        head = queue[head_idx]

        # Shadow time: walk running jobs by expected completion until
        # enough nodes have accumulated for the head job.
        shadow = None
        extra = 0
        accumulated = free_nodes
        for finish, nodes in iter_running_by_finish(running):
            accumulated += nodes
            if accumulated >= head.nodes:
                shadow = finish
                extra = accumulated - head.nodes
                break
        if shadow is None:
            # Head job can never start (larger than the machine); engine
            # rejects such jobs up front, but stay safe: no backfilling
            # guarantees exist without a reservation.
            perf.count("policy.jobs_scanned", len(queue))
            perf.count("policy.jobs_picked", len(picks))
            return picks, EasyCarry(len(queue), free_nodes, None, 0, empty=False)

        for idx in range(head_idx + 1, len(queue)):
            job = queue[idx]
            if job.nodes > free_nodes:
                continue
            ends_before_shadow = now + job.runtime <= shadow
            fits_in_extra = job.nodes <= extra
            if ends_before_shadow or fits_in_extra:
                picks.append(idx)
                free_nodes -= job.nodes
                if not ends_before_shadow:
                    extra -= job.nodes
        perf.count("policy.jobs_scanned", len(queue))
        perf.count("policy.jobs_picked", len(picks))
        return picks, EasyCarry(len(queue), free_nodes, shadow, extra, empty=False)

    def extend_pass(
        self,
        now: float,
        queue: Sequence[Job],
        running: RunningFacts,
        carry: EasyCarry,
    ) -> Tuple[List[int], EasyCarry]:
        """Evaluate only jobs appended since ``carry`` against its window."""
        if carry.empty:
            # The whole queue arrived since the carry: a full pass over
            # it is exactly the suffix evaluation.
            return self.begin_pass(now, queue, carry.free_nodes, running)
        if carry.shadow is None:
            return [], EasyCarry(len(queue), carry.free_nodes, None, 0, empty=False)
        picks: List[int] = []
        free = carry.free_nodes
        shadow = carry.shadow
        extra = carry.extra
        for idx in range(carry.scanned, len(queue)):
            job = queue[idx]
            if job.nodes > free:
                continue
            ends_before_shadow = now + job.runtime <= shadow
            fits_in_extra = job.nodes <= extra
            if ends_before_shadow or fits_in_extra:
                picks.append(idx)
                free -= job.nodes
                if not ends_before_shadow:
                    extra -= job.nodes
        perf.count("policy.jobs_scanned", len(queue) - carry.scanned)
        perf.count("policy.jobs_picked", len(picks))
        return picks, EasyCarry(len(queue), free, shadow, extra, empty=False)


def _conservative():
    from .conservative import ConservativeBackfillPolicy

    return ConservativeBackfillPolicy()


_POLICIES = {
    "fifo": FifoPolicy,
    "backfill": EasyBackfillPolicy,
    "conservative": _conservative,
}


def get_policy(name: str) -> QueuePolicy:
    """Instantiate a queue policy: ``fifo``, ``backfill``, or ``conservative``."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise KeyError(f"unknown policy {name!r}; known: {sorted(_POLICIES)}") from None
