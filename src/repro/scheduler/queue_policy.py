"""Queueing policies: FIFO and EASY backfilling (paper §3.1).

SLURM's default scheduler is FIFO with backfilling. EASY backfill makes
a single reservation for the queue head: compute the *shadow time* (the
earliest instant the head job could start given running jobs' expected
completions) and the *extra nodes* (nodes free at the shadow time beyond
the head's request); a queued job may jump ahead only if it would finish
by the shadow time or fits inside the extra nodes — so the head job is
never delayed.

The policy objects are pure: they look at queue + running-job facts and
return which jobs to start now, leaving all mutation to the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol, Sequence, Tuple

from ..cluster.job import Job

__all__ = ["RunningJobView", "QueuePolicy", "FifoPolicy", "EasyBackfillPolicy", "get_policy"]


@dataclass(frozen=True)
class RunningJobView:
    """What a policy may know about a running job."""

    finish_estimate: float
    nodes: int


class QueuePolicy(Protocol):
    """Selects queued jobs to start, preserving fairness guarantees."""

    name: str

    def select_startable(
        self,
        now: float,
        queue: Sequence[Job],
        free_nodes: int,
        running: Sequence[RunningJobView],
    ) -> List[int]:
        """Return queue indices to start *now*, in start order."""
        ...


def _head_run(queue: Sequence[Job], free_nodes: int) -> Tuple[List[int], int]:
    """Start jobs strictly from the head while they fit (common FIFO core)."""
    picks: List[int] = []
    for idx, job in enumerate(queue):
        if job.nodes <= free_nodes:
            picks.append(idx)
            free_nodes -= job.nodes
        else:
            break
    return picks, free_nodes


class FifoPolicy:
    """Strict first-in-first-out: the head blocks everyone behind it."""

    name = "fifo"

    def select_startable(
        self,
        now: float,
        queue: Sequence[Job],
        free_nodes: int,
        running: Sequence[RunningJobView],
    ) -> List[int]:
        picks, _ = _head_run(queue, free_nodes)
        return picks


class EasyBackfillPolicy:
    """FIFO + EASY backfilling with a one-job reservation."""

    name = "backfill"

    def select_startable(
        self,
        now: float,
        queue: Sequence[Job],
        free_nodes: int,
        running: Sequence[RunningJobView],
    ) -> List[int]:
        picks, free_nodes = _head_run(queue, free_nodes)
        head_idx = len(picks)
        if head_idx >= len(queue):
            return picks
        head = queue[head_idx]

        # Shadow time: walk running jobs by expected completion until
        # enough nodes have accumulated for the head job.
        shadow = None
        extra = 0
        accumulated = free_nodes
        for view in sorted(running, key=lambda v: v.finish_estimate):
            accumulated += view.nodes
            if accumulated >= head.nodes:
                shadow = view.finish_estimate
                extra = accumulated - head.nodes
                break
        if shadow is None:
            # Head job can never start (larger than the machine); engine
            # rejects such jobs up front, but stay safe: no backfilling
            # guarantees exist without a reservation.
            return picks

        for idx in range(head_idx + 1, len(queue)):
            job = queue[idx]
            if job.nodes > free_nodes:
                continue
            ends_before_shadow = now + job.runtime <= shadow
            fits_in_extra = job.nodes <= extra
            if ends_before_shadow or fits_in_extra:
                picks.append(idx)
                free_nodes -= job.nodes
                if not ends_before_shadow:
                    extra -= job.nodes
        return picks


def _conservative():
    from .conservative import ConservativeBackfillPolicy

    return ConservativeBackfillPolicy()


_POLICIES = {
    "fifo": FifoPolicy,
    "backfill": EasyBackfillPolicy,
    "conservative": _conservative,
}


def get_policy(name: str) -> QueuePolicy:
    """Instantiate a queue policy: ``fifo``, ``backfill``, or ``conservative``."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise KeyError(f"unknown policy {name!r}; known: {sorted(_POLICIES)}") from None
