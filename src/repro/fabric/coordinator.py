"""Fabric coordinator: lease granter, watchdog, and report merger.

The coordinator is the only process that writes the fabric journal, and
the journal is the only authority — heartbeats and mailbox files are a
live view the coordinator folds *into* journal entries, never a second
source of truth. That single-writer rule is what makes the whole layer
crash-safe: killing the coordinator at any instant loses at most a torn
final journal line, and a restarted coordinator rebuilds its entire
world by replay (:func:`repro.fabric.protocol.replay_fabric`), adopts
the leases that were in flight, and continues as if nothing happened.

The main loop is a watchdog cycle:

1. **scan** worker heartbeats — a sequence number that advances resets
   the worker's liveness clock; one silent past ``heartbeat_ttl`` is
   declared dead and its leases are revoked (backoff + jitter before
   the cell is re-leased, quarantine after ``max_reassignments``);
2. **harvest** worker outboxes — results are persisted to ``results/``
   *before* the journal records them, and deduplicated by sha256 digest
   so a revoked-but-alive worker's late result can never double-count a
   cell;
3. **degrade** when worker churn exceeds the configured threshold —
   fan-out is halved and, past the deadline, still-unleased cells are
   shed into an explicit :class:`~repro.runs.PartialRows` report
   instead of stretching the sweep forever on a dying fleet;
4. **assign** pending cells to idle live workers, in cell order.

Every recovery action increments a ``fabric.*`` counter through
:func:`repro.obs.runtime.count`, so a chaos run can assert not just
that the report is right but that each recovery path actually fired.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from ..experiments.sweeps import expand_grid
from ..obs import runtime as obs_runtime
from ..obs.metrics import MetricsRegistry
from ..runs.atomic import atomic_write_json
from ..runs.digest import digest_obj
from ..runs.executor import PartialRows
from ..runs.journal import RunJournal
from .protocol import (
    EVENT_CELL_QUARANTINED,
    EVENT_CELL_SHED,
    EVENT_COORD_START,
    EVENT_DEGRADED_ENTER,
    EVENT_DUPLICATE_RESULT,
    EVENT_LATE_RESULT,
    EVENT_LEASE_ADOPT,
    EVENT_LEASE_GRANT,
    EVENT_LEASE_REVOKE,
    EVENT_SWEEP_COMPLETE,
    EVENT_WORKER_DEAD,
    EVENT_WORKER_JOINED,
    EVENT_WORKER_REVIVED,
    FABRIC_RUN_TYPE,
    CellSpec,
    FabricConfig,
    FabricPaths,
    Lease,
    init_fabric,
    load_fabric_config,
    read_heartbeat,
    replay_fabric,
)
from .worker import spawn_local_workers

__all__ = [
    "Coordinator",
    "CoordinatorStats",
    "run_coordinator",
    "fabric_sweep",
    "collect_report",
    "fabric_status",
    "status_metrics",
    "sweep_cells",
]


def _cell_key(point: Mapping[str, Any], names: Sequence[str]) -> str:
    """Stable human-readable cell key (same shape as ``sweep``'s)."""
    return "|".join(f"{n}={point[n]}" for n in names)


def sweep_cells(
    grid: Mapping[str, Sequence],
    *,
    allocators: Sequence[str] = ("default", "balanced"),
    defaults: Optional[Mapping[str, Any]] = None,
) -> List[CellSpec]:
    """Expand a sweep grid into fabric cells, cross-product order.

    Uses the exact :func:`~repro.experiments.sweeps.expand_grid`
    expansion the serial path uses, so the fabric's cell list — and
    therefore its merged row order — matches ``sweep()`` one-to-one.
    """
    names = list(grid)
    return [
        CellSpec(
            key=_cell_key(point, names),
            point=point,
            allocators=tuple(allocators),
        )
        for point in expand_grid(grid, defaults)
    ]


@dataclass
class _WorkerView:
    """Coordinator-side liveness state for one worker."""

    worker: str
    seq: int
    last_change: float  # coordinator monotonic clock
    alive: bool = True
    busy_key: Optional[str] = None


@dataclass
class CoordinatorStats:
    """What one coordinator run did (returned by :meth:`Coordinator.run`)."""

    generation: int
    completed: int = 0
    quarantined: int = 0
    shed: int = 0
    lease_grants: int = 0
    lease_reassignments: int = 0
    worker_deaths: int = 0
    duplicate_results: int = 0
    degraded: bool = False
    stopped_externally: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for CLI JSON output."""
        return {
            "generation": self.generation,
            "completed": self.completed,
            "quarantined": self.quarantined,
            "shed": self.shed,
            "lease_grants": self.lease_grants,
            "lease_reassignments": self.lease_reassignments,
            "worker_deaths": self.worker_deaths,
            "duplicate_results": self.duplicate_results,
            "degraded": self.degraded,
            "stopped_externally": self.stopped_externally,
        }


class Coordinator:
    """One coordinator incarnation over an initialized fabric directory.

    Construction replays the journal (repairing a torn tail first —
    the coordinator is the journal's only writer, so it alone may
    truncate), verifies every journaled result still has an intact
    payload under ``results/`` (demoting any that do not back to
    pending), adopts in-flight leases, and journals a
    ``coordinator-start`` note bumping the generation counter. The
    generation is folded into new lease ids, so leases minted by a dead
    predecessor can never collide with this incarnation's.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.paths = FabricPaths(root)
        self.config = load_fabric_config(root)
        self._guard_against_live_coordinator()
        replay = replay_fabric(self.paths.journal, repair=True)
        self.cells: List[CellSpec] = list(replay.cells)
        self.cell_by_key: Dict[str, CellSpec] = {c.key: c for c in self.cells}
        self.completed: Dict[str, str] = dict(replay.digests)
        self.quarantined: Dict[str, str] = dict(replay.quarantined)
        self.shed: Dict[str, str] = dict(replay.shed)
        self.reassignments: Dict[str, int] = dict(replay.reassignments)
        self.degraded = replay.degraded
        self.generation = replay.generation + 1
        self.leases: Dict[str, Lease] = {}
        self._lease_granted: Dict[str, float] = {}
        self._eligible_at: Dict[str, float] = {}
        self._workers: Dict[str, _WorkerView] = {}
        self._death_times: List[float] = []
        self._duplicated: set = set()
        self._last_beacon = 0.0
        self.stats = CoordinatorStats(generation=self.generation)
        self.journal = RunJournal(self.paths.journal, run_type=FABRIC_RUN_TYPE)
        self.journal.note(
            EVENT_COORD_START, generation=self.generation, pid=os.getpid()
        )
        self._verify_results()
        now = time.monotonic()
        for lease in replay.active_leases.values():
            self.leases[lease.lease_id] = lease
            self._lease_granted[lease.lease_id] = now
            self.journal.note(
                EVENT_LEASE_ADOPT,
                key=lease.key,
                worker=lease.worker,
                lease=lease.lease_id,
                attempt=lease.attempt,
            )
            obs_runtime.count("fabric.leases_adopted")

    # ------------------------------------------------------------------
    # startup
    # ------------------------------------------------------------------

    def _guard_against_live_coordinator(self) -> None:
        """Refuse to start while another local coordinator looks alive.

        The beacon carries a pid and a wall-clock stamp; takeover is
        allowed when the pid is gone (the kill-coordinator chaos case)
        or the stamp is older than ``coordinator_ttl``. This is a
        same-machine guard — cross-machine fabrics rely on the TTL.
        """
        try:
            with open(self.paths.coordinator) as fh:
                beacon = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return
        fresh = (time.time() - float(beacon.get("time", 0))) < self.config.coordinator_ttl
        pid = int(beacon.get("pid", -1))
        if pid == os.getpid():
            return
        alive = False
        if pid > 0:
            try:
                os.kill(pid, 0)
                alive = True
            except ProcessLookupError:
                alive = False
            except PermissionError:
                alive = True
            except OSError:
                alive = False
        if fresh and alive:
            raise RuntimeError(
                f"{self.paths.root}: coordinator pid {pid} appears alive "
                "(fresh beacon); refusing to start a second one"
            )

    def _verify_results(self) -> None:
        """Re-check journaled results against their ``results/`` payloads.

        The journal says a cell completed with digest D; the payload
        file must exist and its rows must still hash to D. A missing or
        corrupt payload demotes the cell back to pending — the journal
        stays append-only (the stale ``result`` line is simply
        superseded by the re-run's new one on merge, which reads the
        *last* digest per key... it reads dict-overwrite order, so the
        re-run wins).
        """
        for key in list(self.completed):
            path = self.paths.result_file(key)
            try:
                with open(path) as fh:
                    payload = json.load(fh)
                ok = (
                    payload.get("key") == key
                    and digest_obj(payload.get("rows")) == self.completed[key]
                )
            except (OSError, json.JSONDecodeError):
                ok = False
            if not ok:
                del self.completed[key]
                self.journal.note("result-requeued", key=key, reason="payload-missing")
                obs_runtime.count("fabric.results_requeued")

    # ------------------------------------------------------------------
    # state queries
    # ------------------------------------------------------------------

    def _settled(self, key: str) -> bool:
        return key in self.completed or key in self.quarantined or key in self.shed

    def _leased_keys(self) -> set:
        return {lease.key for lease in self.leases.values()}

    def _pending_keys(self) -> List[str]:
        """Unsettled, unleased cells in cell order."""
        leased = self._leased_keys()
        return [
            c.key
            for c in self.cells
            if not self._settled(c.key) and c.key not in leased
        ]

    def _busy_workers(self) -> set:
        return {lease.worker for lease in self.leases.values()}

    @property
    def done(self) -> bool:
        """True when every cell is settled and no lease is outstanding."""
        return not self.leases and all(self._settled(c.key) for c in self.cells)

    # ------------------------------------------------------------------
    # watchdog cycle
    # ------------------------------------------------------------------

    def _scan_workers(self, now: float) -> None:
        """Fold heartbeats into liveness state; revoke the dead."""
        for worker_id in self.paths.worker_ids():
            beat = read_heartbeat(self.paths, worker_id)
            if beat is None:
                continue
            seq = int(beat.get("seq", 0))
            view = self._workers.get(worker_id)
            if view is None:
                self._workers[worker_id] = _WorkerView(
                    worker=worker_id, seq=seq, last_change=now
                )
                self.journal.note(EVENT_WORKER_JOINED, worker=worker_id)
                obs_runtime.count("fabric.workers_joined")
                continue
            view.busy_key = beat.get("busy_key")
            if seq != view.seq:
                view.seq = seq
                view.last_change = now
                if not view.alive:
                    view.alive = True
                    self.journal.note(EVENT_WORKER_REVIVED, worker=worker_id)
                    obs_runtime.count("fabric.workers_revived")
        for view in self._workers.values():
            if view.alive and now - view.last_change > self.config.heartbeat_ttl:
                view.alive = False
                self.journal.note(EVENT_WORKER_DEAD, worker=view.worker)
                obs_runtime.count("fabric.worker_deaths")
                self.stats.worker_deaths += 1
                self._death_times.append(now)
                for lease in [
                    l for l in self.leases.values() if l.worker == view.worker
                ]:
                    self._retire_lease(lease, "worker-dead", now)
        self._reap_lost_leases(now)

    def _reap_lost_leases(self, now: float) -> None:
        """Self-heal leases whose assignment evaporated.

        A lease whose worker is alive but idle, with neither the inbox
        assignment nor any outbox reply on disk, past the heartbeat
        TTL, can only mean the assignment was lost (e.g. the worker hit
        an I/O error after consuming it). Without this sweep such a
        cell would dangle forever — the worker never dies, so the
        death watchdog never fires.
        """
        for lease in list(self.leases.values()):
            view = self._workers.get(lease.worker)
            if view is None or not view.alive or view.busy_key == lease.key:
                continue
            if now - self._lease_granted.get(lease.lease_id, now) <= (
                self.config.heartbeat_ttl
            ):
                continue
            inbox = self.paths.inbox(lease.worker) / f"{lease.lease_id}.json"
            outbox = self.paths.outbox(lease.worker) / f"{lease.lease_id}.json"
            if inbox.exists() or outbox.exists():
                continue
            self._retire_lease(lease, "lease-lost", now)

    def _retire_lease(self, lease: Lease, reason: str, now: float) -> None:
        """Revoke one lease: journal, requeue with backoff, or quarantine."""
        self.journal.note(
            EVENT_LEASE_REVOKE,
            key=lease.key,
            worker=lease.worker,
            lease=lease.lease_id,
            reason=reason,
        )
        self.leases.pop(lease.lease_id, None)
        self._lease_granted.pop(lease.lease_id, None)
        try:
            (self.paths.inbox(lease.worker) / f"{lease.lease_id}.json").unlink()
        except OSError:
            pass
        if self._settled(lease.key) or lease.key in self._leased_keys():
            # A duplicate lease still covers the cell, or a result
            # already landed: the revocation needs no requeue.
            return
        count = self.reassignments.get(lease.key, 0) + 1
        self.reassignments[lease.key] = count
        obs_runtime.count("fabric.lease_reassignments")
        self.stats.lease_reassignments += 1
        if count > self.config.max_reassignments:
            error = f"lease revoked {count} times (last: {reason})"
            self.quarantined[lease.key] = error
            self.journal.note(EVENT_CELL_QUARANTINED, key=lease.key, error=error)
            obs_runtime.count("runs.quarantined_cells")
            obs_runtime.count("fabric.cells_quarantined")
            self.stats.quarantined += 1
        else:
            self._eligible_at[lease.key] = now + self.config.retry.delay(
                count, salt=lease.key
            )

    def _harvest(self, now: float) -> None:
        """Drain worker outboxes into ``results/`` + the journal."""
        for worker_id in self.paths.worker_ids():
            outbox = self.paths.outbox(worker_id)
            if not outbox.is_dir():
                continue
            for path in sorted(outbox.glob("*.json")):
                try:
                    with open(path) as fh:
                        reply = json.load(fh)
                except (OSError, json.JSONDecodeError):
                    continue
                kind = reply.get("kind")
                if kind == "fabric-error":
                    self._harvest_error(reply, path, now)
                elif kind == "fabric-result":
                    self._harvest_result(reply, path, now)
                else:
                    path.unlink(missing_ok=True)

    def _harvest_error(self, reply: Dict[str, Any], path: Path, now: float) -> None:
        """One cell raised inside its worker: retire the lease, requeue."""
        key = str(reply.get("key"))
        lease_id = str(reply.get("lease"))
        self.journal.note(
            "cell-error",
            key=key,
            worker=str(reply.get("worker")),
            lease=lease_id,
            error=str(reply.get("error", "")),
        )
        obs_runtime.count("fabric.cell_errors")
        lease = self.leases.get(lease_id)
        path.unlink(missing_ok=True)
        if lease is not None:
            self._retire_lease(lease, f"cell-error: {reply.get('error', '')}", now)

    def _harvest_result(self, reply: Dict[str, Any], path: Path, now: float) -> None:
        """One completed cell: dedupe, persist payload, then journal."""
        key = str(reply.get("key"))
        lease_id = str(reply.get("lease"))
        rows = reply.get("rows")
        digest = str(reply.get("digest", ""))
        if digest_obj(rows) != digest:
            # An atomic write cannot tear, so a mismatch means the
            # payload was damaged after landing: drop it, retire the
            # lease so the cell is recomputed.
            self.journal.note("result-corrupt", key=key, lease=lease_id)
            obs_runtime.count("fabric.corrupt_results")
            path.unlink(missing_ok=True)
            lease = self.leases.get(lease_id)
            if lease is not None:
                self._retire_lease(lease, "result-corrupt", now)
            return
        if self._settled(key):
            # Exactly-once landing: the duplicate-lease injector and
            # revoked-but-alive workers both funnel here.
            self.journal.note(
                EVENT_DUPLICATE_RESULT,
                key=key,
                lease=lease_id,
                worker=str(reply.get("worker")),
                digest=digest,
            )
            obs_runtime.count("fabric.duplicate_results")
            self.stats.duplicate_results += 1
            path.unlink(missing_ok=True)
            return
        late = lease_id not in self.leases
        # Durability order matters: payload first, journal second. A
        # crash in between re-harvests this outbox file on restart —
        # idempotent — while the reverse order could journal a result
        # whose payload never landed.
        atomic_write_json(
            self.paths.result_file(key),
            {"key": key, "digest": digest, "rows": rows},
        )
        self.journal.result(key, int(reply.get("attempt", 1)), digest)
        self.completed[key] = digest
        obs_runtime.count("fabric.cells_completed")
        self.stats.completed += 1
        if late:
            self.journal.note(EVENT_LATE_RESULT, key=key, lease=lease_id)
            obs_runtime.count("fabric.late_results")
        for lease in [l for l in self.leases.values() if l.key == key]:
            self.leases.pop(lease.lease_id, None)
            self._lease_granted.pop(lease.lease_id, None)
            try:
                (self.paths.inbox(lease.worker) / f"{lease.lease_id}.json").unlink()
            except OSError:
                pass
        path.unlink(missing_ok=True)

    def _maybe_degrade(self, now: float, started: float) -> None:
        """Enter degraded mode on churn; shed past the deadline."""
        window_start = now - self.config.churn_window
        self._death_times = [t for t in self._death_times if t >= window_start]
        if not self.degraded and len(self._death_times) >= self.config.churn_threshold:
            self.degraded = True
            self.stats.degraded = True
            self.journal.note(
                EVENT_DEGRADED_ENTER,
                deaths=len(self._death_times),
                window=self.config.churn_window,
            )
            obs_runtime.count("fabric.degraded_entries")
        if (
            self.degraded
            and self.config.deadline is not None
            and now - started > self.config.deadline
        ):
            for key in self._pending_keys():
                reason = f"deadline ({self.config.deadline}s) passed in degraded mode"
                self.shed[key] = reason
                self.journal.note(EVENT_CELL_SHED, key=key, reason=reason)
                obs_runtime.count("fabric.cells_shed")
                self.stats.shed += 1

    def _assign(self, now: float) -> None:
        """Grant pending cells to idle live workers, in cell order."""
        busy = self._busy_workers()
        idle = [
            w
            for w in sorted(self._workers)
            if self._workers[w].alive and w not in busy
        ]
        capacity = len(idle)
        if self.degraded:
            live = sum(1 for v in self._workers.values() if v.alive)
            capacity = max(0, max(1, live // 2) - len(self.leases))
        for key in self._pending_keys():
            if capacity <= 0 or not idle:
                return
            if self._eligible_at.get(key, 0.0) > now:
                continue
            self._grant(key, idle.pop(0), now)
            capacity -= 1
        # Chaos injector: deliberately double-lease configured cells to
        # prove the digest dedupe path under real concurrency. Runs
        # after the pending loop so a cell already leased in an earlier
        # cycle (e.g. before the second worker joined) still gets its
        # duplicate once another worker is idle.
        for key in self.config.duplicate_cells:
            if capacity <= 0 or not idle:
                return
            if key in self._duplicated or self._settled(key):
                continue
            if key not in self._leased_keys():
                continue  # primary grant first; catch up next cycle
            self._duplicated.add(key)
            self._grant(key, idle.pop(0), now)
            capacity -= 1

    def _grant(self, key: str, worker_id: str, now: float) -> None:
        """Lease one cell to one worker (inbox first, journal second).

        The assignment file lands before the journal entry: if we crash
        in between, the worker computes a cell the journal never leased
        and its result arrives as a harmless late result — whereas the
        reverse order could journal a lease whose assignment never
        existed, a cell no worker will ever touch.
        """
        cell = self.cell_by_key[key]
        lease_id = f"g{self.generation}-{self.stats.lease_grants + 1:04d}"
        attempt = self.reassignments.get(key, 0) + 1
        inbox = self.paths.inbox(worker_id)
        inbox.mkdir(parents=True, exist_ok=True)
        atomic_write_json(
            inbox / f"{lease_id}.json",
            {
                "kind": "fabric-assignment",
                "key": key,
                "lease": lease_id,
                "attempt": attempt,
                "point": dict(cell.point),
                "allocators": list(cell.allocators),
            },
        )
        self.journal.note(
            EVENT_LEASE_GRANT,
            key=key,
            worker=worker_id,
            lease=lease_id,
            attempt=attempt,
        )
        self.leases[lease_id] = Lease(
            lease_id=lease_id, key=key, worker=worker_id, attempt=attempt
        )
        self._lease_granted[lease_id] = now
        obs_runtime.count("fabric.lease_grants")
        self.stats.lease_grants += 1

    def _write_beacon(self, now: float) -> None:
        """Refresh ``coordinator.json`` at the heartbeat cadence."""
        if now - self._last_beacon < self.config.heartbeat_interval:
            return
        self._last_beacon = now
        atomic_write_json(
            self.paths.coordinator,
            {
                "kind": "fabric-coordinator",
                "generation": self.generation,
                "pid": os.getpid(),
                "time": time.time(),
            },
        )

    # ------------------------------------------------------------------

    def run(self) -> CoordinatorStats:
        """Drive the watchdog cycle until every cell is settled.

        On completion a ``sweep-complete`` note is journaled and the
        global ``stop`` file is created so workers exit. An externally
        created ``stop`` file ends the loop early (recorded in
        ``stats.stopped_externally``) without marking the sweep done.
        """
        started = time.monotonic()
        try:
            while True:
                now = time.monotonic()
                self._scan_workers(now)
                self._harvest(now)
                self._maybe_degrade(now, started)
                self._assign(now)
                self._write_beacon(now)
                if self.done:
                    self.journal.note(
                        EVENT_SWEEP_COMPLETE,
                        completed=len(self.completed),
                        quarantined=len(self.quarantined),
                        shed=len(self.shed),
                    )
                    self.paths.stop.touch()
                    break
                if self.paths.stop.exists():
                    self.stats.stopped_externally = True
                    break
                time.sleep(self.config.poll_interval)
        finally:
            self.journal.close()
        return self.stats


def run_coordinator(root: Union[str, Path]) -> CoordinatorStats:
    """Construct and run one coordinator over a fabric directory."""
    return Coordinator(root).run()


# ----------------------------------------------------------------------
# report assembly
# ----------------------------------------------------------------------


def collect_report(
    root: Union[str, Path],
) -> Union[List[Dict[str, Any]], PartialRows]:
    """Merge a fabric's results into the sweep report.

    Walks the journaled cell list in order, loads each completed cell's
    ``results/`` payload (verifying its digest against the journal),
    and concatenates the rows — which makes the merged report
    bit-identical to what serial ``sweep()`` returns for the same grid.
    Shed and never-completed cells surface as ``missing`` and
    quarantined cells as ``quarantined`` on a
    :class:`~repro.runs.PartialRows`; a fully settled, fully completed
    fabric returns a plain list.
    """
    paths = FabricPaths(root)
    replay = replay_fabric(paths.journal)
    rows: List[Dict[str, Any]] = []
    missing: Dict[str, str] = {}
    for cell in replay.cells:
        if cell.key in replay.digests:
            payload_path = paths.result_file(cell.key)
            try:
                with open(payload_path) as fh:
                    payload = json.load(fh)
            except (OSError, json.JSONDecodeError) as exc:
                missing[cell.key] = f"result payload unreadable: {exc}"
                continue
            if digest_obj(payload.get("rows")) != replay.digests[cell.key]:
                missing[cell.key] = "result payload digest mismatch"
                continue
            rows.extend(payload["rows"])
        elif cell.key in replay.shed:
            missing[cell.key] = replay.shed[cell.key]
        elif cell.key not in replay.quarantined:
            missing[cell.key] = "never completed"
    if missing or replay.quarantined:
        return PartialRows(rows, missing, replay.quarantined)
    return rows


# ----------------------------------------------------------------------
# one-call driver
# ----------------------------------------------------------------------


def fabric_sweep(
    grid: Mapping[str, Sequence],
    *,
    allocators: Sequence[str] = ("default", "balanced"),
    defaults: Optional[Mapping[str, Any]] = None,
    workers: int = 2,
    fabric_dir: Optional[Union[str, Path]] = None,
    config: Optional[FabricConfig] = None,
) -> Union[List[Dict[str, Any]], PartialRows]:
    """Run one sweep through the fabric, end to end, in one call.

    Initializes a fabric directory (a temporary one when ``fabric_dir``
    is omitted), spawns ``workers`` local worker processes, runs the
    coordinator in this process, joins the workers, and merges the
    report. The result is row-for-row identical to
    ``sweep(grid, allocators=..., defaults=...)`` — the fabric only
    changes *where* cells execute, never what they produce.
    """
    cells = sweep_cells(grid, allocators=allocators, defaults=defaults)
    context = {
        "grid": {k: list(v) for k, v in grid.items()},
        "defaults": dict(defaults or {}),
        "allocators": list(allocators),
    }
    tmp: Optional[tempfile.TemporaryDirectory] = None
    if fabric_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-fabric-")
        fabric_dir = tmp.name
    try:
        init_fabric(fabric_dir, cells, context=context, config=config)
        procs = spawn_local_workers(fabric_dir, workers)
        try:
            Coordinator(fabric_dir).run()
        finally:
            FabricPaths(fabric_dir).stop.touch()
            for proc in procs:
                proc.join(timeout=30)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5)
        return collect_report(fabric_dir)
    finally:
        if tmp is not None:
            tmp.cleanup()


# ----------------------------------------------------------------------
# status
# ----------------------------------------------------------------------


def fabric_status(root: Union[str, Path]) -> Dict[str, Any]:
    """Read-only snapshot of a fabric directory (CLI ``fabric status``).

    Replays the journal without repairing it (only the coordinator may
    truncate) and layers on the live heartbeat view. Heartbeat ages use
    wall-clock deltas, so across machines with skewed clocks they are
    indicative, not authoritative — liveness authority stays with the
    coordinator's monotonic clock.
    """
    paths = FabricPaths(root)
    replay = replay_fabric(paths.journal)
    now = time.time()
    workers = []
    for worker_id in paths.worker_ids():
        beat = read_heartbeat(paths, worker_id)
        workers.append(
            {
                "worker": worker_id,
                "seq": None if beat is None else beat.get("seq"),
                "age_seconds": (
                    None if beat is None else max(0.0, now - float(beat["time"]))
                ),
                "busy_key": None if beat is None else beat.get("busy_key"),
                "done_cells": 0 if beat is None else int(beat.get("done_cells", 0)),
            }
        )
    return {
        "root": str(paths.root),
        "generation": replay.generation,
        "degraded": replay.degraded,
        "truncated_tail": replay.truncated,
        "cells": len(replay.cells),
        "completed": len(replay.digests),
        "pending": len(replay.pending_keys()),
        "active_leases": len(replay.active_leases),
        "quarantined": len(replay.quarantined),
        "shed": len(replay.shed),
        "stopped": paths.stop.exists(),
        "workers": workers,
    }


def status_metrics(status: Dict[str, Any]) -> MetricsRegistry:
    """Render a :func:`fabric_status` snapshot as Prometheus gauges."""
    reg = MetricsRegistry(namespace="repro")
    reg.gauge("fabric_cells", "Cells declared in the fabric journal").set(
        status["cells"]
    )
    reg.gauge("fabric_completed_cells", "Cells with a journaled result").set(
        status["completed"]
    )
    reg.gauge("fabric_pending_cells", "Cells not yet settled or leased").set(
        status["pending"]
    )
    reg.gauge("fabric_active_leases", "Leases outstanding per the journal").set(
        status["active_leases"]
    )
    reg.gauge("fabric_quarantined_cells", "Cells quarantined as poison").set(
        status["quarantined"]
    )
    reg.gauge("fabric_shed_cells", "Cells shed in degraded mode").set(status["shed"])
    reg.gauge("fabric_degraded", "1 while the fabric is in degraded mode").set(
        1.0 if status["degraded"] else 0.0
    )
    reg.gauge("fabric_generation", "Coordinator generation counter").set(
        status["generation"]
    )
    live = reg.gauge(
        "fabric_worker_heartbeat_age_seconds",
        "Seconds since each worker's last heartbeat",
        labels=("worker",),
    )
    for worker in status["workers"]:
        if worker["age_seconds"] is not None:
            live.labels(worker=worker["worker"]).set(worker["age_seconds"])
    return reg
