"""On-disk protocol of the sweep fabric.

The fabric runs a sweep's cell grid across independent worker
processes with nothing shared but a directory (local disk for one
machine, a network filesystem across machines). Everything in the
protocol follows two disciplines the rest of the repo established:

* **single-writer files** — every file has exactly one writing process
  (the coordinator owns the journal, each worker owns its heartbeat
  and outbox), so there is no cross-process locking anywhere;
* **atomic replace** — every payload file lands via
  :func:`repro.runs.atomic_write`, so a reader never observes a torn
  assignment, heartbeat, or result.

Layout of a fabric directory::

    fabric.json              frozen FabricConfig (written once at init)
    journal.jsonl            coordinator-owned RunJournal — the single
                             source of truth (cells, leases, results)
    coordinator.json         coordinator liveness beacon
    stop                     global shutdown flag (presence = stop)
    results/<hash>.json      harvested cell rows, digest-verified
    workers/<id>/heartbeat.json   worker liveness beacon (seq + clock)
    workers/<id>/inbox/<lease>.json   assignments, coordinator-written
    workers/<id>/outbox/<lease>.json  results, worker-written

The *journal* is authoritative: a restarted coordinator replays it
(:func:`replay_fabric`) to learn which cells exist, which completed
(and with what digest), and which leases were outstanding — heartbeats
and mailbox files are merely the live view layered on top. Lease
events ride on the journal's ``note`` entries, so the file stays a
perfectly ordinary PR 3 run journal: checksummed per line, readable by
``load_journal``, tolerant of a torn tail.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..runs.atomic import atomic_write_json
from ..runs.journal import JournalData, RunJournal, load_journal, repair_torn_tail
from ..runs.retry import RetryPolicy

__all__ = [
    "FabricConfig",
    "FabricPaths",
    "CellSpec",
    "Lease",
    "FabricReplay",
    "init_fabric",
    "load_fabric_config",
    "replay_fabric",
    "write_heartbeat",
    "read_heartbeat",
    "cell_file_name",
]

#: journal ``run_type`` for fabric sweeps
FABRIC_RUN_TYPE = "fabric-sweep"

#: note events the coordinator writes (all idempotently replayable)
EVENT_COORD_START = "coordinator-start"
EVENT_WORKER_JOINED = "worker-joined"
EVENT_WORKER_DEAD = "worker-dead"
EVENT_WORKER_REVIVED = "worker-revived"
EVENT_LEASE_GRANT = "lease-grant"
EVENT_LEASE_REVOKE = "lease-revoke"
EVENT_LEASE_ADOPT = "lease-adopt"
EVENT_CELL_QUARANTINED = "cell-quarantined"
EVENT_CELL_SHED = "cell-shed"
EVENT_DEGRADED_ENTER = "degraded-enter"
EVENT_DUPLICATE_RESULT = "duplicate-result"
EVENT_LATE_RESULT = "late-result"
EVENT_SWEEP_COMPLETE = "sweep-complete"


@dataclass(frozen=True)
class FabricConfig:
    """Tunables shared by the coordinator and every worker.

    Written once to ``fabric.json`` at init so externally attached
    workers (``repro-sched fabric worker``) and restarted coordinators
    agree on timing without re-passing flags.

    Attributes
    ----------
    heartbeat_interval:
        Seconds between worker heartbeat writes.
    heartbeat_ttl:
        Seconds of heartbeat silence after which the watchdog declares
        a worker dead and revokes its leases. Must exceed the interval.
    poll_interval:
        Coordinator/worker main-loop sleep, seconds.
    max_reassignments:
        Times a cell may be re-leased after lease revocations before it
        is quarantined as poison (the PR 6 quarantine semantics: the
        cell is dropped *loudly*, the sweep continues).
    churn_threshold / churn_window:
        Entering degraded mode: at least ``churn_threshold`` worker
        deaths within the trailing ``churn_window`` seconds.
    deadline:
        Optional wall-clock budget (seconds from coordinator start).
        Only consulted in degraded mode: once past the deadline,
        still-unleased cells are shed into the partial report instead
        of stretching the sweep indefinitely on a dying fleet.
    retry:
        Backoff between a cell's lease reassignments — exponential with
        seeded jitter so many revoked cells don't thunder-herd back
        onto the first idle worker.
    coordinator_ttl:
        Seconds after which another process may take over a fabric
        whose coordinator beacon went silent.
    duplicate_cells:
        Chaos hook: cell keys the coordinator deliberately leases to
        two workers at once, to prove digest-level deduplication.
        Empty outside chaos runs.
    """

    heartbeat_interval: float = 0.5
    heartbeat_ttl: float = 5.0
    poll_interval: float = 0.1
    max_reassignments: int = 3
    churn_threshold: int = 3
    churn_window: float = 60.0
    deadline: Optional[float] = None
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            backoff_base=0.05, backoff_max=5.0, jitter=0.5
        )
    )
    coordinator_ttl: float = 10.0
    duplicate_cells: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be > 0, got {self.heartbeat_interval}"
            )
        if self.heartbeat_ttl <= self.heartbeat_interval:
            raise ValueError(
                "heartbeat_ttl must exceed heartbeat_interval "
                f"({self.heartbeat_ttl} <= {self.heartbeat_interval})"
            )
        if self.poll_interval <= 0:
            raise ValueError(f"poll_interval must be > 0, got {self.poll_interval}")
        if self.max_reassignments < 0:
            raise ValueError(
                f"max_reassignments must be >= 0, got {self.max_reassignments}"
            )
        if self.churn_threshold < 1:
            raise ValueError(
                f"churn_threshold must be >= 1, got {self.churn_threshold}"
            )
        if self.churn_window <= 0:
            raise ValueError(f"churn_window must be > 0, got {self.churn_window}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")
        if self.coordinator_ttl <= 0:
            raise ValueError(
                f"coordinator_ttl must be > 0, got {self.coordinator_ttl}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation (what ``fabric.json`` holds)."""
        return {
            "kind": "fabric-config",
            "heartbeat_interval": self.heartbeat_interval,
            "heartbeat_ttl": self.heartbeat_ttl,
            "poll_interval": self.poll_interval,
            "max_reassignments": self.max_reassignments,
            "churn_threshold": self.churn_threshold,
            "churn_window": self.churn_window,
            "deadline": self.deadline,
            "coordinator_ttl": self.coordinator_ttl,
            "duplicate_cells": list(self.duplicate_cells),
            "retry": {
                "max_retries": self.retry.max_retries,
                "backoff_base": self.retry.backoff_base,
                "backoff_factor": self.retry.backoff_factor,
                "backoff_max": self.retry.backoff_max,
                "jitter": self.retry.jitter,
                "jitter_seed": self.retry.jitter_seed,
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FabricConfig":
        """Inverse of :meth:`to_dict`."""
        if data.get("kind") != "fabric-config":
            raise ValueError(f"not a fabric config: kind={data.get('kind')!r}")
        retry = data.get("retry", {})
        return cls(
            heartbeat_interval=float(data["heartbeat_interval"]),
            heartbeat_ttl=float(data["heartbeat_ttl"]),
            poll_interval=float(data["poll_interval"]),
            max_reassignments=int(data["max_reassignments"]),
            churn_threshold=int(data["churn_threshold"]),
            churn_window=float(data["churn_window"]),
            deadline=(
                None if data.get("deadline") is None else float(data["deadline"])
            ),
            coordinator_ttl=float(data.get("coordinator_ttl", 10.0)),
            duplicate_cells=tuple(
                str(k) for k in data.get("duplicate_cells", ())
            ),
            retry=RetryPolicy(
                max_retries=int(retry.get("max_retries", 0)),
                backoff_base=float(retry.get("backoff_base", 0.05)),
                backoff_factor=float(retry.get("backoff_factor", 2.0)),
                backoff_max=float(retry.get("backoff_max", 5.0)),
                jitter=float(retry.get("jitter", 0.5)),
                jitter_seed=int(retry.get("jitter_seed", 0)),
            ),
        )

    def with_(self, **kwargs: Any) -> "FabricConfig":
        """Functional update (thin wrapper over ``dataclasses.replace``)."""
        return replace(self, **kwargs)


class FabricPaths:
    """Path arithmetic for one fabric directory (no I/O of its own)."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    @property
    def config(self) -> Path:
        """``fabric.json`` — the frozen :class:`FabricConfig`."""
        return self.root / "fabric.json"

    @property
    def journal(self) -> Path:
        """``journal.jsonl`` — the coordinator-owned source of truth."""
        return self.root / "journal.jsonl"

    @property
    def coordinator(self) -> Path:
        """``coordinator.json`` — the coordinator liveness beacon."""
        return self.root / "coordinator.json"

    @property
    def stop(self) -> Path:
        """``stop`` — global shutdown flag (presence = stop)."""
        return self.root / "stop"

    @property
    def results(self) -> Path:
        """``results/`` — harvested per-cell row payloads."""
        return self.root / "results"

    @property
    def workers(self) -> Path:
        """``workers/`` — one subdirectory per worker."""
        return self.root / "workers"

    def worker(self, worker_id: str) -> Path:
        """One worker's directory."""
        return self.workers / worker_id

    def heartbeat(self, worker_id: str) -> Path:
        """One worker's heartbeat beacon."""
        return self.worker(worker_id) / "heartbeat.json"

    def inbox(self, worker_id: str) -> Path:
        """One worker's assignment mailbox (coordinator-written)."""
        return self.worker(worker_id) / "inbox"

    def outbox(self, worker_id: str) -> Path:
        """One worker's result mailbox (worker-written)."""
        return self.worker(worker_id) / "outbox"

    def result_file(self, key: str) -> Path:
        """Durable rows file for cell ``key`` (hashed file name)."""
        return self.results / f"{cell_file_name(key)}.json"

    def worker_ids(self) -> List[str]:
        """Workers that have registered a directory, sorted."""
        if not self.workers.is_dir():
            return []
        return sorted(p.name for p in self.workers.iterdir() if p.is_dir())


def cell_file_name(key: str) -> str:
    """Filesystem-safe, collision-free file stem for a cell key."""
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:24]


@dataclass(frozen=True)
class CellSpec:
    """One cell of the sweep: a fully resolved grid point."""

    key: str
    point: Dict[str, Any]
    allocators: Tuple[str, ...]

    def spec_dict(self) -> Dict[str, Any]:
        """Journal/assignment payload for this cell."""
        return {"point": dict(self.point), "allocators": list(self.allocators)}


@dataclass
class Lease:
    """One grant of a cell to a worker (coordinator bookkeeping)."""

    lease_id: str
    key: str
    worker: str
    attempt: int


@dataclass
class FabricReplay:
    """Authoritative state reconstructed from the fabric journal.

    ``active_leases`` maps cell key to the last granted-and-not-yet
    revoked/completed lease; ``reassignments`` counts revocations per
    cell; ``generation`` counts coordinator starts (so a restarted
    coordinator mints lease ids that can never collide with its
    predecessor's).
    """

    context: Dict[str, Any]
    cells: List[CellSpec] = field(default_factory=list)
    digests: Dict[str, str] = field(default_factory=dict)
    active_leases: Dict[str, Lease] = field(default_factory=dict)
    reassignments: Dict[str, int] = field(default_factory=dict)
    quarantined: Dict[str, str] = field(default_factory=dict)
    shed: Dict[str, str] = field(default_factory=dict)
    generation: int = 0
    degraded: bool = False
    notes: List[Dict[str, Any]] = field(default_factory=list)
    truncated: bool = False

    @property
    def complete(self) -> bool:
        """True when every declared cell is completed, shed, or quarantined."""
        return not self.pending_keys()

    def pending_keys(self) -> List[str]:
        """Cells with no result, quarantine, or shed mark, in task order."""
        settled = set(self.digests) | set(self.quarantined) | set(self.shed)
        return [c.key for c in self.cells if c.key not in settled]


def init_fabric(
    root: Union[str, Path],
    cells: List[CellSpec],
    *,
    context: Dict[str, Any],
    config: Optional[FabricConfig] = None,
) -> FabricPaths:
    """Create a fabric directory: config, journal header, cell manifest.

    ``context`` is stored in the journal header and must contain
    everything a restarted coordinator (or ``fabric status``) needs to
    understand the run — for sweeps that is the grid, defaults, and
    allocator list. Fails if the directory already holds a journal:
    restarting an existing fabric goes through the coordinator's resume
    path, not through init.
    """
    paths = FabricPaths(root)
    if paths.journal.exists() and paths.journal.stat().st_size > 0:
        raise ValueError(
            f"{paths.journal}: fabric already initialized "
            "(resume it instead of re-initializing)"
        )
    config = config or FabricConfig()
    paths.root.mkdir(parents=True, exist_ok=True)
    paths.results.mkdir(parents=True, exist_ok=True)
    paths.workers.mkdir(parents=True, exist_ok=True)
    atomic_write_json(paths.config, config.to_dict())
    journal = RunJournal(paths.journal, run_type=FABRIC_RUN_TYPE, context=context)
    try:
        for cell in cells:
            journal.task(cell.key, cell.spec_dict())
    finally:
        journal.close()
    return paths


def load_fabric_config(root: Union[str, Path]) -> FabricConfig:
    """Read ``fabric.json`` from a fabric directory."""
    paths = FabricPaths(root)
    with open(paths.config) as fh:
        return FabricConfig.from_dict(json.load(fh))


def _journal_to_replay(data: JournalData) -> FabricReplay:
    """Fold journal entries into a :class:`FabricReplay` (pure)."""
    replay = FabricReplay(context=data.context, truncated=data.truncated)
    for key, spec in data.tasks.items():
        replay.cells.append(
            CellSpec(
                key=key,
                point=dict(spec.get("point", {})),
                allocators=tuple(spec.get("allocators", ())),
            )
        )
    replay.digests = dict(data.digests)
    for note in data.notes:
        event = note.get("event")
        replay.notes.append(note)
        if event == EVENT_COORD_START:
            replay.generation += 1
        elif event in (EVENT_LEASE_GRANT, EVENT_LEASE_ADOPT):
            replay.active_leases[note["key"]] = Lease(
                lease_id=str(note["lease"]),
                key=str(note["key"]),
                worker=str(note["worker"]),
                attempt=int(note.get("attempt", 1)),
            )
        elif event == EVENT_LEASE_REVOKE:
            lease = replay.active_leases.get(note["key"])
            if lease is not None and lease.lease_id == str(note["lease"]):
                del replay.active_leases[note["key"]]
            replay.reassignments[note["key"]] = (
                replay.reassignments.get(note["key"], 0) + 1
            )
        elif event == EVENT_CELL_QUARANTINED:
            replay.quarantined[note["key"]] = str(note.get("error", ""))
        elif event == EVENT_CELL_SHED:
            replay.shed[note["key"]] = str(note.get("reason", ""))
        elif event == EVENT_DEGRADED_ENTER:
            replay.degraded = True
    for key in replay.digests:
        replay.active_leases.pop(key, None)
    return replay


def replay_fabric(
    journal_path: Union[str, Path], *, repair: bool = False
) -> FabricReplay:
    """Replay a fabric journal into its authoritative state.

    ``repair=True`` first truncates a torn final line (see
    :func:`repro.runs.journal.repair_torn_tail`) — only the process
    about to *append* (a restarting coordinator) may do that; readers
    like ``fabric status`` replay read-only and report ``truncated``.
    """
    if repair:
        repair_torn_tail(journal_path)
    return _journal_to_replay(load_journal(journal_path))


# ----------------------------------------------------------------------
# heartbeats
# ----------------------------------------------------------------------


def write_heartbeat(
    paths: FabricPaths,
    worker_id: str,
    seq: int,
    *,
    busy_key: Optional[str] = None,
    done_cells: int = 0,
) -> None:
    """Atomically publish one worker heartbeat.

    ``seq`` must increase monotonically per worker: liveness is judged
    by *observing the sequence advance*, not by comparing wall clocks,
    so heartbeats work across machines with skewed clocks.
    """
    atomic_write_json(
        paths.heartbeat(worker_id),
        {
            "kind": "fabric-heartbeat",
            "worker": worker_id,
            "seq": int(seq),
            "pid": os.getpid(),
            "time": time.time(),
            "busy_key": busy_key,
            "done_cells": int(done_cells),
        },
    )


def read_heartbeat(paths: FabricPaths, worker_id: str) -> Optional[Dict[str, Any]]:
    """Read one worker's heartbeat; ``None`` when absent or unparsable.

    An unparsable beacon is treated as absent rather than an error:
    heartbeats are written atomically, so garbage means the worker
    never wrote one — and a *silent* worker is exactly what the
    watchdog already handles.
    """
    try:
        with open(paths.heartbeat(worker_id)) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(data, dict) or data.get("kind") != "fabric-heartbeat":
        return None
    return data
