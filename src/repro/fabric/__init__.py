"""Coordinator/worker execution fabric for distributed sweeps.

``repro.fabric`` shards a sweep's cell grid across independent worker
processes that share nothing but a directory. The PR 3 run journal is
the single source of truth: the coordinator grants lease-based claims
over cells, watches worker heartbeats, revokes leases from stalled or
dead workers (exponential backoff with seeded jitter before re-lease,
quarantine after too many reassignments), degrades gracefully under
worker churn (reduced fan-out, deadline-aware shedding into an explicit
partial report), and deduplicates results by sha256 digest so every
cell lands exactly once — the merged report is bit-identical to the
serial ``sweep()`` for the same grid.

The coordinator itself is crash-safe: killing it mid-sweep and starting
a new one replays the journal, re-adopts in-flight leases, and
continues. The chaos battery for all of this lives in
:mod:`repro.chaos.fabric`; the CLI surface is ``repro-sched fabric``
and ``repro-sched sweep --fabric``. See ``docs/resilience.md``.

Layout:

* :mod:`~repro.fabric.protocol` — on-disk protocol: config, directory
  layout, heartbeats, journal events, replay.
* :mod:`~repro.fabric.worker` — the worker loop and its chaos hooks.
* :mod:`~repro.fabric.coordinator` — the watchdog cycle, report
  merging, and the one-call :func:`fabric_sweep` driver.
"""

from .coordinator import (
    Coordinator,
    CoordinatorStats,
    collect_report,
    fabric_status,
    fabric_sweep,
    run_coordinator,
    status_metrics,
    sweep_cells,
)
from .protocol import (
    CellSpec,
    FabricConfig,
    FabricPaths,
    FabricReplay,
    Lease,
    init_fabric,
    load_fabric_config,
    replay_fabric,
)
from .worker import WorkerChaos, run_worker, spawn_local_workers

__all__ = [
    "Coordinator",
    "CoordinatorStats",
    "CellSpec",
    "FabricConfig",
    "FabricPaths",
    "FabricReplay",
    "Lease",
    "WorkerChaos",
    "collect_report",
    "fabric_status",
    "fabric_sweep",
    "init_fabric",
    "load_fabric_config",
    "replay_fabric",
    "run_coordinator",
    "run_worker",
    "spawn_local_workers",
    "status_metrics",
    "sweep_cells",
]
