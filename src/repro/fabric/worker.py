"""Fabric worker: lease consumer and cell executor.

A worker owns one directory under ``workers/<id>/`` and exactly three
kinds of writes — its heartbeat beacon, its outbox results, and nothing
else. It learns about work purely by scanning its inbox for assignment
files the coordinator dropped there, so the only coupling between the
two processes is the shared directory.

The execution path inside a cell is deliberately the serial sweep's
own: :func:`~repro.experiments.sweeps.point_config` →
:func:`~repro.experiments.runner.continuous_runs` →
:func:`~repro.experiments.sweeps.point_rows`. A fabric worker therefore
cannot drift from what ``sweep()`` would have computed — bit-identical
merged reports fall out of sharing the code, not from testing luck.

Crash-consistency is lease-shaped: a worker that dies mid-cell simply
stops heartbeating, the coordinator revokes its lease and re-assigns
the cell, and if the "dead" worker was merely slow its late outbox
result is deduplicated by digest. The worker never touches the journal.

:class:`WorkerChaos` hosts the failure injectors the PR 8 chaos battery
drives (die mid-cell, go heartbeat-silent while still working); they
live here so the chaos harness needs no private hooks.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Union

from ..experiments.runner import continuous_runs
from ..experiments.sweeps import point_config, point_rows
from ..runs.atomic import atomic_write_json
from ..runs.digest import digest_obj
from ..topology.shared import TopologyHandle, install_topology_handles
from .protocol import FabricConfig, FabricPaths, load_fabric_config, write_heartbeat

__all__ = ["WorkerChaos", "run_worker", "spawn_local_workers"]


@dataclass
class WorkerChaos:
    """Failure injection knobs for one worker (chaos battery only).

    Cell selectors accept the literal ``"*"`` to mean "the first cell
    this worker is assigned" — chaos plans use it because which worker
    receives which cell is a scheduling outcome, not a plan input.

    Attributes
    ----------
    kill_on_cell:
        Cell key on whose assignment the worker dies with ``os._exit``
        (same signal-shaped death the PR 6 chaos harness uses): no
        cleanup, no outbox write, heartbeats just stop.
    hang_heartbeat_on_cell:
        Cell key on whose assignment the worker goes heartbeat-silent
        for ``hang_heartbeat_seconds`` while *still holding the cell* —
        the network-partition shape. The coordinator's watchdog revokes
        the lease; the worker later completes anyway, and its late
        result must be absorbed by digest dedupe, not duplicated.
    hang_heartbeat_seconds:
        Silence duration; must exceed the fabric's ``heartbeat_ttl``
        for the partition to be observed.
    """

    kill_on_cell: Optional[str] = None
    hang_heartbeat_on_cell: Optional[str] = None
    hang_heartbeat_seconds: float = 0.0
    _fired: Set[str] = field(default_factory=set, repr=False)

    def to_dict(self) -> Dict[str, Any]:
        """JSON form (crosses the process-spawn boundary)."""
        return {
            "kill_on_cell": self.kill_on_cell,
            "hang_heartbeat_on_cell": self.hang_heartbeat_on_cell,
            "hang_heartbeat_seconds": self.hang_heartbeat_seconds,
        }

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, Any]]) -> Optional["WorkerChaos"]:
        """Inverse of :meth:`to_dict`; ``None`` passes through."""
        if data is None:
            return None
        return cls(
            kill_on_cell=data.get("kill_on_cell"),
            hang_heartbeat_on_cell=data.get("hang_heartbeat_on_cell"),
            hang_heartbeat_seconds=float(data.get("hang_heartbeat_seconds", 0.0)),
        )


class _Beacon:
    """The worker's heartbeat thread and its shared mutable state.

    A daemon thread publishes a monotonically increasing sequence
    number every ``heartbeat_interval`` seconds — including while the
    main thread is deep inside a long simulation, which is the whole
    point: liveness must be observable *during* work, not between
    cells. ``suppress_until`` implements the partition injector.
    """

    def __init__(self, paths: FabricPaths, worker_id: str, config: FabricConfig):
        self._paths = paths
        self._worker_id = worker_id
        self._interval = config.heartbeat_interval
        self.busy_key: Optional[str] = None
        self.done_cells = 0
        self.suppress_until = 0.0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"fabric-heartbeat-{worker_id}", daemon=True
        )

    def _run(self) -> None:
        seq = 0
        while not self._stop.is_set():
            if time.monotonic() >= self.suppress_until:
                seq += 1
                try:
                    write_heartbeat(
                        self._paths,
                        self._worker_id,
                        seq,
                        busy_key=self.busy_key,
                        done_cells=self.done_cells,
                    )
                except OSError:
                    # The fabric directory is being torn down; the next
                    # stop-file check ends the worker.
                    pass
            self._stop.wait(self._interval)

    def start(self) -> None:
        """Publish the first beat synchronously, then beat in the background.

        The synchronous first write means a worker is discoverable the
        instant :func:`run_worker` returns control to its main loop —
        no race between registration and the coordinator's first scan.
        """
        write_heartbeat(self._paths, self._worker_id, 0)
        self._thread.start()

    def stop(self) -> None:
        """Stop the beat thread (joined briefly; it is a daemon anyway)."""
        self._stop.set()
        self._thread.join(timeout=2.0)


def _compute_cell(
    point: Dict[str, Any], allocators: List[str]
) -> List[Dict[str, Any]]:
    """Run one cell exactly as the serial sweep would, returning its rows."""
    cfg = point_config(point, allocators)
    results = continuous_runs(cfg)
    return point_rows(point, results)


def _handle_assignment(
    paths: FabricPaths,
    worker_id: str,
    assignment_path: Path,
    beacon: _Beacon,
    chaos: Optional[WorkerChaos],
) -> bool:
    """Execute one inbox assignment; True when a cell was completed.

    Order of operations is the crash-safety contract: the outbox result
    is atomically written *before* the inbox file is removed, so a
    crash between the two leaves a completed result plus a stale
    assignment — re-executing the stale assignment later just produces
    a duplicate the coordinator dedupes. Work is never lost, only
    occasionally repeated.
    """
    try:
        with open(assignment_path) as fh:
            assignment = json.load(fh)
    except (OSError, json.JSONDecodeError):
        # Revoked out from under us, or not our kind of file: skip.
        return False
    if assignment.get("kind") != "fabric-assignment":
        return False
    key = str(assignment["key"])
    lease = str(assignment["lease"])

    if chaos is not None and chaos.kill_on_cell in (key, "*"):
        # Signal-shaped death: no cleanup, no result, heartbeats stop.
        os._exit(137)
    if (
        chaos is not None
        and chaos.hang_heartbeat_on_cell in (key, "*")
        and not chaos._fired
    ):
        chaos._fired.add(key)
        beacon.suppress_until = time.monotonic() + chaos.hang_heartbeat_seconds
        time.sleep(chaos.hang_heartbeat_seconds)

    beacon.busy_key = key
    try:
        try:
            rows = _compute_cell(
                dict(assignment["point"]), list(assignment["allocators"])
            )
        except Exception as exc:  # noqa: BLE001 - cell errors become protocol
            atomic_write_json(
                paths.outbox(worker_id) / f"{lease}.json",
                {
                    "kind": "fabric-error",
                    "key": key,
                    "lease": lease,
                    "worker": worker_id,
                    "error": f"{type(exc).__name__}: {exc}",
                },
            )
            return False
        atomic_write_json(
            paths.outbox(worker_id) / f"{lease}.json",
            {
                "kind": "fabric-result",
                "key": key,
                "lease": lease,
                "attempt": int(assignment.get("attempt", 1)),
                "worker": worker_id,
                "digest": digest_obj(rows),
                "rows": rows,
            },
        )
        beacon.done_cells += 1
        return True
    finally:
        beacon.busy_key = None
        try:
            assignment_path.unlink()
        except OSError:
            pass


def run_worker(
    root: Union[str, Path],
    worker_id: str,
    *,
    chaos: Optional[WorkerChaos] = None,
) -> int:
    """Run one fabric worker until the fabric (or this worker) is stopped.

    Registers under ``workers/<worker_id>/``, starts the heartbeat
    beacon, then loops: scan the inbox (sorted, so assignment order is
    deterministic), execute each assignment, post results to the
    outbox. Returns the number of cells completed. Exits when the
    global ``stop`` file or this worker's own ``stop`` file appears.

    This is what ``repro-sched fabric worker`` calls, so a fabric can
    mix workers spawned by the coordinator with workers attached by
    hand from other shells or machines sharing the directory.
    """
    paths = FabricPaths(root)
    config = load_fabric_config(root)
    inbox = paths.inbox(worker_id)
    inbox.mkdir(parents=True, exist_ok=True)
    paths.outbox(worker_id).mkdir(parents=True, exist_ok=True)
    own_stop = paths.worker(worker_id) / "stop"
    beacon = _Beacon(paths, worker_id, config)
    beacon.start()
    try:
        while True:
            if paths.stop.exists() or own_stop.exists():
                break
            assignments = sorted(inbox.glob("*.json"))
            if not assignments:
                time.sleep(config.poll_interval)
                continue
            for assignment_path in assignments:
                _handle_assignment(paths, worker_id, assignment_path, beacon, chaos)
    finally:
        beacon.stop()
    return beacon.done_cells


def _worker_main(
    root: str,
    worker_id: str,
    chaos: Optional[Dict[str, Any]],
    topology_handles: Optional[Dict[str, TopologyHandle]] = None,
) -> None:
    """Process entry point for :func:`spawn_local_workers` (picklable)."""
    if topology_handles:
        install_topology_handles(topology_handles)
    run_worker(root, worker_id, chaos=WorkerChaos.from_dict(chaos))


def spawn_local_workers(
    root: Union[str, Path],
    count: int,
    *,
    chaos: Optional[Dict[str, WorkerChaos]] = None,
    name_prefix: str = "w",
    topology_handles: Optional[Dict[str, TopologyHandle]] = None,
) -> List[mp.Process]:
    """Start ``count`` worker processes against one fabric directory.

    Workers are named ``<name_prefix><index>``; ``chaos`` optionally
    maps a worker name to its :class:`WorkerChaos`. The processes are
    started but not joined — the caller (normally the coordinator
    driver) owns their lifecycle.

    ``topology_handles`` (log name → shared-memory handle from
    :func:`repro.topology.publish_topology`) makes every spawned worker
    attach the published topologies zero-copy at startup instead of
    rebuilding them per cell. Local-machine workers only — a shared
    segment does not cross hosts; remote workers attached by hand
    simply build their own topologies. The caller owns the published
    segments and must unlink them after the workers exit.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    procs: List[mp.Process] = []
    for i in range(count):
        worker_id = f"{name_prefix}{i}"
        worker_chaos = (chaos or {}).get(worker_id)
        proc = mp.Process(
            target=_worker_main,
            args=(
                str(root),
                worker_id,
                worker_chaos.to_dict() if worker_chaos else None,
                topology_handles,
            ),
            name=f"fabric-{worker_id}",
        )
        proc.start()
        procs.append(proc)
    return procs
