"""Write a ``BENCH_PR1.json`` / ``BENCH_PR4.json`` performance snapshot.

Two modes:

* default — the PR 1 micro snapshot: hot paths of a continuous run (one
  Eq. 6 cost evaluation and one allocation decision per job start) on
  the paper's largest machine shape (49k nodes, 136 leaves, 16384-node
  RecursiveDoubling job), with the leaf-pair kernel's speedup over the
  per-node-pair baseline.
* ``--e2e [n_jobs]`` — the PR 4 end-to-end trace replay: a seeded
  ``large_trace`` workload on the Theta shape, scheduled twice per
  allocator — once on the optimized default engine, once on the
  pre-change engine (``legacy_mode()`` + ``force_full_pass=True``, the
  exact code paths PR 4 replaced) — recording events/sec, jobs/sec,
  pass counts (full/extended/skipped), the end-to-end speedup, and a
  bit-identity check of the two schedules. Writes ``BENCH_PR4.json``.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [output.json]
    PYTHONPATH=src python benchmarks/run_bench.py --e2e [n_jobs] [output.json]

Timings are medians over several repeats of best-effort wall-clock
loops (single-shot for the e2e replay); treat them as trend indicators,
not lab-grade measurements.
"""

from __future__ import annotations

import json
import platform
import statistics
import sys
import time
from pathlib import Path

import numpy as np

from repro.allocation import get_allocator
from repro.runs import atomic_write_text
from repro.cluster import ClusterState, CommComponent, Job, JobKind
from repro.cost import CostModel, clear_leaf_pair_cache
from repro.patterns import RecursiveDoubling, RecursiveHalvingVectorDoubling
from repro.topology import mira_like

JOB_NODES = 16384
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR1.json"
DEFAULT_E2E_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR4.json"
E2E_JOBS = 100_000
E2E_SMOKE_JOBS = 2_000


def timeit(fn, *, repeats: int = 5, min_time: float = 0.05) -> float:
    """Median seconds per call (auto-scaled inner loop, warm start)."""
    fn()  # warm-up / JIT numpy caches
    calls = 1
    while True:
        t0 = time.perf_counter()
        for _ in range(calls):
            fn()
        elapsed = time.perf_counter() - t0
        if elapsed >= min_time or calls >= 1_000_000:
            break
        calls *= 4
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(calls):
            fn()
        samples.append((time.perf_counter() - t0) / calls)
    return statistics.median(samples)


def timeit_cold(fn, setup, *, repeats: int = 5) -> float:
    """Median seconds per call with ``setup`` run (untimed) before each."""
    samples = []
    for _ in range(repeats):
        setup()
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def build_state() -> ClusterState:
    topo = mira_like()
    state = ClusterState(topo)
    rng = np.random.default_rng(0)
    nodes = rng.choice(topo.n_nodes, size=int(0.4 * topo.n_nodes), replace=False)
    half = nodes.size // 2
    state.allocate(9001, nodes[:half], JobKind.COMM)
    state.allocate(9002, nodes[half:], JobKind.COMPUTE)
    return state


def e2e_jobs(n_jobs: int):
    """The PR 4 reference workload: seeded 90%-comm rhvd large_trace."""
    from repro.workloads import large_trace, single_pattern_mix
    from repro.workloads.classify import assign_kinds

    trace = large_trace(n_jobs)
    return assign_kinds(
        trace, percent_comm=90.0, mix=single_pattern_mix("rhvd"), seed=2
    )


def replay(jobs, allocator: str, *, legacy: bool) -> dict:
    """One full simulation; returns timing + perf counters + records."""
    from repro._perfflags import legacy_mode
    from repro.perf import PerfRecorder, collecting
    from repro.scheduler.engine import EngineConfig, SchedulerEngine
    from repro.topology import theta_like

    clear_leaf_pair_cache()
    cfg = EngineConfig(policy="backfill", force_full_pass=legacy)
    engine = SchedulerEngine(theta_like(), allocator, cfg)
    recorder = PerfRecorder()
    t0 = time.perf_counter()
    with collecting(recorder):
        if legacy:
            with legacy_mode():
                result = engine.run(jobs)
        else:
            result = engine.run(jobs)
    seconds = time.perf_counter() - t0
    counters = recorder.counters
    return {
        "records": result.records,
        "stats": {
            "seconds": seconds,
            "jobs_per_sec": len(jobs) / seconds,
            "events_per_sec": counters.get("engine.events", 0) / seconds,
            "passes_full": int(counters.get("engine.passes_full", 0)),
            "passes_incremental": int(counters.get("engine.passes_incremental", 0)),
            "passes_skipped": int(counters.get("engine.passes_skipped", 0)),
        },
    }


def records_identical(a, b) -> bool:
    for ra, rb in zip(a, b):
        if (
            ra.start_time != rb.start_time
            or ra.finish_time != rb.finish_time
            or not np.array_equal(ra.nodes, rb.nodes)
            or ra.cost_jobaware != rb.cost_jobaware
            or ra.cost_default != rb.cost_default
        ):
            return False
    return len(a) == len(b)


def e2e_section(n_jobs: int, allocators=("adaptive", "greedy")) -> dict:
    jobs = e2e_jobs(n_jobs)
    section: dict = {"n_jobs": n_jobs}
    for allocator in allocators:
        print(f"  replaying {n_jobs} jobs, backfill/{allocator} (optimized) ...")
        new = replay(jobs, allocator, legacy=False)
        print(f"  replaying {n_jobs} jobs, backfill/{allocator} (pre-change) ...")
        old = replay(jobs, allocator, legacy=True)
        identical = records_identical(new["records"], old["records"])
        section[allocator] = {
            "new": new["stats"],
            "legacy": old["stats"],
            "speedup_jobs_per_sec": (
                new["stats"]["jobs_per_sec"] / old["stats"]["jobs_per_sec"]
            ),
            "bit_identical": identical,
        }
        print(
            f"    {allocator}: {new['stats']['jobs_per_sec']:.0f} jobs/s vs "
            f"{old['stats']['jobs_per_sec']:.0f} jobs/s -> "
            f"{section[allocator]['speedup_jobs_per_sec']:.2f}x "
            f"(bit-identical: {identical})"
        )
    return section


def main_e2e(argv) -> int:
    n_jobs = int(argv[2]) if len(argv) > 2 else E2E_JOBS
    out_path = Path(argv[3]) if len(argv) > 3 else DEFAULT_E2E_OUTPUT
    print(f"e2e trace replay (theta_like, backfill, {n_jobs} jobs) ...")
    full = e2e_section(n_jobs)
    print(f"e2e smoke replay ({E2E_SMOKE_JOBS} jobs, CI regression baseline) ...")
    smoke = e2e_section(E2E_SMOKE_JOBS, allocators=("adaptive",))
    adaptive = full["adaptive"]
    greedy = full["greedy"]
    snapshot = {
        "pr": 4,
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "workload": {
            "generator": "large_trace",
            "topology": "theta_like",
            "policy": "backfill",
            "percent_comm": 90.0,
            "pattern": "rhvd",
            "kind_seed": 2,
        },
        "e2e": full,
        "smoke": smoke,
        "criteria": {
            "adaptive_speedup_jobs_per_sec": adaptive["speedup_jobs_per_sec"],
            "adaptive_speedup_target": 5.0,
            "adaptive_within_2x_of_greedy": (
                adaptive["new"]["jobs_per_sec"] * 2.0
                >= greedy["new"]["jobs_per_sec"]
            ),
            "bit_identical": all(
                full[a]["bit_identical"] for a in ("adaptive", "greedy")
            ),
        },
    }
    atomic_write_text(out_path, json.dumps(snapshot, indent=2) + "\n")
    print(json.dumps(snapshot["criteria"], indent=2))
    print(f"wrote {out_path}")
    return 0


def main(argv) -> int:
    if len(argv) > 1 and argv[1] == "--e2e":
        return main_e2e(argv)
    out_path = Path(argv[1]) if len(argv) > 1 else DEFAULT_OUTPUT
    state = build_state()
    job = Job(1, 0.0, JOB_NODES, 3600.0, JobKind.COMM,
              (CommComponent(RecursiveHalvingVectorDoubling(), 0.7),))
    model = CostModel()
    pattern = RecursiveDoubling()

    trial = state.copy()
    nodes = get_allocator("balanced").allocate(trial, job)
    trial.allocate(1, nodes, JobKind.COMM)

    def clear_all():
        clear_leaf_pair_cache()
        trial._cost_cache.clear()
        trial._derived_cache.clear()

    print(f"timing Eq. 6 evaluation ({JOB_NODES}-node RecursiveDoubling) ...")
    pairwise = timeit(
        lambda: model.allocation_cost_pairwise(trial, nodes, pattern), repeats=3
    )
    kernel_cold = timeit_cold(
        lambda: model.allocation_cost(trial, nodes, pattern), clear_all
    )
    kernel_warm = timeit(lambda: model.allocation_cost(trial, nodes, pattern))

    print("timing allocators ...")
    allocate = {}
    for name in ("default", "greedy", "balanced", "adaptive"):
        allocator = get_allocator(name)
        allocate[name] = timeit(lambda: allocator.allocate(state, job), repeats=3)

    print("timing counterfactual snapshots ...")
    copy_s = timeit(state.copy, repeats=3)
    free = np.flatnonzero(state.node_state == 0)[:JOB_NODES]
    overlay_s = timeit(lambda: state.comm_overlay(free, JobKind.COMM), repeats=3)

    snapshot = {
        "pr": 1,
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "scale": {
            "topology": "mira_like",
            "n_nodes": int(state.topology.n_nodes),
            "n_leaves": int(state.topology.n_leaves),
            "job_nodes": JOB_NODES,
            "pattern": "rd",
        },
        "cost_eval_seconds": {
            "pairwise_baseline": pairwise,
            "leafpair_cold": kernel_cold,
            "leafpair_warm": kernel_warm,
        },
        "speedup_over_pairwise": {
            "leafpair_cold": pairwise / kernel_cold,
            "leafpair_warm": pairwise / kernel_warm,
        },
        "allocate_seconds": allocate,
        "counterfactual_snapshot_seconds": {
            "state_copy": copy_s,
            "comm_overlay": overlay_s,
        },
    }
    atomic_write_text(out_path, json.dumps(snapshot, indent=2) + "\n")
    print(json.dumps(snapshot["cost_eval_seconds"], indent=2))
    print(json.dumps(snapshot["speedup_over_pairwise"], indent=2))
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
