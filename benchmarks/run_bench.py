"""Write a ``BENCH_PR1.json`` performance snapshot at Mira scale.

Times the hot paths of a continuous run — one Eq. 6 cost evaluation and
one allocation decision per job start — on the paper's largest machine
shape (49k nodes, 136 leaves, 16384-node RecursiveDoubling job), and
records the leaf-pair kernel's speedup over the per-node-pair baseline
so the perf trajectory is tracked from PR 1 onward.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [output.json]

Timings are medians over several repeats of best-effort wall-clock
loops; treat them as trend indicators, not lab-grade measurements.
"""

from __future__ import annotations

import json
import platform
import statistics
import sys
import time
from pathlib import Path

import numpy as np

from repro.allocation import get_allocator
from repro.runs import atomic_write_text
from repro.cluster import ClusterState, CommComponent, Job, JobKind
from repro.cost import CostModel, clear_leaf_pair_cache
from repro.patterns import RecursiveDoubling, RecursiveHalvingVectorDoubling
from repro.topology import mira_like

JOB_NODES = 16384
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR1.json"


def timeit(fn, *, repeats: int = 5, min_time: float = 0.05) -> float:
    """Median seconds per call (auto-scaled inner loop, warm start)."""
    fn()  # warm-up / JIT numpy caches
    calls = 1
    while True:
        t0 = time.perf_counter()
        for _ in range(calls):
            fn()
        elapsed = time.perf_counter() - t0
        if elapsed >= min_time or calls >= 1_000_000:
            break
        calls *= 4
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(calls):
            fn()
        samples.append((time.perf_counter() - t0) / calls)
    return statistics.median(samples)


def timeit_cold(fn, setup, *, repeats: int = 5) -> float:
    """Median seconds per call with ``setup`` run (untimed) before each."""
    samples = []
    for _ in range(repeats):
        setup()
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def build_state() -> ClusterState:
    topo = mira_like()
    state = ClusterState(topo)
    rng = np.random.default_rng(0)
    nodes = rng.choice(topo.n_nodes, size=int(0.4 * topo.n_nodes), replace=False)
    half = nodes.size // 2
    state.allocate(9001, nodes[:half], JobKind.COMM)
    state.allocate(9002, nodes[half:], JobKind.COMPUTE)
    return state


def main(argv) -> int:
    out_path = Path(argv[1]) if len(argv) > 1 else DEFAULT_OUTPUT
    state = build_state()
    job = Job(1, 0.0, JOB_NODES, 3600.0, JobKind.COMM,
              (CommComponent(RecursiveHalvingVectorDoubling(), 0.7),))
    model = CostModel()
    pattern = RecursiveDoubling()

    trial = state.copy()
    nodes = get_allocator("balanced").allocate(trial, job)
    trial.allocate(1, nodes, JobKind.COMM)

    def clear_all():
        clear_leaf_pair_cache()
        trial._cost_cache.clear()
        trial._derived_cache.clear()

    print(f"timing Eq. 6 evaluation ({JOB_NODES}-node RecursiveDoubling) ...")
    pairwise = timeit(
        lambda: model.allocation_cost_pairwise(trial, nodes, pattern), repeats=3
    )
    kernel_cold = timeit_cold(
        lambda: model.allocation_cost(trial, nodes, pattern), clear_all
    )
    kernel_warm = timeit(lambda: model.allocation_cost(trial, nodes, pattern))

    print("timing allocators ...")
    allocate = {}
    for name in ("default", "greedy", "balanced", "adaptive"):
        allocator = get_allocator(name)
        allocate[name] = timeit(lambda: allocator.allocate(state, job), repeats=3)

    print("timing counterfactual snapshots ...")
    copy_s = timeit(state.copy, repeats=3)
    free = np.flatnonzero(state.node_state == 0)[:JOB_NODES]
    overlay_s = timeit(lambda: state.comm_overlay(free, JobKind.COMM), repeats=3)

    snapshot = {
        "pr": 1,
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "scale": {
            "topology": "mira_like",
            "n_nodes": int(state.topology.n_nodes),
            "n_leaves": int(state.topology.n_leaves),
            "job_nodes": JOB_NODES,
            "pattern": "rd",
        },
        "cost_eval_seconds": {
            "pairwise_baseline": pairwise,
            "leafpair_cold": kernel_cold,
            "leafpair_warm": kernel_warm,
        },
        "speedup_over_pairwise": {
            "leafpair_cold": pairwise / kernel_cold,
            "leafpair_warm": pairwise / kernel_warm,
        },
        "allocate_seconds": allocate,
        "counterfactual_snapshot_seconds": {
            "state_copy": copy_s,
            "comm_overlay": overlay_s,
        },
    }
    atomic_write_text(out_path, json.dumps(snapshot, indent=2) + "\n")
    print(json.dumps(snapshot["cost_eval_seconds"], indent=2))
    print(json.dumps(snapshot["speedup_over_pairwise"], indent=2))
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
