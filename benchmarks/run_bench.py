"""Write a ``BENCH_PR1.json`` / ``BENCH_PR4.json`` / ``BENCH_PR9.json`` snapshot.

Three modes:

* default — the PR 1 micro snapshot: hot paths of a continuous run (one
  Eq. 6 cost evaluation and one allocation decision per job start) on
  the paper's largest machine shape (49k nodes, 136 leaves, 16384-node
  RecursiveDoubling job), with the leaf-pair kernel's speedup over the
  per-node-pair baseline.
* ``--e2e [n_jobs]`` — the PR 4 end-to-end trace replay: a seeded
  synthetic workload on the Theta shape, scheduled twice per
  allocator — once on the optimized default engine, once on the
  pre-change engine (``legacy_mode()`` + ``force_full_pass=True``, the
  exact code paths PR 4 replaced) — recording events/sec, jobs/sec,
  pass counts (full/extended/skipped), the end-to-end speedup, and a
  bit-identity check of the two schedules. Writes ``BENCH_PR4.json``.
* ``--ladder`` — the PR 9 scale ladder: 100k/1M/10M-job rungs, each run
  in a *fresh subprocess* so peak RSS (a process-lifetime high-water
  mark) is the rung's own. Streaming rungs feed the engine from
  :func:`~repro.workloads.stream_trace` with a discarding record sink
  (the constant-memory path); materialized rungs pre-build the job list
  and accumulate records — the PR 4 ingestion path — and are capped at
  1M jobs (a 10M materialized list is the memory blow-up the streaming
  protocol exists to avoid). Streaming jobs/sec *includes* trace
  generation (inherent to the model); materialized jobs/sec excludes
  list construction, matching the PR 4 replay semantics — the reported
  streaming-vs-materialized speedup is therefore conservative. Also
  records a shared-memory sweep section (serial vs pooled workers with
  and without topology sharing) and a streaming/materialized/legacy
  bit-identity smoke. Writes ``BENCH_PR9.json``.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [output.json]
    PYTHONPATH=src python benchmarks/run_bench.py --e2e [n_jobs] [output.json]
    PYTHONPATH=src python benchmarks/run_bench.py --ladder [output.json]

Timings are medians over several repeats of best-effort wall-clock
loops (single-shot for the e2e replay and the ladder rungs); treat them
as trend indicators, not lab-grade measurements.
"""

from __future__ import annotations

import json
import platform
import statistics
import sys
import time
from pathlib import Path

import numpy as np

from repro.allocation import get_allocator
from repro.runs import atomic_write_text
from repro.cluster import ClusterState, CommComponent, Job, JobKind
from repro.cost import CostModel, clear_leaf_pair_cache
from repro.patterns import RecursiveDoubling, RecursiveHalvingVectorDoubling
from repro.topology import mira_like

JOB_NODES = 16384
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR1.json"
DEFAULT_E2E_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR4.json"
DEFAULT_LADDER_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR9.json"
E2E_JOBS = 100_000
E2E_SMOKE_JOBS = 2_000

# Ladder rung profile: cheap enough that the 10M rung stays tractable on
# one core, while still exercising the comm-cost path on 10% of jobs.
LADDER_POLICY = "backfill"
LADDER_ALLOCATOR = "default"
LADDER_PERCENT_COMM = 10.0
LADDER_RUNGS = (
    ("streaming", 100_000),
    ("materialized", 100_000),
    ("streaming", 1_000_000),
    ("materialized", 1_000_000),
    ("streaming", 10_000_000),
)


def timeit(fn, *, repeats: int = 5, min_time: float = 0.05) -> float:
    """Median seconds per call (auto-scaled inner loop, warm start)."""
    fn()  # warm-up / JIT numpy caches
    calls = 1
    while True:
        t0 = time.perf_counter()
        for _ in range(calls):
            fn()
        elapsed = time.perf_counter() - t0
        if elapsed >= min_time or calls >= 1_000_000:
            break
        calls *= 4
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(calls):
            fn()
        samples.append((time.perf_counter() - t0) / calls)
    return statistics.median(samples)


def timeit_cold(fn, setup, *, repeats: int = 5) -> float:
    """Median seconds per call with ``setup`` run (untimed) before each."""
    samples = []
    for _ in range(repeats):
        setup()
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def build_state() -> ClusterState:
    topo = mira_like()
    state = ClusterState(topo)
    rng = np.random.default_rng(0)
    nodes = rng.choice(topo.n_nodes, size=int(0.4 * topo.n_nodes), replace=False)
    half = nodes.size // 2
    state.allocate(9001, nodes[:half], JobKind.COMM)
    state.allocate(9002, nodes[half:], JobKind.COMPUTE)
    return state


def e2e_jobs(n_jobs: int):
    """The PR 4 reference workload: seeded 90%-comm rhvd synthetic trace."""
    from repro.workloads import single_pattern_mix, stream_trace
    from repro.workloads.classify import assign_kinds

    trace = list(stream_trace(n_jobs))
    return assign_kinds(
        trace, percent_comm=90.0, mix=single_pattern_mix("rhvd"), seed=2
    )


def replay(jobs, allocator: str, *, legacy: bool) -> dict:
    """One full simulation; returns timing + perf counters + records."""
    from repro._perfflags import legacy_mode
    from repro.perf import PerfRecorder, collecting
    from repro.scheduler.engine import EngineConfig, SchedulerEngine
    from repro.topology import theta_like

    clear_leaf_pair_cache()
    cfg = EngineConfig(policy="backfill", force_full_pass=legacy)
    engine = SchedulerEngine(theta_like(), allocator, cfg)
    recorder = PerfRecorder()
    t0 = time.perf_counter()
    with collecting(recorder):
        if legacy:
            with legacy_mode():
                result = engine.run(jobs)
        else:
            result = engine.run(jobs)
    seconds = time.perf_counter() - t0
    counters = recorder.counters
    return {
        "records": result.records,
        "stats": {
            "seconds": seconds,
            "jobs_per_sec": len(jobs) / seconds,
            "events_per_sec": counters.get("engine.events", 0) / seconds,
            "passes_full": int(counters.get("engine.passes_full", 0)),
            "passes_incremental": int(counters.get("engine.passes_incremental", 0)),
            "passes_skipped": int(counters.get("engine.passes_skipped", 0)),
        },
    }


def records_identical(a, b) -> bool:
    for ra, rb in zip(a, b):
        if (
            ra.start_time != rb.start_time
            or ra.finish_time != rb.finish_time
            or not np.array_equal(ra.nodes, rb.nodes)
            or ra.cost_jobaware != rb.cost_jobaware
            or ra.cost_default != rb.cost_default
        ):
            return False
    return len(a) == len(b)


def e2e_section(n_jobs: int, allocators=("adaptive", "greedy")) -> dict:
    jobs = e2e_jobs(n_jobs)
    section: dict = {"n_jobs": n_jobs}
    for allocator in allocators:
        print(f"  replaying {n_jobs} jobs, backfill/{allocator} (optimized) ...")
        new = replay(jobs, allocator, legacy=False)
        print(f"  replaying {n_jobs} jobs, backfill/{allocator} (pre-change) ...")
        old = replay(jobs, allocator, legacy=True)
        identical = records_identical(new["records"], old["records"])
        section[allocator] = {
            "new": new["stats"],
            "legacy": old["stats"],
            "speedup_jobs_per_sec": (
                new["stats"]["jobs_per_sec"] / old["stats"]["jobs_per_sec"]
            ),
            "bit_identical": identical,
        }
        print(
            f"    {allocator}: {new['stats']['jobs_per_sec']:.0f} jobs/s vs "
            f"{old['stats']['jobs_per_sec']:.0f} jobs/s -> "
            f"{section[allocator]['speedup_jobs_per_sec']:.2f}x "
            f"(bit-identical: {identical})"
        )
    return section


def main_e2e(argv) -> int:
    n_jobs = int(argv[2]) if len(argv) > 2 else E2E_JOBS
    out_path = Path(argv[3]) if len(argv) > 3 else DEFAULT_E2E_OUTPUT
    print(f"e2e trace replay (theta_like, backfill, {n_jobs} jobs) ...")
    full = e2e_section(n_jobs)
    print(f"e2e smoke replay ({E2E_SMOKE_JOBS} jobs, CI regression baseline) ...")
    smoke = e2e_section(E2E_SMOKE_JOBS, allocators=("adaptive",))
    adaptive = full["adaptive"]
    greedy = full["greedy"]
    snapshot = {
        "pr": 4,
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "workload": {
            "generator": "large_trace",
            "topology": "theta_like",
            "policy": "backfill",
            "percent_comm": 90.0,
            "pattern": "rhvd",
            "kind_seed": 2,
        },
        "e2e": full,
        "smoke": smoke,
        "criteria": {
            "adaptive_speedup_jobs_per_sec": adaptive["speedup_jobs_per_sec"],
            "adaptive_speedup_target": 5.0,
            "adaptive_within_2x_of_greedy": (
                adaptive["new"]["jobs_per_sec"] * 2.0
                >= greedy["new"]["jobs_per_sec"]
            ),
            "bit_identical": all(
                full[a]["bit_identical"] for a in ("adaptive", "greedy")
            ),
        },
    }
    atomic_write_text(out_path, json.dumps(snapshot, indent=2) + "\n")
    print(json.dumps(snapshot["criteria"], indent=2))
    print(f"wrote {out_path}")
    return 0


def ladder_stream(n_jobs: int):
    """The PR 9 ladder workload as a lazy stream (never materialized)."""
    from repro.workloads import single_pattern_mix, stream_trace
    from repro.workloads.classify import assign_kinds_stream

    return assign_kinds_stream(
        stream_trace(n_jobs),
        percent_comm=LADDER_PERCENT_COMM,
        mix=single_pattern_mix("rhvd"),
        seed=2,
    )


def run_ladder_rung(spec: dict) -> dict:
    """Run one ladder rung in *this* process and return its stats.

    Meant to be invoked via ``--ladder-rung`` in a fresh subprocess so
    ``peak_rss_bytes`` (a process-lifetime high-water mark) reflects
    only this rung's footprint. All numbers come from the recorder's
    snapshot — the same counters/derived values the metrics registry
    exports — not ad-hoc ``resource`` calls.
    """
    from repro.perf import PerfRecorder, collecting
    from repro.scheduler.engine import EngineConfig, SchedulerEngine
    from repro.topology import theta_like

    n_jobs = int(spec["n_jobs"])
    mode = spec["mode"]
    clear_leaf_pair_cache()
    engine = SchedulerEngine(
        theta_like(),
        spec.get("allocator", LADDER_ALLOCATOR),
        EngineConfig(policy=spec.get("policy", LADDER_POLICY)),
    )
    recorder = PerfRecorder()
    finished = 0

    def sink(record):
        nonlocal finished
        finished += 1

    if mode == "materialized":
        # The PR 4 ingestion path: job list in memory, records accumulated.
        jobs = list(ladder_stream(n_jobs))
        t0 = time.perf_counter()
        with collecting(recorder):
            result = engine.run(jobs)
        seconds = time.perf_counter() - t0
        finished = len(result.records)
        del result, jobs
    elif mode == "streaming":
        # Constant-memory path: lazy trace in, records diverted to a sink.
        t0 = time.perf_counter()
        with collecting(recorder):
            engine.run(stream=ladder_stream(n_jobs), record_sink=sink)
        seconds = time.perf_counter() - t0
    else:
        raise ValueError(f"unknown rung mode: {mode!r}")
    snap = recorder.snapshot()
    counters = snap["counters"]
    return {
        "mode": mode,
        "n_jobs": n_jobs,
        "seconds": seconds,
        "jobs_per_sec": n_jobs / seconds,
        "records": finished,
        "events": int(counters.get("engine.events", 0)),
        "event_batches": int(counters.get("engine.batches", 0)),
        "peak_rss_bytes": int(snap["derived"].get("peak_rss_bytes", 0)),
    }


def spawn_rung(spec: dict) -> dict:
    """Run one rung in a fresh interpreter; parse its JSON stats line."""
    import os
    import subprocess

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()),
         "--ladder-rung", json.dumps(spec)],
        capture_output=True,
        text=True,
        env=env,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"rung {spec} failed (rc={proc.returncode}):\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def ladder_identity_smoke(n_jobs: int = 3_000) -> dict:
    """Streaming == materialized == pre-change engine on the ladder profile."""
    from repro._perfflags import legacy_mode
    from repro.scheduler.engine import EngineConfig, SchedulerEngine
    from repro.topology import theta_like

    jobs = list(ladder_stream(n_jobs))

    def run(*, stream: bool, legacy: bool):
        clear_leaf_pair_cache()
        cfg = EngineConfig(policy=LADDER_POLICY, force_full_pass=legacy)
        engine = SchedulerEngine(theta_like(), LADDER_ALLOCATOR, cfg)
        if stream:
            records = []
            engine.run(stream=iter(jobs), record_sink=records.append)
            records.sort(key=lambda r: r.job.job_id)
            return records
        if legacy:
            with legacy_mode():
                return engine.run(jobs).records
        return engine.run(jobs).records

    streaming = run(stream=True, legacy=False)
    materialized = run(stream=False, legacy=False)
    legacy = run(stream=False, legacy=True)
    return {
        "n_jobs": n_jobs,
        "streaming_vs_materialized": records_identical(streaming, materialized),
        "materialized_vs_legacy": records_identical(materialized, legacy),
    }


def ladder_workers_section() -> dict:
    """Serial vs pooled sweep, with and without shared-memory topology."""
    from repro.experiments.sweeps import sweep
    from repro.topology import publish_topology, theta_like

    grid = {"seed": list(range(8))}
    defaults = {"log": "theta", "n_jobs": 150, "percent_comm": 50.0,
                "policy": LADDER_POLICY}

    def timed(**kwargs):
        t0 = time.perf_counter()
        rows = sweep(grid, defaults=defaults, **kwargs)
        return rows, time.perf_counter() - t0

    print("  sweep 8 points x 2 allocators, serial ...", flush=True)
    serial_rows, serial_s = timed()
    print("  sweep pooled (4 workers, shared topology) ...", flush=True)
    shared_rows, shared_s = timed(workers=4, share_topology=True)
    print("  sweep pooled (4 workers, per-worker topology) ...", flush=True)
    unshared_rows, unshared_s = timed(workers=4, share_topology=False)

    with publish_topology(theta_like()) as pub:
        segment_bytes = int(pub.handle.pack.size)

    return {
        "grid_points": len(grid["seed"]),
        "serial_seconds": serial_s,
        "pooled_shared_seconds": shared_s,
        "pooled_unshared_seconds": unshared_s,
        "shared_segment_bytes": segment_bytes,
        "rows_identical": serial_rows == shared_rows == unshared_rows,
    }


def main_ladder(argv) -> int:
    out_path = Path(argv[2]) if len(argv) > 2 else DEFAULT_LADDER_OUTPUT
    print("PR 9 scale ladder (theta_like, backfill/default, 10% comm) ...")
    rungs = []
    for mode, n_jobs in LADDER_RUNGS:
        print(f"  rung: {mode} {n_jobs} jobs ...", flush=True)
        stats = spawn_rung({"mode": mode, "n_jobs": n_jobs,
                            "policy": LADDER_POLICY,
                            "allocator": LADDER_ALLOCATOR})
        rungs.append(stats)
        print(
            f"    {stats['jobs_per_sec']:.0f} jobs/s, "
            f"peak RSS {stats['peak_rss_bytes'] / 1e6:.0f} MB, "
            f"{stats['seconds']:.1f}s",
            flush=True,
        )

    print("bit-identity smoke (streaming vs materialized vs pre-change) ...")
    identity = ladder_identity_smoke()
    print(f"  {identity}")
    workers = ladder_workers_section()

    def rung(mode, n_jobs):
        return next(
            r for r in rungs if r["mode"] == mode and r["n_jobs"] == n_jobs
        )

    s1m = rung("streaming", 1_000_000)
    s10m = rung("streaming", 10_000_000)
    m1m = rung("materialized", 1_000_000)
    rss_ratio = s10m["peak_rss_bytes"] / s1m["peak_rss_bytes"]
    speedup = s1m["jobs_per_sec"] / m1m["jobs_per_sec"]
    criteria = {
        "rss_flat_1m_to_10m_ratio": rss_ratio,
        "rss_flat_1m_to_10m_pass": bool(rss_ratio <= 1.10),
        "streaming_rss_vs_materialized_at_1m": (
            s1m["peak_rss_bytes"] / m1m["peak_rss_bytes"]
        ),
        "speedup_vs_pr4_path_at_1m": speedup,
        "speedup_vs_pr4_path_target": 1.3,
        "speedup_vs_pr4_path_pass": bool(speedup >= 1.3),
        "bit_identical": bool(
            identity["streaming_vs_materialized"]
            and identity["materialized_vs_legacy"]
        ),
        "workers_rows_identical": workers["rows_identical"],
    }
    snapshot = {
        "pr": 9,
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "workload": {
            "generator": "stream_trace",
            "topology": "theta_like",
            "policy": LADDER_POLICY,
            "allocator": LADDER_ALLOCATOR,
            "percent_comm": LADDER_PERCENT_COMM,
            "pattern": "rhvd",
            "kind_seed": 2,
            "note": (
                "materialized rungs cap at 1M jobs; streaming jobs/sec "
                "includes trace generation, materialized excludes it "
                "(PR 4 replay semantics), so the speedup is conservative"
            ),
        },
        "rungs": rungs,
        "identity": identity,
        "workers": workers,
        "criteria": criteria,
    }
    atomic_write_text(out_path, json.dumps(snapshot, indent=2) + "\n")
    print(json.dumps(criteria, indent=2))
    print(f"wrote {out_path}")
    return 0


def main(argv) -> int:
    if len(argv) > 1 and argv[1] == "--e2e":
        return main_e2e(argv)
    if len(argv) > 1 and argv[1] == "--ladder-rung":
        print(json.dumps(run_ladder_rung(json.loads(argv[2]))))
        return 0
    if len(argv) > 1 and argv[1] == "--ladder":
        return main_ladder(argv)
    out_path = Path(argv[1]) if len(argv) > 1 else DEFAULT_OUTPUT
    state = build_state()
    job = Job(1, 0.0, JOB_NODES, 3600.0, JobKind.COMM,
              (CommComponent(RecursiveHalvingVectorDoubling(), 0.7),))
    model = CostModel()
    pattern = RecursiveDoubling()

    trial = state.copy()
    nodes = get_allocator("balanced").allocate(trial, job)
    trial.allocate(1, nodes, JobKind.COMM)

    def clear_all():
        clear_leaf_pair_cache()
        trial._cost_cache.clear()
        trial._derived_cache.clear()

    print(f"timing Eq. 6 evaluation ({JOB_NODES}-node RecursiveDoubling) ...")
    pairwise = timeit(
        lambda: model.allocation_cost_pairwise(trial, nodes, pattern), repeats=3
    )
    kernel_cold = timeit_cold(
        lambda: model.allocation_cost(trial, nodes, pattern), clear_all
    )
    kernel_warm = timeit(lambda: model.allocation_cost(trial, nodes, pattern))

    print("timing allocators ...")
    allocate = {}
    for name in ("default", "greedy", "balanced", "adaptive"):
        allocator = get_allocator(name)
        allocate[name] = timeit(lambda: allocator.allocate(state, job), repeats=3)

    print("timing counterfactual snapshots ...")
    copy_s = timeit(state.copy, repeats=3)
    free = np.flatnonzero(state.node_state == 0)[:JOB_NODES]
    overlay_s = timeit(lambda: state.comm_overlay(free, JobKind.COMM), repeats=3)

    snapshot = {
        "pr": 1,
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "scale": {
            "topology": "mira_like",
            "n_nodes": int(state.topology.n_nodes),
            "n_leaves": int(state.topology.n_leaves),
            "job_nodes": JOB_NODES,
            "pattern": "rd",
        },
        "cost_eval_seconds": {
            "pairwise_baseline": pairwise,
            "leafpair_cold": kernel_cold,
            "leafpair_warm": kernel_warm,
        },
        "speedup_over_pairwise": {
            "leafpair_cold": pairwise / kernel_cold,
            "leafpair_warm": pairwise / kernel_warm,
        },
        "allocate_seconds": allocate,
        "counterfactual_snapshot_seconds": {
            "state_copy": copy_s,
            "comm_overlay": overlay_s,
        },
    }
    atomic_write_text(out_path, json.dumps(snapshot, indent=2) + "\n")
    print(json.dumps(snapshot["cost_eval_seconds"], indent=2))
    print(json.dumps(snapshot["speedup_over_pairwise"], indent=2))
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
