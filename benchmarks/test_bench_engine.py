"""End-to-end engine throughput benchmarks and the PR 4 regression gate.

Three jobs:

* time a whole-trace replay (seeded ``stream_trace`` workload, Theta
  shape, backfill + adaptive — the configuration ``BENCH_PR4.json`` is
  committed against) under pytest-benchmark;
* fail CI if jobs/sec regresses more than 2x below the committed
  ``BENCH_PR4.json`` smoke baseline — machines differ, a 2x cliff does
  not happen by scheduling noise;
* run the engine's ``verify_incremental`` self-check mode over a fault-
  laden trace: every skipped or extended scheduling pass is recomputed
  from scratch in-engine and any divergence raises.

Scale knob: ``REPRO_BENCH_E2E_JOBS`` (default 2000, matching the smoke
section of ``BENCH_PR4.json``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.cost import clear_leaf_pair_cache
from repro.faults import FaultGeneratorConfig, generate_faults
from repro.scheduler.engine import EngineConfig, SchedulerEngine
from repro.topology import theta_like
from repro.workloads import single_pattern_mix, stream_trace
from repro.workloads.classify import assign_kinds

BENCH_PR4 = Path(__file__).resolve().parent.parent / "BENCH_PR4.json"


def e2e_n_jobs(default: int = 2000) -> int:
    return int(os.environ.get("REPRO_BENCH_E2E_JOBS", default))


@pytest.fixture(scope="module")
def workload():
    trace = list(stream_trace(e2e_n_jobs()))
    return assign_kinds(
        trace, percent_comm=90.0, mix=single_pattern_mix("rhvd"), seed=2
    )


def run_trace(jobs, *, config=None, faults=None):
    clear_leaf_pair_cache()
    cfg = config or EngineConfig(policy="backfill")
    engine = SchedulerEngine(theta_like(), "adaptive", cfg)
    return engine.run(jobs, faults=faults)


def test_bench_e2e_backfill_adaptive(benchmark, workload):
    result = benchmark.pedantic(
        lambda: run_trace(workload), rounds=1, iterations=1, warmup_rounds=0
    )
    assert len(result.records) == len(workload)


def test_e2e_regression_vs_committed_baseline(workload):
    """The optimized engine must stay within 2x of the committed
    smoke-scale jobs/sec; anything slower is a real regression."""
    if not BENCH_PR4.exists():
        pytest.skip("no committed BENCH_PR4.json baseline")
    baseline = json.loads(BENCH_PR4.read_text())
    smoke = baseline["smoke"]["adaptive"]["new"]
    expected_scale = baseline["smoke"]["n_jobs"]
    if e2e_n_jobs() != expected_scale:
        pytest.skip(
            f"baseline was committed at {expected_scale} jobs, "
            f"running {e2e_n_jobs()}"
        )
    t0 = time.perf_counter()
    result = run_trace(workload)
    seconds = time.perf_counter() - t0
    jobs_per_sec = len(workload) / seconds
    assert len(result.records) == len(workload)
    assert jobs_per_sec * 2.0 >= smoke["jobs_per_sec"], (
        f"end-to-end throughput regressed: {jobs_per_sec:.0f} jobs/s vs "
        f"committed {smoke['jobs_per_sec']:.0f} jobs/s baseline"
    )


def test_e2e_regression_with_observability(workload):
    """The same 2x throughput gate, but with the full observability stack
    on: perf counters collected and every hot-path span traced. Keeping
    this under the same gate as the bare run bounds the instrumentation
    overhead — if tracing ever makes the engine 2x slower than the
    committed baseline, this fails before users feel it."""
    from repro.obs import SpanTracer, validate_spans
    from repro.obs import runtime as obs_runtime

    if not BENCH_PR4.exists():
        pytest.skip("no committed BENCH_PR4.json baseline")
    baseline = json.loads(BENCH_PR4.read_text())
    smoke = baseline["smoke"]["adaptive"]["new"]
    expected_scale = baseline["smoke"]["n_jobs"]
    if e2e_n_jobs() != expected_scale:
        pytest.skip(
            f"baseline was committed at {expected_scale} jobs, "
            f"running {e2e_n_jobs()}"
        )
    tracer = SpanTracer()
    cfg = EngineConfig(policy="backfill", collect_perf=True)
    t0 = time.perf_counter()
    with obs_runtime.tracing(tracer):
        result = run_trace(workload, config=cfg)
    seconds = time.perf_counter() - t0
    jobs_per_sec = len(workload) / seconds
    assert len(result.records) == len(workload)
    # the instrumentation must have actually fired
    assert result.perf["counters"]["engine.batches"] > 0
    assert tracer.spans
    validate_spans(tracer.spans)
    assert jobs_per_sec * 2.0 >= smoke["jobs_per_sec"], (
        f"throughput with observability on regressed: {jobs_per_sec:.0f} "
        f"jobs/s vs committed {smoke['jobs_per_sec']:.0f} jobs/s baseline"
    )


def test_e2e_incremental_invariant_under_faults(workload):
    """verify_incremental recomputes every skipped/extended pass from
    scratch inside the engine and raises on any divergence; a fault
    trace makes sure out-of-scheduler mutations are covered too."""
    jobs = workload[: min(len(workload), 500)]
    topo = theta_like()
    horizon = 1.5 * max(j.submit_time for j in jobs) + 1000.0
    faults = generate_faults(
        topo, FaultGeneratorConfig(rate=5.0, horizon=horizon, seed=7)
    )
    cfg = EngineConfig(
        policy="backfill",
        verify_incremental=True,
        collect_perf=True,
        interrupt_policy="requeue",
    )
    clear_leaf_pair_cache()
    engine = SchedulerEngine(topo, "adaptive", cfg)
    result = engine.run(jobs, faults=faults)
    counters = result.perf["counters"]
    # the run must actually have exercised the machinery being verified
    assert counters.get("engine.passes_full", 0) > 0
    total_counted = (
        counters.get("engine.passes_full", 0)
        + counters.get("engine.passes_incremental", 0)
        + counters.get("engine.passes_skipped", 0)
    )
    assert total_counted <= counters["engine.batches"]
