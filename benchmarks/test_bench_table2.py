"""Bench: Table 2 — balanced allocation of a 512-node job.

Deterministic worked example; the measured split must equal the paper's
128/128/64/64/64/32/32 exactly.
"""

from repro.experiments import run_table2
from repro.experiments.table2 import PAPER_ALLOCATED


def test_bench_table2(benchmark, record_report):
    result = benchmark(run_table2)
    record_report("table2", result.render())
    assert result.allocated == PAPER_ALLOCATED
