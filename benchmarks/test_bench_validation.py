"""Bench: cost-model validation — Eq. 6 vs the flow-level simulator.

Goes beyond the paper's single §5.3 correlation (r = 0.83 on the
departmental cluster): sweep candidate placements across a contention
gradient, price each with the scheduler's Eq. 2-6 estimator and measure
it on the max-min-fair network simulation. A strong correlation
certifies that the cheap estimator ranks placements the way a real
network would.
"""

from repro.experiments import run_cost_model_validation


def test_bench_cost_model_validation(benchmark, record_report):
    result = benchmark.pedantic(
        lambda: run_cost_model_validation(n_placements=15, seed=0),
        rounds=1,
        iterations=1,
    )
    record_report("validation", result.render())
    assert result.pearson > 0.6, "Eq. 6 must track simulated communication time"
    assert result.spearman > 0.5, "Eq. 6 must rank placements like the network does"
