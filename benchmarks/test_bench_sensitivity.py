"""Bench: communication-fraction sensitivity (generalizing Figure 6).

Figure 6 samples three communication fractions (0.33/0.5/0.7) through
its mix sets; the sweep utility lets us trace the whole curve. The
assertion generalizes the paper's A < B < C claim: the balanced
allocator's execution-time gain is monotone non-decreasing in the
communication fraction.
"""

import numpy as np
from conftest import bench_jobs

from repro.experiments import sweep
from repro.experiments.report import render_table

FRACTIONS = (0.2, 0.4, 0.6, 0.8)


def test_bench_comm_fraction_sensitivity(benchmark, record_report):
    n = max(bench_jobs() // 2, 100)

    def run():
        return sweep(
            {"comm_fraction": list(FRACTIONS)},
            allocators=("default", "balanced"),
            defaults={"n_jobs": n, "log": "theta", "pattern": "rhvd"},
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    gains = {
        row["comm_fraction"]: row["exec_improvement_pct"]
        for row in rows
        if row["allocator"] == "balanced"
    }
    table = render_table(
        ["comm fraction", "balanced exec gain %"],
        [[f, gains[f]] for f in FRACTIONS],
        title=f"Sensitivity: gain vs communication fraction (theta, RHVD, {n} jobs)",
    )
    record_report("sensitivity", table)

    values = [gains[f] for f in FRACTIONS]
    assert all(v > 0 for v in values), values
    # monotone within a small tolerance for simulation noise
    for lo, hi in zip(values, values[1:]):
        assert hi >= lo - 1.0, values
