"""Bench: Figure 6 — execution-time gains across mixes A-E (§6.2).

Theta log, 90% comm-intensive, five compute/communication mixes.
Shape assertions: gains grow with communication fraction within a
pattern family (A < C, D < E) and every set shows positive mean gain.
"""

from conftest import bench_jobs

from repro.experiments import run_figure6


def test_bench_figure6(benchmark, record_report):
    n = bench_jobs()
    result = benchmark.pedantic(
        lambda: run_figure6(log="theta", n_jobs=n, seed=0), rounds=1, iterations=1
    )
    record_report("figure6", result.render())

    assert result.mean_gain("A") < result.mean_gain("C"), "gain must grow 33% -> 70% RHVD"
    assert result.mean_gain("D") < result.mean_gain("E"), "gain must grow 50% -> 70% mixed"
    for s in "ABCDE":
        assert result.mean_gain(s) > 0, f"set {s} must improve over default"
